"""The one bucketing scheme shared by every histogram in the repo.

Both :class:`repro.trace.histogram.OnlineHistogram` (the trace-side
streaming histogram) and :class:`repro.metrics.instruments.Histogram`
(the metrics-side instrument) bucket integer samples the same way:
values below :data:`EXACT_LIMIT` are counted exactly, larger values
fall into power-of-two buckets.  Keeping the scheme in one module means
a trace histogram and a metrics histogram fed the same samples can
never disagree about which bucket a value lands in — the bucket
boundaries are definitionally identical, not merely coincidentally so.

A bucket is identified by its *floor* (the smallest value it holds);
:func:`bucket_ceiling` gives the largest.  For cumulative exposition
(Prometheus ``le`` bounds) the ceiling doubles as the inclusive upper
bound of the bucket.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Values below this are counted in exact (width-1) buckets.
EXACT_LIMIT = 16


def bucket_floor(value: int) -> int:
    """The lower bound of the bucket holding ``value``.

    Exact below :data:`EXACT_LIMIT`; the largest power of two not
    exceeding ``value`` above it.
    """
    if value < EXACT_LIMIT:
        return value
    return 1 << (value.bit_length() - 1)


def bucket_ceiling(floor: int) -> int:
    """The inclusive upper bound of the bucket whose floor is ``floor``."""
    if floor < EXACT_LIMIT:
        return floor
    return floor * 2 - 1


def bucket_rows(buckets: Dict[int, int]) -> List[Tuple[int, int, int]]:
    """Sorted ``(lo, hi_inclusive, count)`` rows of a floor->count map."""
    return [
        (floor, bucket_ceiling(floor), buckets[floor])
        for floor in sorted(buckets)
    ]


def cumulative_bounds(buckets: Dict[int, int]) -> List[Tuple[int, int]]:
    """Sorted ``(le, cumulative_count)`` pairs for exposition formats.

    ``le`` is the inclusive upper bound of each occupied bucket; counts
    accumulate in bucket order, so the result is the Prometheus
    ``_bucket`` series minus the ``+Inf`` row (whose value is the total
    count and is appended by the renderer).
    """
    running = 0
    rows: List[Tuple[int, int]] = []
    for floor in sorted(buckets):
        running += buckets[floor]
        rows.append((bucket_ceiling(floor), running))
    return rows
