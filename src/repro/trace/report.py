"""Traced suite runs and the summary report.

:func:`trace_suite` solves a workload suite with a
:class:`~repro.trace.histogram.HistogramSink` attached to every run and
assembles a :class:`TraceReport` that answers the paper's
per-operation questions directly from live telemetry:

* the **empirical mean partial-search visit count** per experiment —
  the quantity Theorem 5.2 bounds at ≈2.2 nodes for sparse graphs;
* the **per-representation online detection rate** — variables
  eliminated online over variables in non-trivial SCCs of the final
  graph, Figure 11's IF ≈ 80 % vs SF ≈ 40 % split;
* visit-depth / cycle-length / fan-out distributions and per-phase
  wall-time totals, with the raw spans exportable as a Chrome/Perfetto
  trace.

The report rides on :class:`repro.experiments.runner.SuiteResults`
(``sink_factory`` hook), so traced runs take the exact measurement path
the tables, figures, and regression baselines use — attaching the sink
cannot change any deterministic counter.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..experiments.runner import RunRecord, SuiteResults
from ..graph.stats import SolverStats
from .chrome import chrome_document, spans_to_chrome
from .histogram import HistogramSink

#: Experiments traced by default: the two online configurations, whose
#: search/elimination behaviour is what the subsystem exists to observe.
DEFAULT_EXPERIMENTS = ("SF-Online", "IF-Online")

#: Paper reference points quoted in the rendered report.
PAPER_MEAN_VISITS = 2.2
PAPER_DETECTION = {"IF-Online": 0.80, "SF-Online": 0.40}


class TracedRun:
    """One (benchmark, experiment) run: counters plus telemetry."""

    def __init__(self, benchmark: str, experiment: str,
                 record: RunRecord, stats: SolverStats,
                 telemetry: HistogramSink) -> None:
        self.benchmark = benchmark
        self.experiment = experiment
        self.record = record
        self.stats = stats
        self.telemetry = telemetry

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "experiment": self.experiment,
            "counters": self.stats.as_dict(),
            "telemetry": self.telemetry.summary(),
        }


class TraceReport:
    """Aggregated telemetry over one traced suite run."""

    def __init__(self, suite_name: str, seed: int,
                 experiments: Tuple[str, ...]) -> None:
        self.suite = suite_name
        self.seed = seed
        self.experiments = experiments
        self.runs: List[TracedRun] = []
        #: benchmark -> variables in non-trivial final-graph SCCs
        #: (Figure 11's denominator, from an SF-Plain recorded run)
        self.scc_vars: Dict[str, int] = {}

    # -- aggregates -----------------------------------------------------
    def runs_for(self, experiment: str) -> List[TracedRun]:
        return [run for run in self.runs if run.experiment == experiment]

    def mean_search_visits(self, experiment: str) -> float:
        """Suite-wide empirical mean visits per partial search."""
        visits = searches = 0
        for run in self.runs_for(experiment):
            visits += run.stats.cycle_search_visits
            searches += run.stats.cycle_searches
        return visits / searches if searches else 0.0

    def detection_rate(self, experiment: str) -> float:
        """Mean per-benchmark Figure-11 fraction (cycle vars found)."""
        fractions = []
        for run in self.runs_for(experiment):
            denominator = self.scc_vars.get(run.benchmark, 0)
            if denominator:
                fractions.append(
                    run.stats.vars_eliminated / denominator
                )
        return sum(fractions) / len(fractions) if fractions else 0.0

    def merged_telemetry(self, experiment: str) -> HistogramSink:
        merged = HistogramSink(label=experiment)
        for run in self.runs_for(experiment):
            merged.merge(run.telemetry)
        return merged

    # -- export ---------------------------------------------------------
    def chrome_trace(self) -> dict:
        """All runs' phase spans on one timeline, one track per run."""
        trace_events: List[dict] = []
        all_spans = [
            span for run in self.runs for span in run.telemetry.spans
        ]
        origin = min((span[1] for span in all_spans), default=0.0)
        for tid, run in enumerate(self.runs, start=1):
            trace_events.extend(spans_to_chrome(
                run.telemetry.spans,
                pid=1,
                tid=tid,
                process_name=f"repro.trace suite={self.suite}",
                thread_name=f"{run.benchmark} {run.experiment}",
                time_origin=origin,
                args={"benchmark": run.benchmark,
                      "experiment": run.experiment},
            ))
        return chrome_document(
            trace_events,
            {"suite": self.suite, "seed": self.seed},
        )

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "seed": self.seed,
            "experiments": list(self.experiments),
            "scc_vars": dict(sorted(self.scc_vars.items())),
            "aggregates": {
                experiment: {
                    "mean_search_visits":
                        self.mean_search_visits(experiment),
                    "detection_rate": self.detection_rate(experiment),
                }
                for experiment in self.experiments
            },
            "runs": [run.to_dict() for run in self.runs],
        }

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        lines = [
            f"trace report: suite={self.suite} seed={self.seed} "
            f"experiments={','.join(self.experiments)}",
            "",
            f"{'benchmark':<14} {'experiment':<10} {'searches':>9} "
            f"{'visits/search':>13} {'hit%':>6} {'elim':>6} "
            f"{'detect%':>8}",
        ]
        for run in self.runs:
            stats = run.stats
            denominator = self.scc_vars.get(run.benchmark, 0)
            detect = (
                f"{stats.vars_eliminated / denominator:7.0%}"
                if denominator else "      -"
            )
            lines.append(
                f"{run.benchmark:<14} {run.experiment:<10} "
                f"{stats.cycle_searches:>9} "
                f"{stats.mean_search_visits:>13.2f} "
                f"{stats.detection_rate:>6.0%} "
                f"{stats.vars_eliminated:>6} {detect:>8}"
            )
        lines.append("")
        for experiment in self.experiments:
            mean_visits = self.mean_search_visits(experiment)
            detection = self.detection_rate(experiment)
            reference = PAPER_DETECTION.get(experiment)
            reference_text = (
                f" (paper ≈{reference:.0%})" if reference else ""
            )
            lines.append(
                f"{experiment}: mean partial-search visits "
                f"{mean_visits:.2f} (paper ≈{PAPER_MEAN_VISITS}), "
                f"cycle-variable detection {detection:.0%}"
                f"{reference_text}"
            )
            telemetry = self.merged_telemetry(experiment)
            lines.append(
                "  visit depth: "
                + _histogram_line(telemetry.search_visits)
            )
            lines.append(
                "  cycle length: "
                + _histogram_line(telemetry.cycle_lengths)
            )
            lines.append(
                "  var fan-out:  "
                + _histogram_line(telemetry.fanout_histogram())
            )
            phase_totals = ", ".join(
                f"{name}={seconds * 1000:.1f}ms"
                for name, seconds in sorted(
                    telemetry.phase_seconds.items()
                )
            )
            lines.append(f"  phases: {phase_totals or '-'}")
        if len(self.experiments) >= 2:
            if_rate = self.detection_rate("IF-Online")
            sf_rate = self.detection_rate("SF-Online")
            if sf_rate:
                lines.append(
                    f"IF/SF detection ratio: {if_rate / sf_rate:.2f} "
                    f"(paper ≈2.0)"
                )
        return "\n".join(lines)


def _histogram_line(histogram) -> str:
    if histogram.count == 0:
        return "(empty)"
    buckets = " ".join(
        (f"[{lo}]={count}" if lo == hi else f"[{lo}-{hi}]={count}")
        for lo, hi, count in histogram.bucket_rows()
    )
    return (
        f"n={histogram.count} mean={histogram.mean:.2f} "
        f"min={histogram.min} max={histogram.max} {buckets}"
    )


def trace_suite(
    suite_name: str = "medium",
    experiments: Iterable[str] = DEFAULT_EXPERIMENTS,
    seed: int = 0,
    benchmarks: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> TraceReport:
    """Run ``experiments`` over a suite with telemetry sinks attached."""
    experiments = tuple(experiments)
    sinks: Dict[Tuple[str, str], HistogramSink] = {}

    def sink_factory(benchmark: str, experiment: str) -> HistogramSink:
        sink = HistogramSink(label=f"{benchmark}/{experiment}")
        sinks[(benchmark, experiment)] = sink
        return sink

    results = SuiteResults.for_suite(
        suite_name, seed=seed, sink_factory=sink_factory
    )
    if benchmarks is not None:
        wanted = set(benchmarks)
        results.benchmarks = [
            bench for bench in results.benchmarks if bench.name in wanted
        ]
        missing = wanted - {b.name for b in results.benchmarks}
        if missing:
            raise KeyError(
                f"benchmarks not in suite {suite_name!r}: "
                f"{sorted(missing)}"
            )
    report = TraceReport(suite_name, seed, experiments)
    for bench in results.benchmarks:
        # Figure 11's denominator: final-graph SCC variables, computed
        # by SuiteResults.statistics from an SF-Plain recorded run.
        report.scc_vars[bench.name] = results.statistics(
            bench.name
        ).final_scc_vars
        for experiment in experiments:
            record = results.run(bench.name, experiment)
            solution = results.solution(bench.name, experiment)
            run = TracedRun(
                benchmark=bench.name,
                experiment=experiment,
                record=record,
                stats=solution.stats,
                telemetry=sinks[(bench.name, experiment)],
            )
            report.runs.append(run)
            if progress is not None:
                progress(
                    f"{bench.name:<14} {experiment:<10} "
                    f"searches={solution.stats.cycle_searches:>8} "
                    f"visits/search="
                    f"{solution.stats.mean_search_visits:6.2f}"
                )
    return report
