"""Chrome / Perfetto trace-format export.

The Trace Event Format (the JSON understood by ``chrome://tracing`` and
https://ui.perfetto.dev) represents a profile as a list of events with
microsecond timestamps: ``B``/``E`` pairs open and close duration
spans, ``i`` marks instants.  We map solver events onto it:

* ``phase.begin``/``phase.end`` and ``search.start``/``search.end``
  become duration spans (phases named by the phase, searches named
  ``cycle-search``);
* everything else becomes an instant event.

Every exported event embeds the original event name and args under
``args`` so the conversion is lossless: :func:`events_from_chrome`
reconstructs the exact event list, which the round-trip tests rely on.

High-frequency instants (``edge``/``resolve``/``search.visit``) can be
downsampled with ``max_instants``; when events are dropped the export
says so in ``otherData`` instead of silently thinning the view.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import (
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_SEARCH_END,
    EV_SEARCH_START,
    TraceEvent,
)
from .sinks import _jsonable, read_jsonl

#: Events eligible for downsampling (unbounded per-operation instants).
HIGH_FREQUENCY = ("edge", "resolve", "search.visit")


def _us(seconds: float) -> float:
    return seconds * 1_000_000.0


def events_to_chrome(
    events: Iterable[TraceEvent],
    pid: int = 1,
    tid: int = 1,
    process_name: str = "repro-solver",
    thread_name: str = "run",
    max_instants: Optional[int] = None,
) -> dict:
    """Convert recorded events into a Chrome trace document (a dict)."""
    trace_events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": process_name}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": thread_name}},
    ]
    instants = 0
    dropped: Dict[str, int] = {}
    for event in events:
        args = {key: _jsonable(value) for key, value in event.args.items()}
        args["ev"] = event.name
        common = {"pid": pid, "tid": tid, "ts": _us(event.ts),
                  "cat": "solver", "args": args}
        if event.name == EV_PHASE_BEGIN:
            trace_events.append(
                {"name": str(event.args.get("name", "phase")),
                 "ph": "B", **common}
            )
        elif event.name == EV_PHASE_END:
            trace_events.append(
                {"name": str(event.args.get("name", "phase")),
                 "ph": "E", **common}
            )
        elif event.name == EV_SEARCH_START:
            trace_events.append({"name": "cycle-search", "ph": "B",
                                 **common})
        elif event.name == EV_SEARCH_END:
            trace_events.append({"name": "cycle-search", "ph": "E",
                                 **common})
        else:
            if (max_instants is not None
                    and event.name in HIGH_FREQUENCY):
                if instants >= max_instants:
                    dropped[event.name] = dropped.get(event.name, 0) + 1
                    continue
                instants += 1
            trace_events.append(
                {"name": event.name, "ph": "i", "s": "t", **common}
            )
    other: Dict[str, object] = {"source": "repro.trace"}
    if dropped:
        other["dropped_instants"] = dropped
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def events_from_chrome(document: dict) -> List[TraceEvent]:
    """Invert :func:`events_to_chrome` (metadata events are skipped)."""
    events: List[TraceEvent] = []
    for entry in document.get("traceEvents", ()):
        if entry.get("ph") == "M":
            continue
        args = dict(entry.get("args", {}))
        name = args.pop("ev", entry.get("name"))
        events.append(
            TraceEvent(
                name=str(name),
                ts=float(entry["ts"]) / 1_000_000.0,
                args=args,
            )
        )
    return events


def spans_to_chrome(
    spans: Sequence[Tuple[str, float, float]],
    pid: int = 1,
    tid: int = 1,
    process_name: str = "repro-solver",
    thread_name: str = "run",
    time_origin: Optional[float] = None,
    args: Optional[dict] = None,
) -> List[dict]:
    """Render ``(name, begin, end)`` wall-time spans as ``X`` events.

    ``begin``/``end`` share one monotonic timebase (``perf_counter``);
    ``time_origin`` rebases them so multiple runs align on one timeline.
    Returns a plain event list so callers can concatenate several runs
    into one document (see :func:`chrome_document`).
    """
    if time_origin is None:
        time_origin = min((span[1] for span in spans), default=0.0)
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": process_name}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": thread_name}},
    ]
    for name, began, ended in spans:
        events.append({
            "name": name,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "cat": "solver",
            "ts": _us(began - time_origin),
            "dur": _us(ended - began),
            "args": dict(args or {}),
        })
    return events


def chrome_document(trace_events: List[dict],
                    other_data: Optional[dict] = None) -> dict:
    """Wrap a raw event list in the Chrome trace JSON envelope."""
    other: Dict[str, object] = {"source": "repro.trace"}
    if other_data:
        other.update(other_data)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome(document: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def convert_jsonl(
    jsonl_path: str,
    out_path: str,
    max_instants: Optional[int] = None,
) -> dict:
    """Convert a saved JSONL event log to a Chrome trace file.

    Returns the written document (handy for tests and callers that want
    the event count).
    """
    events = read_jsonl(jsonl_path)
    document = events_to_chrome(events, max_instants=max_instants)
    write_chrome(document, out_path)
    return document
