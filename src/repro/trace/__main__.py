"""Command-line entry point: ``python -m repro.trace``.

Typical uses::

    # Traced medium-suite run: empirical mean partial-search visits
    # (paper: ~2.2), per-representation detection rates (IF ~80% vs
    # SF ~40%), distributions, and a Perfetto-loadable span trace.
    python -m repro.trace --suite medium --chrome trace.json

    # CI smoke: quick suite, machine-readable summary, and a check that
    # tracing left the work counters identical to the bench baseline.
    python -m repro.trace report --suite quick --json report.json \
        --check-baseline benchmarks/BASELINE.json

    # Full event log of one run (every edge attempt, search visit,
    # collapse), plus a Chrome view of it.
    python -m repro.trace record --benchmark compress --experiment IF-Online \
        --out compress.jsonl --chrome compress.trace.json

    # Convert a saved JSONL log later.
    python -m repro.trace convert compress.jsonl compress.trace.json

Work counters are exact cross-process oracles only under a pinned hash
seed, so (like ``repro.bench``) the process re-executes itself once with
``PYTHONHASHSEED=0`` unless a seed is already set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .chrome import convert_jsonl, write_chrome
from .report import DEFAULT_EXPERIMENTS, trace_suite
from .sinks import JsonlSink


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="solver event tracing, profiling, and telemetry",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--no-pin-hashseed", action="store_true",
        help="do not re-exec with PYTHONHASHSEED=0 (work counts of "
             "Online configurations then vary between processes)",
    )
    sub = parser.add_subparsers(dest="command")

    report = sub.add_parser(
        "report", parents=[common],
        help="traced suite run with aggregate telemetry (the default)",
    )
    report.add_argument(
        "--suite", default="medium", choices=("quick", "medium", "full"),
        help="workload suite to trace (default: medium)",
    )
    report.add_argument("--seed", type=int, default=0,
                        help="variable-order seed (default 0)")
    report.add_argument(
        "--experiments", nargs="+", metavar="LABEL",
        default=list(DEFAULT_EXPERIMENTS),
        help="experiment labels to trace (default: SF-Online IF-Online)",
    )
    report.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="restrict the suite to these benchmarks",
    )
    report.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="write per-run phase spans as a Chrome/Perfetto trace",
    )
    report.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full report (counters + telemetry) as JSON",
    )
    report.add_argument(
        "--check-baseline", metavar="PATH", default=None,
        help="verify traced work counters match this repro.bench "
             "baseline (proves tracing does not perturb counted work)",
    )

    record = sub.add_parser(
        "record", parents=[common],
        help="full JSONL event log of one benchmark run",
    )
    record.add_argument("--benchmark", required=True, metavar="NAME")
    record.add_argument(
        "--experiment", default="IF-Online", metavar="LABEL",
        help="experiment configuration (default: IF-Online)",
    )
    record.add_argument(
        "--suite", default="medium", choices=("quick", "medium", "full"),
        help="suite to look the benchmark up in (default: medium)",
    )
    record.add_argument("--seed", type=int, default=0)
    record.add_argument(
        "--out", required=True, metavar="PATH",
        help="JSONL output path",
    )
    record.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also write a Chrome/Perfetto view of the recording",
    )
    record.add_argument(
        "--max-instants", type=int, default=None, metavar="N",
        help="downsample high-frequency instants in the Chrome view",
    )

    convert = sub.add_parser(
        "convert", help="convert a JSONL event log to a Chrome trace",
    )
    convert.add_argument("jsonl", help="input JSONL trace")
    convert.add_argument("out", help="output Chrome trace JSON")
    convert.add_argument(
        "--max-instants", type=int, default=None, metavar="N",
        help="downsample high-frequency instants",
    )
    return parser


def _repin_hash_seed(argv: List[str]) -> Optional[int]:
    """Re-exec once with PYTHONHASHSEED=0 unless already pinned."""
    if os.environ.get("PYTHONHASHSEED") is not None:
        return None
    import subprocess

    env = dict(os.environ, PYTHONHASHSEED="0")
    command = [sys.executable, "-m", "repro.trace", *argv]
    return subprocess.call(command, env=env)


def _check_baseline(report, baseline_path: str) -> int:
    """Compare traced runs' work counters against a bench baseline.

    Only (benchmark, experiment) pairs present in both are compared —
    the baseline covers all six configurations of its own suite; the
    trace report covers the experiments it was asked to run.  Equal
    counters demonstrate the acceptance property: attaching telemetry
    sinks does not change any counted work.
    """
    from ..bench.baseline import BaselineError, load_report

    try:
        baseline = load_report(baseline_path)
    except BaselineError as error:
        print(f"baseline check failed: {error}", file=sys.stderr)
        return 2
    baseline_key = baseline.key()
    compared = 0
    mismatches: List[str] = []
    for run in report.runs:
        record = baseline_key.get((run.benchmark, run.experiment))
        if record is None:
            continue
        compared += 1
        counters = run.stats.as_dict()
        for name, expected in record.counters.items():
            actual = counters.get(name)
            if actual != expected:
                mismatches.append(
                    f"{run.benchmark}/{run.experiment}: {name} "
                    f"traced={actual} baseline={expected}"
                )
    if report.suite != baseline.suite or report.seed != baseline.seed:
        print(
            f"baseline check: note baseline is suite={baseline.suite} "
            f"seed={baseline.seed}; traced suite={report.suite} "
            f"seed={report.seed}",
        )
    if not compared:
        print(
            "baseline check failed: no (benchmark, experiment) overlap "
            f"with {baseline_path}", file=sys.stderr,
        )
        return 2
    if mismatches:
        print(
            f"baseline check FAILED: traced counters diverge from "
            f"{baseline_path}:", file=sys.stderr,
        )
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(
        f"baseline check OK: {compared} traced runs match the work "
        f"counters in {baseline_path}"
    )
    return 0


def _cmd_report(args) -> int:
    try:
        report = trace_suite(
            suite_name=args.suite,
            experiments=args.experiments,
            seed=args.seed,
            benchmarks=args.benchmarks,
            progress=lambda line: print(line, flush=True),
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    print()
    print(report.render())
    if args.chrome:
        write_chrome(report.chrome_trace(), args.chrome)
        print(f"\nwrote Chrome trace {args.chrome}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote report JSON {args.json}")
    if args.check_baseline:
        print()
        return _check_baseline(report, args.check_baseline)
    return 0


def _cmd_record(args) -> int:
    from ..experiments.config import options_for
    from ..solver import solve
    from ..workloads import suite

    bench = None
    for candidate in suite(args.suite):
        if candidate.name == args.benchmark:
            bench = candidate
            break
    if bench is None:
        names = sorted(b.name for b in suite(args.suite))
        print(
            f"error: benchmark {args.benchmark!r} not in suite "
            f"{args.suite!r} (have: {', '.join(names)})",
            file=sys.stderr,
        )
        return 2
    try:
        options = options_for(args.experiment, seed=args.seed)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    sink = JsonlSink(args.out)
    try:
        solution = solve(
            bench.program.system, options.replace(sink=sink)
        )
    finally:
        sink.close()
    stats = solution.stats
    print(
        f"recorded {bench.name} {args.experiment} -> {args.out}\n"
        f"work={stats.work} searches={stats.cycle_searches} "
        f"visits/search={stats.mean_search_visits:.2f} "
        f"eliminated={stats.vars_eliminated}"
    )
    if args.chrome:
        document = convert_jsonl(
            args.out, args.chrome, max_instants=args.max_instants
        )
        print(
            f"wrote Chrome trace {args.chrome} "
            f"({len(document['traceEvents'])} events)"
        )
    return 0


def _cmd_convert(args) -> int:
    try:
        document = convert_jsonl(
            args.jsonl, args.out, max_instants=args.max_instants
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    dropped = document["otherData"].get("dropped_instants", {})
    suffix = (
        f" (dropped {sum(dropped.values())} instants)" if dropped else ""
    )
    print(
        f"wrote {args.out} ({len(document['traceEvents'])} "
        f"events){suffix}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # `report` is the default subcommand: a bare invocation (or one that
    # starts straight with report options) gets it prepended.  Top-level
    # --help still reaches the main parser.
    known = {"report", "record", "convert"}
    if not (argv and argv[0] in known) and "-h" not in argv \
            and "--help" not in argv:
        argv = ["report", *argv]
    args = _build_parser().parse_args(argv)
    if args.command != "convert" and not args.no_pin_hashseed:
        code = _repin_hash_seed(argv)
        if code is not None:
            return code
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "record":
        return _cmd_record(args)
    return _cmd_convert(args)


if __name__ == "__main__":
    sys.exit(main())
