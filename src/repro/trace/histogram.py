"""Online distribution telemetry.

:class:`OnlineHistogram` is a bounded-memory streaming histogram in the
HdrHistogram spirit: small values (< 16) are counted exactly, larger
values fall into power-of-two buckets, and count/sum/min/max are kept
exactly.  That is enough to report the quantities the paper's
evaluation reasons about — the *mean* partial-search visit count
(Theorem 5.2's ≈2.2), cycle-length distributions, per-variable fan-out —
while adding O(1) work and O(log max) memory per stream.

:class:`HistogramSink` is the trace sink that feeds these histograms
from live solver events and also accumulates per-phase wall-time spans,
so one cheap sink yields both the distribution telemetry and a profile.

Bucket boundaries come from :mod:`repro.trace.buckets`, the scheme
shared with :class:`repro.metrics.instruments.Histogram` — trace
histograms and metrics histograms can never drift apart on where a
sample lands.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .buckets import EXACT_LIMIT, bucket_floor, bucket_rows
from .sinks import TraceSink

__all__ = ["EXACT_LIMIT", "HistogramSink", "OnlineHistogram"]


class OnlineHistogram:
    """Streaming histogram: exact below 16, power-of-two buckets above."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        #: bucket lower bound -> number of samples in the bucket
        self.buckets: Dict[int, int] = {}

    def add(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be >= 0, got {value}")
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        floor = bucket_floor(value)
        self.buckets[floor] = self.buckets.get(floor, 0) + count

    def merge(self, other: "OnlineHistogram") -> None:
        """Fold another histogram into this one (bucket-wise exact)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(
                self.min, other.min
            )
        if other.max is not None:
            self.max = other.max if self.max is None else max(
                self.max, other.max
            )
        for floor, count in other.buckets.items():
            self.buckets[floor] = self.buckets.get(floor, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_rows(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(lo, hi_inclusive, count)`` rows for reporting."""
        return bucket_rows(self.buckets)

    def percentile(self, fraction: float) -> int:
        """Upper bound of the bucket containing the given quantile.

        Exact for values < 16; a power-of-two overestimate above.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return 0
        threshold = fraction * self.count
        running = 0
        for lo, hi, count in self.bucket_rows():
            running += count
            if running >= threshold:
                return hi
        return self.max or 0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OnlineHistogram":
        hist = cls()
        hist.count = int(payload["count"])
        hist.total = int(payload["total"])
        hist.min = payload["min"]
        hist.max = payload["max"]
        hist.buckets = {
            int(k): int(v) for k, v in payload["buckets"].items()
        }
        return hist

    def __repr__(self) -> str:
        return (
            f"OnlineHistogram(count={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )


class HistogramSink(TraceSink):
    """Constant-memory telemetry sink: distributions, counts, phases.

    Maintains, entirely online:

    * ``search_visits`` — nodes visited per partial cycle search (the
      distribution whose mean Theorem 5.2 bounds at ≈2.2);
    * ``cycle_lengths`` — length of each collapsed cycle;
    * per-variable fan-out counts for processed (non-redundant) var-var
      edges, rendered on demand by :meth:`fanout_histogram`;
    * event counts per event type and edge outcome;
    * per-phase wall-time totals from ``phase.begin``/``phase.end``
      pairs, plus the raw span list for Chrome export.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.search_visits = OnlineHistogram()
        self.cycle_lengths = OnlineHistogram()
        self.searches = 0
        self.search_hits = 0
        self.collapses = 0
        self.sweeps = 0
        self.swept_vars = 0
        self.resolutions = 0
        self.clashes = 0
        #: edge outcome -> count (added/redundant/self/cycle), per kind
        self.edge_outcomes: Dict[str, int] = {}
        self.edge_kinds: Dict[str, int] = {}
        #: source variable id -> processed outgoing var-var edges
        self._fanout: Dict[int, int] = {}
        #: phase name -> accumulated seconds
        self.phase_seconds: Dict[str, float] = {}
        #: raw (name, begin_ts, end_ts) spans; perf_counter timebase
        self.spans: List[Tuple[str, float, float]] = []
        self._open_phases: List[Tuple[str, float]] = []

    # -- events ---------------------------------------------------------
    def edge(self, kind, src, dst, outcome):
        self.edge_outcomes[outcome] = self.edge_outcomes.get(outcome, 0) + 1
        self.edge_kinds[kind] = self.edge_kinds.get(kind, 0) + 1
        if kind == "vv" and outcome == "added":
            fanout = self._fanout
            fanout[src] = fanout.get(src, 0) + 1

    def resolve(self, left, right):
        self.resolutions += 1

    def clash(self, diagnostic):
        self.clashes += 1

    def search_start(self, start, target):
        self.searches += 1

    def search_end(self, found, visits, length):
        self.search_visits.add(visits)
        if found:
            self.search_hits += 1
            self.cycle_lengths.add(length)

    def collapse(self, witness, members):
        self.collapses += 1

    def sweep(self, eliminated):
        self.sweeps += 1
        self.swept_vars += eliminated

    def phase_begin(self, name):
        self._open_phases.append((name, time.perf_counter()))

    def phase_end(self, name):
        now = time.perf_counter()
        for index in range(len(self._open_phases) - 1, -1, -1):
            open_name, began = self._open_phases[index]
            if open_name == name:
                del self._open_phases[index]
                self.phase_seconds[name] = (
                    self.phase_seconds.get(name, 0.0) + (now - began)
                )
                self.spans.append((name, began, now))
                return
        # Unmatched end: record a zero-length span rather than raising —
        # telemetry must never take the solver down.
        self.spans.append((name, now, now))

    # -- derived --------------------------------------------------------
    def fanout_histogram(self) -> OnlineHistogram:
        """Distribution of per-variable processed var-var out-degree."""
        hist = OnlineHistogram()
        for degree in self._fanout.values():
            hist.add(degree)
        return hist

    @property
    def mean_search_visits(self) -> float:
        return self.search_visits.mean

    @property
    def hit_rate(self) -> float:
        """Fraction of partial searches that found a cycle."""
        return self.search_hits / self.searches if self.searches else 0.0

    def merge(self, other: "HistogramSink") -> None:
        """Fold another run's telemetry into this sink."""
        self.search_visits.merge(other.search_visits)
        self.cycle_lengths.merge(other.cycle_lengths)
        self.searches += other.searches
        self.search_hits += other.search_hits
        self.collapses += other.collapses
        self.sweeps += other.sweeps
        self.swept_vars += other.swept_vars
        self.resolutions += other.resolutions
        self.clashes += other.clashes
        for mapping, theirs in (
            (self.edge_outcomes, other.edge_outcomes),
            (self.edge_kinds, other.edge_kinds),
        ):
            for key, value in theirs.items():
                mapping[key] = mapping.get(key, 0) + value
        for src, degree in other._fanout.items():
            self._fanout[src] = self._fanout.get(src, 0) + degree
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + seconds
            )
        self.spans.extend(other.spans)

    def summary(self) -> dict:
        """JSON-ready snapshot of everything the sink accumulated."""
        return {
            "label": self.label,
            "searches": self.searches,
            "search_hits": self.search_hits,
            "hit_rate": self.hit_rate,
            "mean_search_visits": self.mean_search_visits,
            "search_visits": self.search_visits.to_dict(),
            "cycle_lengths": self.cycle_lengths.to_dict(),
            "fanout": self.fanout_histogram().to_dict(),
            "collapses": self.collapses,
            "sweeps": self.sweeps,
            "swept_vars": self.swept_vars,
            "resolutions": self.resolutions,
            "clashes": self.clashes,
            "edge_outcomes": dict(sorted(self.edge_outcomes.items())),
            "edge_kinds": dict(sorted(self.edge_kinds.items())),
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }
