"""Solver observability: event tracing, profiling, and telemetry.

The subsystem has three layers:

* **Events** (:mod:`repro.trace.events`): the vocabulary of structured
  solver events — edge insertions with their outcome, resolution-rule
  firings, partial-cycle-search start/visit/hit, collapses, periodic
  sweeps, and phase spans.
* **Sinks** (:mod:`repro.trace.sinks`,
  :mod:`repro.trace.histogram`): where events go.  ``CollectorSink``
  keeps them in memory, ``JsonlSink`` streams them to disk,
  ``HistogramSink`` folds them into bounded-memory online histograms
  and per-phase wall-time totals.  Tracing is enabled by setting
  ``SolverOptions(sink=...)``; when no sink is attached the
  instrumentation costs one attribute check per operation.
* **Export & reporting** (:mod:`repro.trace.chrome`,
  :mod:`repro.trace.report`): Chrome/Perfetto trace export and the
  ``python -m repro.trace`` CLI, which records traced suite runs and
  reports the paper's per-operation quantities (mean partial-search
  visits vs Theorem 5.2's ≈2.2, IF vs SF online detection rates).

Quick use::

    from repro import ConstraintSystem, SolverOptions, solve
    from repro.trace import CollectorSink

    sink = CollectorSink()
    solve(system, SolverOptions(sink=sink))
    [e for e in sink.events if e.name == "collapse"]

See ``docs/OBSERVABILITY.md`` for the full event schema and workflows.
"""

from __future__ import annotations

from .chrome import (
    chrome_document,
    convert_jsonl,
    events_from_chrome,
    events_to_chrome,
    spans_to_chrome,
    write_chrome,
)
from .events import EVENT_NAMES, TraceEvent
from .histogram import HistogramSink, OnlineHistogram
from .sinks import (
    NULL_SINK,
    CollectorSink,
    JsonlSink,
    LegacyCallbackSink,
    TeeSink,
    TraceSink,
    combine,
    events_to_jsonl_text,
    read_jsonl,
)

__all__ = [
    "CollectorSink",
    "EVENT_NAMES",
    "HistogramSink",
    "JsonlSink",
    "LegacyCallbackSink",
    "NULL_SINK",
    "OnlineHistogram",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "chrome_document",
    "combine",
    "convert_jsonl",
    "events_from_chrome",
    "events_to_chrome",
    "events_to_jsonl_text",
    "read_jsonl",
    "spans_to_chrome",
    "write_chrome",
]
