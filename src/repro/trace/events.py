"""The solver event vocabulary.

Every observable solver action maps to exactly one :class:`TraceSink`
method and one canonical event name.  The names below are what appears
in JSONL logs (the ``ev`` field) and — embedded in ``args`` — in the
Chrome trace export, so converters can round-trip events losslessly.

Event schema (``args`` keys per event):

===================  ==================================================
event                args
===================  ==================================================
``edge``             ``kind`` ("vv"/"sv"/"vs"), ``src``, ``dst``,
                     ``outcome`` ("added"/"redundant"/"self"/"cycle")
``resolve``          ``left``, ``right`` (stringified set expressions)
``clash``            ``kind``, ``message``
``search.start``     ``start``, ``target``
``search.visit``     ``node``
``search.end``       ``found`` (bool), ``visits``, ``length``
``collapse``         ``witness``, ``members`` (list of variable ids)
``sweep``            ``eliminated``
``phase.begin``      ``name`` ("closure"/"finalize"/"least-solution")
``phase.end``        ``name``
``audit.failure``    ``check``, ``subject`` (variable id), ``detail``
``budget.stop``      ``reason`` ("work"/"deadline"/"edges"/"cancelled"),
                     ``limit``, ``value``
===================  ==================================================

``edge`` outcomes follow the Work-metric accounting of
:class:`repro.graph.stats.SolverStats`: every attempted atomic addition
emits one event; ``redundant`` and ``self`` mirror the same-named
counters, and ``cycle`` marks an insertion consumed by an online
collapse instead of landing in the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

EV_EDGE = "edge"
EV_RESOLVE = "resolve"
EV_CLASH = "clash"
EV_SEARCH_START = "search.start"
EV_SEARCH_VISIT = "search.visit"
EV_SEARCH_END = "search.end"
EV_COLLAPSE = "collapse"
EV_SWEEP = "sweep"
EV_PHASE_BEGIN = "phase.begin"
EV_PHASE_END = "phase.end"
EV_AUDIT = "audit.failure"
EV_BUDGET_STOP = "budget.stop"

#: Every event name, in documentation order.
EVENT_NAMES = (
    EV_EDGE,
    EV_RESOLVE,
    EV_CLASH,
    EV_SEARCH_START,
    EV_SEARCH_VISIT,
    EV_SEARCH_END,
    EV_COLLAPSE,
    EV_SWEEP,
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_AUDIT,
    EV_BUDGET_STOP,
)

#: Events that open/close a duration span in the Chrome trace export.
SPAN_BEGIN_EVENTS = {EV_PHASE_BEGIN: "phase", EV_SEARCH_START: "search"}
SPAN_END_EVENTS = {EV_PHASE_END: "phase", EV_SEARCH_END: "search"}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded solver event.

    ``ts`` is seconds since the recording sink's epoch
    (``time.perf_counter`` based, so only differences are meaningful).
    """

    name: str
    ts: float
    args: Dict[str, object] = field(default_factory=dict)

    def to_jsonl_obj(self) -> Dict[str, object]:
        """The flat JSONL representation (``ev``/``ts`` + args)."""
        obj: Dict[str, object] = {"ev": self.name, "ts": self.ts}
        obj.update(self.args)
        return obj

    @classmethod
    def from_jsonl_obj(cls, obj: Dict[str, object]) -> "TraceEvent":
        args = {
            key: value for key, value in obj.items()
            if key not in ("ev", "ts")
        }
        return cls(name=str(obj["ev"]), ts=float(obj["ts"]), args=args)
