"""Trace sinks: where solver events go.

:class:`TraceSink` is the protocol the solver core is instrumented
against — one method per event, so the hot paths never build event
objects or dispatch on strings.  The base class implements every method
as a no-op, which makes it simultaneously the protocol definition and
the null sink.

The overhead contract: the solver carries a ``sink`` attribute that is
``None`` when tracing is disabled; every instrumented call site loads it
once into a local and tests ``is not None``, so a disabled trace costs
one attribute read plus one or two pointer comparisons per worklist
operation — nothing is formatted, allocated, or timestamped.  Sinks that
need timestamps take them themselves (see :class:`CollectorSink`), so
the price of a clock read is paid only by sinks that want one.

This module deliberately imports nothing from the solver packages, so
``repro.solver`` can depend on it without cycles.
"""

from __future__ import annotations

import io
import json
import time
from typing import Callable, Iterable, List, Optional, Sequence, TextIO

from .events import (
    EV_AUDIT,
    EV_BUDGET_STOP,
    EV_CLASH,
    EV_COLLAPSE,
    EV_EDGE,
    EV_PHASE_BEGIN,
    EV_PHASE_END,
    EV_RESOLVE,
    EV_SEARCH_END,
    EV_SEARCH_START,
    EV_SEARCH_VISIT,
    EV_SWEEP,
    TraceEvent,
)

#: JSONL format version written by :class:`JsonlSink`.
JSONL_SCHEMA_VERSION = 1


class TraceSink:
    """Receiver of solver events; the base class ignores everything.

    Subclasses override only the events they care about.  An instance of
    this class *is* the null sink (:data:`NULL_SINK`): attaching it must
    leave every deterministic solver counter byte-identical to running
    untraced — the sink API observes, never steers.
    """

    # -- edges and resolution ------------------------------------------
    def edge(self, kind: str, src: object, dst: object,
             outcome: str) -> None:
        """One attempted atomic edge addition (one unit of Work)."""

    def resolve(self, left: object, right: object) -> None:
        """The resolution rules R fired on a source/sink pair."""

    def clash(self, diagnostic: object) -> None:
        """An inconsistent constraint was recorded."""

    # -- partial cycle search ------------------------------------------
    def search_start(self, start: int, target: int) -> None:
        """A partial online cycle search began."""

    def search_visit(self, node: int) -> None:
        """The search popped (visited) one node."""

    def search_end(self, found: bool, visits: int, length: int) -> None:
        """The search finished; ``length`` is the cycle length on a hit."""

    # -- elimination ----------------------------------------------------
    def collapse(self, witness: int, members: Sequence[int]) -> None:
        """A detected cycle was collapsed onto ``witness``."""

    def sweep(self, eliminated: int) -> None:
        """A periodic offline SCC sweep ran (PERIODIC policy only)."""

    # -- auditing -------------------------------------------------------
    def audit_failure(self, failure: object) -> None:
        """The invariant auditor found a violation (an
        :class:`repro.resilience.audit.AuditFailure`); emitted for every
        failure of an audit pass before the engine raises."""

    def budget_stop(self, reason: str, limit: float, value: float) -> None:
        """The guarded drain stopped early: a budget dimension
        (``"work"``/``"deadline"``/``"edges"``) hit ``limit`` at
        ``value``, or the run was ``"cancelled"``.  Emitted before the
        engine raises or returns a partial solution."""

    # -- phases ---------------------------------------------------------
    def phase_begin(self, name: str) -> None:
        """A solver phase (closure / finalize / least-solution) began."""

    def phase_end(self, name: str) -> None:
        """The most recently begun phase of that name ended."""

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Flush and release resources; idempotent."""


#: The shared no-op sink (for call sites that want a non-None default).
NULL_SINK = TraceSink()


class CollectorSink(TraceSink):
    """Record every event in memory as :class:`TraceEvent` objects.

    Timestamps are ``time.perf_counter()`` relative to construction.
    Intended for tests, the traced viz renderer, and small recordings —
    a full medium-suite run emits millions of events; use
    :class:`repro.trace.histogram.HistogramSink` for those.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.events: List[TraceEvent] = []

    def _emit(self, _event: str, **args: object) -> None:
        self.events.append(
            TraceEvent(_event, time.perf_counter() - self.epoch, args)
        )

    def edge(self, kind, src, dst, outcome):
        self._emit(EV_EDGE, kind=kind, src=src, dst=dst, outcome=outcome)

    def resolve(self, left, right):
        self._emit(EV_RESOLVE, left=left, right=right)

    def clash(self, diagnostic):
        self._emit(
            EV_CLASH,
            kind=getattr(diagnostic, "kind", "unknown"),
            message=str(diagnostic),
        )

    def search_start(self, start, target):
        self._emit(EV_SEARCH_START, start=start, target=target)

    def search_visit(self, node):
        self._emit(EV_SEARCH_VISIT, node=node)

    def search_end(self, found, visits, length):
        self._emit(EV_SEARCH_END, found=found, visits=visits,
                   length=length)

    def collapse(self, witness, members):
        self._emit(EV_COLLAPSE, witness=witness, members=list(members))

    def sweep(self, eliminated):
        self._emit(EV_SWEEP, eliminated=eliminated)

    def audit_failure(self, failure):
        self._emit(
            EV_AUDIT,
            check=getattr(failure, "check", "unknown"),
            subject=getattr(failure, "subject", -1),
            detail=getattr(failure, "detail", str(failure)),
        )

    def budget_stop(self, reason, limit, value):
        self._emit(EV_BUDGET_STOP, reason=reason, limit=limit, value=value)

    def phase_begin(self, name):
        self._emit(EV_PHASE_BEGIN, name=name)

    def phase_end(self, name):
        self._emit(EV_PHASE_END, name=name)


class TeeSink(TraceSink):
    """Fan every event out to several sinks, in order."""

    def __init__(self, sinks: Iterable[TraceSink]) -> None:
        self.sinks: List[TraceSink] = list(sinks)

    def edge(self, kind, src, dst, outcome):
        for sink in self.sinks:
            sink.edge(kind, src, dst, outcome)

    def resolve(self, left, right):
        for sink in self.sinks:
            sink.resolve(left, right)

    def clash(self, diagnostic):
        for sink in self.sinks:
            sink.clash(diagnostic)

    def search_start(self, start, target):
        for sink in self.sinks:
            sink.search_start(start, target)

    def search_visit(self, node):
        for sink in self.sinks:
            sink.search_visit(node)

    def search_end(self, found, visits, length):
        for sink in self.sinks:
            sink.search_end(found, visits, length)

    def collapse(self, witness, members):
        for sink in self.sinks:
            sink.collapse(witness, members)

    def sweep(self, eliminated):
        for sink in self.sinks:
            sink.sweep(eliminated)

    def audit_failure(self, failure):
        for sink in self.sinks:
            sink.audit_failure(failure)

    def budget_stop(self, reason, limit, value):
        for sink in self.sinks:
            sink.budget_stop(reason, limit, value)

    def phase_begin(self, name):
        for sink in self.sinks:
            sink.phase_begin(name)

    def phase_end(self, name):
        for sink in self.sinks:
            sink.phase_end(name)

    def close(self):
        for sink in self.sinks:
            sink.close()


class LegacyCallbackSink(TraceSink):
    """Adapt the original ``SolverOptions.trace`` callable onto the sink
    API.

    The pre-subsystem observer received exactly three events —
    ``("collapse", {"witness", "members"})``, ``("sweep",
    {"eliminated"})`` and ``("clash", {"diagnostic"})`` — with these
    payload shapes; both are preserved verbatim so existing callbacks
    keep working unchanged.
    """

    def __init__(self, callback: Callable[[str, dict], None]) -> None:
        self.callback = callback

    def collapse(self, witness, members):
        self.callback(
            "collapse", {"witness": witness, "members": tuple(members)}
        )

    def sweep(self, eliminated):
        self.callback("sweep", {"eliminated": eliminated})

    def clash(self, diagnostic):
        self.callback("clash", {"diagnostic": diagnostic})


def _jsonable(value: object) -> object:
    """Terms, diagnostics and set expressions serialize as their str."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


class JsonlSink(TraceSink):
    """Stream events to a JSON-Lines file, one object per line.

    The first line is a meta record ``{"ev": "meta", "schema": 1}``;
    every following line is ``{"ev": <name>, "ts": <seconds>, ...args}``
    (see :mod:`repro.trace.events` for the per-event args).  Non-scalar
    payloads (terms, diagnostics) are stringified.  Use
    :func:`repro.trace.chrome.convert_jsonl` to turn the log into a
    Chrome/Perfetto trace.

    I/O failure policy (``on_error``): tracing must never take a solver
    run down with it.  Each record is serialized fully before a single
    ``write`` call, so a failure never leaves the sink's own partial
    fragment interleaved with later records.  On the first write/flush
    error the sink permanently disables itself (:attr:`disabled`,
    :attr:`last_error`), then either re-raises (``"raise"``, the
    default) or swallows the error and drops all further events
    (``"disable"`` — the run completes, the trace is truncated).
    """

    def __init__(self, target, on_error: str = "raise") -> None:
        """``target`` is a path or an open text file."""
        if on_error not in ("raise", "disable"):
            raise ValueError(
                f"JsonlSink.on_error must be 'raise' or 'disable', "
                f"got {on_error!r}"
            )
        self.on_error = on_error
        #: set permanently on the first I/O failure
        self.disabled = False
        #: the exception that disabled the sink, if any
        self.last_error: Optional[BaseException] = None
        if isinstance(target, (str, bytes)):
            self._file: TextIO = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.epoch = time.perf_counter()
        self._write_line(json.dumps(
            {"ev": "meta", "schema": JSONL_SCHEMA_VERSION}
        ))

    def _write_line(self, line: str) -> None:
        """Write one complete record with a single ``write`` call."""
        if self.disabled:
            return
        try:
            self._file.write(line + "\n")
        except Exception as error:
            self.disabled = True
            self.last_error = error
            if self.on_error == "raise":
                raise

    def _emit(self, _event: str, **args: object) -> None:
        if self.disabled:
            return
        obj = {"ev": _event, "ts": time.perf_counter() - self.epoch}
        for key, value in args.items():
            obj[key] = _jsonable(value)
        self._write_line(json.dumps(obj))

    def edge(self, kind, src, dst, outcome):
        self._emit(EV_EDGE, kind=kind, src=src, dst=dst, outcome=outcome)

    def resolve(self, left, right):
        self._emit(EV_RESOLVE, left=left, right=right)

    def clash(self, diagnostic):
        self._emit(
            EV_CLASH,
            kind=getattr(diagnostic, "kind", "unknown"),
            message=str(diagnostic),
        )

    def search_start(self, start, target):
        self._emit(EV_SEARCH_START, start=start, target=target)

    def search_visit(self, node):
        self._emit(EV_SEARCH_VISIT, node=node)

    def search_end(self, found, visits, length):
        self._emit(EV_SEARCH_END, found=found, visits=visits,
                   length=length)

    def collapse(self, witness, members):
        self._emit(EV_COLLAPSE, witness=witness, members=list(members))

    def sweep(self, eliminated):
        self._emit(EV_SWEEP, eliminated=eliminated)

    def budget_stop(self, reason, limit, value):
        self._emit(EV_BUDGET_STOP, reason=reason, limit=limit, value=value)

    def phase_begin(self, name):
        self._emit(EV_PHASE_BEGIN, name=name)

    def phase_end(self, name):
        self._emit(EV_PHASE_END, name=name)

    def close(self):
        if self._file is None:
            return
        file, self._file = self._file, None  # type: ignore[assignment]
        try:
            file.flush()
            if self._owns_file:
                file.close()
        except Exception as error:
            self.disabled = True
            self.last_error = error
            if self.on_error == "raise":
                raise


def read_jsonl(source) -> List[TraceEvent]:
    """Load a JSONL trace (path or open file) back into events.

    The leading meta record is validated and dropped.
    """
    if isinstance(source, (str, bytes)):
        handle: TextIO = open(source, "r", encoding="utf-8")
        owns = True
    else:
        handle = source
        owns = False
    try:
        events: List[TraceEvent] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("ev") == "meta":
                schema = obj.get("schema")
                if schema != JSONL_SCHEMA_VERSION:
                    raise ValueError(
                        f"unsupported trace schema {schema!r} "
                        f"(expected {JSONL_SCHEMA_VERSION})"
                    )
                continue
            events.append(TraceEvent.from_jsonl_obj(obj))
        return events
    finally:
        if owns:
            handle.close()


def events_to_jsonl_text(events: Iterable[TraceEvent]) -> str:
    """Serialize events to JSONL text (meta line included)."""
    buffer = io.StringIO()
    buffer.write(json.dumps(
        {"ev": "meta", "schema": JSONL_SCHEMA_VERSION}
    ) + "\n")
    for event in events:
        obj = {"ev": event.name, "ts": event.ts}
        for key, value in event.args.items():
            obj[key] = _jsonable(value)
        buffer.write(json.dumps(obj) + "\n")
    return buffer.getvalue()


def combine(*sinks: Optional[TraceSink]) -> Optional[TraceSink]:
    """Combine optional sinks: None if all are, one as-is, else a tee."""
    present = [sink for sink in sinks if sink is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return TeeSink(present)
