"""A miniature functional language for closure analysis.

The paper's Section 6 closes with: "We plan to study the impact of
online cycle elimination on the performance of closure analysis in
future work."  This package implements that client: a small untyped
lambda calculus with let/letrec/if0 and arithmetic, analyzed by a
set-constraint 0CFA over the same solver the points-to analysis uses.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

_label_counter = itertools.count()


class Expr:
    """Base class; every expression node carries a unique label."""

    __slots__ = ("label",)

    def __init__(self) -> None:
        self.label = next(_label_counter)

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def count_nodes(self) -> int:
        total = 0
        stack: List[Expr] = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children())
        return total


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name

    def __str__(self) -> str:
        return self.name


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        super().__init__()
        self.value = value

    def __str__(self) -> str:
        return str(self.value)


class Lam(Expr):
    """``(lambda (param) body)`` — the interesting value former."""

    __slots__ = ("param", "body", "name")

    def __init__(self, param: str, body: Expr, name: str = "") -> None:
        super().__init__()
        self.param = param
        self.body = body
        #: diagnostic name, e.g. the let-binding that introduced it
        self.name = name or f"lam@{self.label}"

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"(lambda ({self.param}) {self.body})"


class App(Expr):
    __slots__ = ("function", "argument")

    def __init__(self, function: Expr, argument: Expr) -> None:
        super().__init__()
        self.function = function
        self.argument = argument

    def children(self) -> Tuple[Expr, ...]:
        return (self.function, self.argument)

    def __str__(self) -> str:
        return f"({self.function} {self.argument})"


class Let(Expr):
    __slots__ = ("name", "value", "body")

    def __init__(self, name: str, value: Expr, body: Expr) -> None:
        super().__init__()
        self.name = name
        self.value = value
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.value, self.body)

    def __str__(self) -> str:
        return f"(let (({self.name} {self.value})) {self.body})"


class LetRec(Expr):
    """``(letrec ((f (lambda ...)))) body)`` — recursive binding."""

    __slots__ = ("name", "value", "body")

    def __init__(self, name: str, value: Expr, body: Expr) -> None:
        super().__init__()
        self.name = name
        self.value = value
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.value, self.body)

    def __str__(self) -> str:
        return f"(letrec (({self.name} {self.value})) {self.body})"


class If0(Expr):
    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: Expr, then_branch: Expr,
                 else_branch: Expr) -> None:
        super().__init__()
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self) -> Tuple[Expr, ...]:
        return (self.condition, self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return (f"(if0 {self.condition} {self.then_branch} "
                f"{self.else_branch})")


class Cons(Expr):
    """``(cons e1 e2)`` — a pair value."""

    __slots__ = ("head", "tail")

    def __init__(self, head: Expr, tail: Expr) -> None:
        super().__init__()
        self.head = head
        self.tail = tail

    def children(self) -> Tuple[Expr, ...]:
        return (self.head, self.tail)

    def __str__(self) -> str:
        return f"(cons {self.head} {self.tail})"


class Proj(Expr):
    """``(car e)`` or ``(cdr e)`` — pair projection."""

    __slots__ = ("which", "pair")

    def __init__(self, which: str, pair: Expr) -> None:
        super().__init__()
        if which not in ("car", "cdr"):
            raise ValueError(f"bad projection {which!r}")
        self.which = which
        self.pair = pair

    def children(self) -> Tuple[Expr, ...]:
        return (self.pair,)

    def __str__(self) -> str:
        return f"({self.which} {self.pair})"


class Prim(Expr):
    """Primitive arithmetic ``(+ a b)`` etc. — no closures produced."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        super().__init__()
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.op} {self.left} {self.right})"
