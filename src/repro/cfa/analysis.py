"""Set-constraint 0CFA (closure analysis) over the paper's solver.

Constraint generation (standard set-based closure analysis, e.g.
Heintze's set-based analysis, the paper's [Hei92] lineage):

* each expression ``e`` gets a cache variable ``C(e)`` — the set of
  abstract values ``e`` may evaluate to;
* each program variable ``x`` gets an environment variable ``r(x)``;
* a lambda ``l = (lambda (x) body)`` contributes the source term
  ``clos(l, r(x)̄, C(body))`` to its own cache — the parameter position
  is contravariant (arguments flow *into* it), the result covariant;
* an application ``(f a)`` adds ``C(f) <= clos(1, C(a)̄, C(e))`` so the
  resolution rules wire every reaching closure's parameter and result.

Recursive programs produce cyclic constraints (``letrec`` feeds a
closure's own cache into its environment), which is exactly where
online cycle elimination pays off — the "future work" the paper
sketches in Section 6.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..constraints import ConstraintSystem, Term, Var as SetVar, Variance
from ..solver import Solution, SolverOptions, solve
from .ast import App, Cons, Const, Expr, If0, Lam, Let, LetRec, Prim, Proj, Var


class CfaProgram:
    """Generated constraints plus the maps needed to read results."""

    def __init__(
        self,
        system: ConstraintSystem,
        cache: Dict[int, SetVar],
        lambdas: Dict[int, Lam],
        root: Expr,
    ) -> None:
        self.system = system
        self.cache = cache
        self.lambdas = lambdas
        self.root = root


class CfaResult:
    """Queries over a solved closure analysis."""

    def __init__(self, program: CfaProgram, solution: Solution) -> None:
        self.program = program
        self.solution = solution

    def closures_of(self, expr: Expr) -> FrozenSet[Lam]:
        """Which lambdas may ``expr`` evaluate to."""
        cache_var = self.program.cache[expr.label]
        out = set()
        for term in self.solution.least_solution(cache_var):
            if isinstance(term.label, int):
                lam = self.program.lambdas.get(term.label)
                if lam is not None:
                    out.add(lam)
        return frozenset(out)

    def closure_names_of(self, expr: Expr) -> FrozenSet[str]:
        return frozenset(lam.name for lam in self.closures_of(expr))

    def call_targets(self) -> Dict[int, FrozenSet[str]]:
        """For every application node: the reaching closure names."""
        out: Dict[int, FrozenSet[str]] = {}
        stack: List[Expr] = [self.program.root]
        while stack:
            node = stack.pop()
            if isinstance(node, App):
                out[node.label] = self.closure_names_of(node.function)
            stack.extend(node.children())
        return out


class ClosureAnalysis:
    """Generate 0CFA constraints for one program."""

    def __init__(self) -> None:
        self.system = ConstraintSystem("cfa")
        cov, con = Variance.COVARIANT, Variance.CONTRAVARIANT
        self.clos = self.system.constructor("clos", (cov, con, cov))
        self.pair = self.system.constructor("pair", (cov, cov))
        self.tag = self.system.constructor("lamtag", ())
        self.cache: Dict[int, SetVar] = {}
        self.lambdas: Dict[int, Lam] = {}
        self._env: List[Dict[str, SetVar]] = [{}]

    # ------------------------------------------------------------------
    def analyze(self, root: Expr) -> CfaProgram:
        self._generate(root)
        return CfaProgram(self.system, self.cache, self.lambdas, root)

    # ------------------------------------------------------------------
    def _cache_of(self, expr: Expr) -> SetVar:
        var = self.cache.get(expr.label)
        if var is None:
            var = self.system.fresh_var(f"C{expr.label}")
            self.cache[expr.label] = var
        return var

    def _lookup(self, name: str) -> Optional[SetVar]:
        for frame in reversed(self._env):
            if name in frame:
                return frame[name]
        return None

    def _bind(self, name: str) -> SetVar:
        var = self.system.fresh_var(f"r[{name}]")
        self._env[-1][name] = var
        return var

    # ------------------------------------------------------------------
    def _generate(self, expr: Expr) -> SetVar:
        cache = self._cache_of(expr)
        if isinstance(expr, Const):
            pass  # integers carry no closures
        elif isinstance(expr, Var):
            env_var = self._lookup(expr.name)
            if env_var is not None:
                self.system.add(env_var, cache)
        elif isinstance(expr, Lam):
            self.lambdas[expr.label] = expr
            self._env.append({})
            param_var = self._bind(expr.param)
            body_cache = self._generate(expr.body)
            self._env.pop()
            label_term = Term(self.tag, (), label=expr.label)
            closure = Term(
                self.clos,
                (label_term, param_var, body_cache),
                label=expr.label,
            )
            self.system.add(closure, cache)
        elif isinstance(expr, App):
            function_cache = self._generate(expr.function)
            argument_cache = self._generate(expr.argument)
            sink = Term(
                self.clos, (self.system.one, argument_cache, cache)
            )
            self.system.add(function_cache, sink)
        elif isinstance(expr, Let):
            value_cache = self._generate(expr.value)
            self._env.append({})
            bound = self._bind(expr.name)
            self.system.add(value_cache, bound)
            body_cache = self._generate(expr.body)
            self._env.pop()
            self.system.add(body_cache, cache)
        elif isinstance(expr, LetRec):
            self._env.append({})
            bound = self._bind(expr.name)
            value_cache = self._generate(expr.value)  # f visible inside
            self.system.add(value_cache, bound)
            body_cache = self._generate(expr.body)
            self._env.pop()
            self.system.add(body_cache, cache)
        elif isinstance(expr, If0):
            self._generate(expr.condition)
            then_cache = self._generate(expr.then_branch)
            else_cache = self._generate(expr.else_branch)
            self.system.add(then_cache, cache)
            self.system.add(else_cache, cache)
        elif isinstance(expr, Cons):
            head_cache = self._generate(expr.head)
            tail_cache = self._generate(expr.tail)
            self.system.add(
                Term(self.pair, (head_cache, tail_cache)), cache
            )
        elif isinstance(expr, Proj):
            pair_cache = self._generate(expr.pair)
            if expr.which == "car":
                sink = Term(self.pair, (cache, self.system.one))
            else:
                sink = Term(self.pair, (self.system.one, cache))
            self.system.add(pair_cache, sink)
        elif isinstance(expr, Prim):
            self._generate(expr.left)
            self._generate(expr.right)
        else:
            raise TypeError(f"unexpected expression {expr!r}")
        return cache


# ----------------------------------------------------------------------
def analyze_expr(root: Expr) -> CfaProgram:
    """Generate 0CFA constraints for a parsed expression."""
    return ClosureAnalysis().analyze(root)


def analyze_cfa_source(source: str) -> CfaProgram:
    """Parse mini-language source and generate constraints."""
    from .parser import parse_expr

    return analyze_expr(parse_expr(source))


def solve_cfa(program: CfaProgram,
              options: Optional[SolverOptions] = None) -> CfaResult:
    """Solve the constraints and wrap the closure-analysis view."""
    solution = solve(program.system, options or SolverOptions())
    return CfaResult(program, solution)
