"""An s-expression reader for the mini functional language.

Grammar::

    e ::= NAME | INTEGER
        | (lambda (NAME) e)
        | (let ((NAME e)) e)
        | (letrec ((NAME e)) e)
        | (if0 e e e)
        | (+ e e) | (- e e) | (* e e)
        | (e e)                          ; application

Multi-argument lambdas/applications are curried automatically.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from .ast import App, Cons, Const, Expr, If0, Lam, Let, LetRec, Prim, Proj, Var

_PRIMS = ("+", "-", "*")

SExpr = Union[str, List["SExpr"]]


class CfaParseError(Exception):
    """Malformed mini-language input."""


def _tokenize(source: str) -> List[str]:
    return (
        source.replace("(", " ( ").replace(")", " ) ").split()
    )


def _read(tokens: List[str], position: int) -> Tuple[SExpr, int]:
    if position >= len(tokens):
        raise CfaParseError("unexpected end of input")
    token = tokens[position]
    if token == "(":
        items: List[SExpr] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _read(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise CfaParseError("missing ')'")
        return items, position + 1
    if token == ")":
        raise CfaParseError("unexpected ')'")
    return token, position + 1


def _build(sexpr: SExpr) -> Expr:
    if isinstance(sexpr, str):
        try:
            return Const(int(sexpr))
        except ValueError:
            return Var(sexpr)
    if not sexpr:
        raise CfaParseError("empty application")
    head = sexpr[0]
    if head == "lambda":
        if len(sexpr) != 3 or not isinstance(sexpr[1], list):
            raise CfaParseError("lambda needs (lambda (params...) body)")
        params = sexpr[1]
        if not params:
            raise CfaParseError("lambda needs at least one parameter")
        body = _build(sexpr[2])
        for param in reversed(params):
            if not isinstance(param, str):
                raise CfaParseError("parameters must be names")
            body = Lam(param, body)
        return body
    if head in ("let", "letrec"):
        if (
            len(sexpr) != 3
            or not isinstance(sexpr[1], list)
            or len(sexpr[1]) != 1
            or not isinstance(sexpr[1][0], list)
            or len(sexpr[1][0]) != 2
        ):
            raise CfaParseError(f"{head} needs (({head} ((x e)) body)")
        (name, value_sexpr), body_sexpr = sexpr[1][0], sexpr[2]
        if not isinstance(name, str):
            raise CfaParseError("binding name must be an identifier")
        value = _build(value_sexpr)
        if isinstance(value, Lam) and not value.name.startswith(name):
            value.name = name
        body = _build(body_sexpr)
        cls = Let if head == "let" else LetRec
        return cls(name, value, body)
    if head == "if0":
        if len(sexpr) != 4:
            raise CfaParseError("if0 needs three operands")
        return If0(*(_build(part) for part in sexpr[1:]))
    if head == "cons" and len(sexpr) == 3:
        return Cons(_build(sexpr[1]), _build(sexpr[2]))
    if head in ("car", "cdr") and len(sexpr) == 2:
        return Proj(head, _build(sexpr[1]))
    if head in _PRIMS and len(sexpr) == 3:
        return Prim(head, _build(sexpr[1]), _build(sexpr[2]))
    # Application; curry multi-argument calls.
    parts = [_build(part) for part in sexpr]
    expr = parts[0]
    if len(parts) == 1:
        raise CfaParseError("application needs an argument")
    for argument in parts[1:]:
        expr = App(expr, argument)
    return expr


def parse_expr(source: str) -> Expr:
    """Parse one mini-language expression."""
    tokens = _tokenize(source)
    sexpr, position = _read(tokens, 0)
    if position != len(tokens):
        raise CfaParseError("trailing input after expression")
    return _build(sexpr)
