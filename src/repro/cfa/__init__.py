"""Closure analysis (0CFA) — the paper's Section 6 future-work client.

Quick use::

    from repro.cfa import analyze_cfa_source, solve_cfa

    program = analyze_cfa_source("(let ((id (lambda (x) x))) (id id))")
    result = solve_cfa(program)
    result.closure_names_of(program.root)   # frozenset({'id'})
"""

from .analysis import (
    CfaProgram,
    CfaResult,
    ClosureAnalysis,
    analyze_cfa_source,
    analyze_expr,
    solve_cfa,
)
from .ast import App, Cons, Const, Expr, If0, Lam, Let, LetRec, Prim, Proj, Var
from .parser import CfaParseError, parse_expr

__all__ = [
    "App",
    "CfaParseError",
    "CfaProgram",
    "CfaResult",
    "ClosureAnalysis",
    "Cons",
    "Const",
    "Expr",
    "If0",
    "Lam",
    "Let",
    "LetRec",
    "Prim",
    "Proj",
    "Var",
    "analyze_cfa_source",
    "analyze_expr",
    "parse_expr",
    "solve_cfa",
]
