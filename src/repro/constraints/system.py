"""Constraint system builder — the public entry point for clients.

A :class:`ConstraintSystem` accumulates variables, constructors, and raw
inclusion constraints ``L <= R``.  It is a passive container: solving is
performed by :func:`repro.solver.solve`, which may be invoked several
times on one system with different options (this is exactly how the
experiment harness runs the same constraints through all six
configurations of paper Table 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .constructors import Constructor, ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import (
    InvalidSystemError,
    MalformedExpressionError,
    SignatureError,
)
from .expressions import ONE, ZERO, SetExpression, Term, Var
from .variance import Variance


class ConstraintSystem:
    """A mutable collection of set variables and inclusion constraints."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._constructors: Dict[str, Constructor] = {
            ZERO_CONSTRUCTOR.name: ZERO_CONSTRUCTOR,
            ONE_CONSTRUCTOR.name: ONE_CONSTRUCTOR,
        }
        self._vars: List[Var] = []
        self._constraints: List[Tuple[SetExpression, SetExpression]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def constructor(
        self,
        name: str,
        signature: Sequence[Variance] = (),
    ) -> Constructor:
        """Register (or look up) a constructor with the given signature.

        Raises :class:`SignatureError` if ``name`` was previously
        registered with a different signature.
        """
        signature = tuple(signature)
        existing = self._constructors.get(name)
        if existing is not None:
            if existing.signature != signature:
                raise SignatureError(
                    f"constructor {name!r} already registered with "
                    f"signature {existing.signature}, got {signature}"
                )
            return existing
        made = Constructor(name, signature)
        self._constructors[name] = made
        return made

    def fresh_var(self, name: str = "") -> Var:
        """Create a fresh set variable with a deterministic index."""
        var = Var(len(self._vars), name)
        self._vars.append(var)
        return var

    def fresh_vars(self, count: int, prefix: str = "v") -> List[Var]:
        """Create ``count`` fresh variables named ``prefix0..``."""
        return [self.fresh_var(f"{prefix}{i}") for i in range(count)]

    def term(
        self,
        constructor: Union[Constructor, str],
        args: Sequence[SetExpression] = (),
        label: object = None,
    ) -> Term:
        """Build a term, resolving a constructor name if necessary."""
        if isinstance(constructor, str):
            found = self._constructors.get(constructor)
            if found is None:
                raise SignatureError(
                    f"unknown constructor {constructor!r}; register it "
                    f"with ConstraintSystem.constructor first"
                )
            constructor = found
        return Term(constructor, tuple(args), label)

    def add(self, left: SetExpression, right: SetExpression) -> None:
        """Record the inclusion constraint ``left <= right``."""
        self._check_expr(left)
        self._check_expr(right)
        self._constraints.append((left, right))

    def add_all(
        self, pairs: Iterable[Tuple[SetExpression, SetExpression]]
    ) -> None:
        for left, right in pairs:
            self.add(left, right)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def zero(self) -> Term:
        return ZERO

    @property
    def one(self) -> Term:
        return ONE

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def variables(self) -> Tuple[Var, ...]:
        return tuple(self._vars)

    @property
    def constraints(self) -> Tuple[Tuple[SetExpression, SetExpression], ...]:
        return tuple(self._constraints)

    def var_by_index(self, index: int) -> Var:
        return self._vars[index]

    def find_var(self, name: str) -> Optional[Var]:
        """Return the first variable with the given name, if any."""
        for var in self._vars:
            if var.name == name:
                return var
        return None

    def __len__(self) -> int:
        return len(self._constraints)

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem({self.name!r}, vars={self.num_vars}, "
            f"constraints={len(self._constraints)})"
        )

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_expr(self, expr: SetExpression) -> None:
        # Iterative (explicit stack): expressions can nest thousands of
        # constructors deep, and the recursion limit must not decide
        # whether an `add` succeeds.
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                if (node.index >= len(self._vars)
                        or self._vars[node.index] is not node):
                    raise MalformedExpressionError(
                        f"variable {node!r} does not belong to this system"
                    )
            elif isinstance(node, Term):
                stack.extend(node.args)
            else:
                raise MalformedExpressionError(
                    f"not a set expression: {node!r}"
                )

    def validate(self) -> None:
        """Re-validate every recorded constraint before solving.

        :meth:`add` already rejects foreign expressions, but constraints
        can reach a solver through other routes (deserialized systems,
        direct ``_constraints`` manipulation, hand-built ``Var`` objects
        with stale indices).  The solver engine calls this before
        closure so malformed input fails with a structured
        :class:`~repro.constraints.errors.InvalidSystemError` naming the
        offending constraint instead of leaking an ``IndexError`` or
        ``KeyError`` from deep inside the graph code.

        Checks, per constraint side: every node is a ``Var`` or
        ``Term``; variable indices lie in ``[0, num_vars)``; term
        argument counts match their constructor's arity; and no
        constructor name is used with a signature different from the
        registered one (arity/variance conflicts).
        """
        num_vars = len(self._vars)
        registered = self._constructors
        for position, (left, right) in enumerate(self._constraints):
            stack = [left, right]
            while stack:
                node = stack.pop()
                if isinstance(node, Var):
                    if not 0 <= node.index < num_vars:
                        raise InvalidSystemError(
                            "var-out-of-range",
                            f"variable {node!r} has index {node.index} "
                            f"outside [0, {num_vars})",
                            position,
                        )
                elif isinstance(node, Term):
                    ctor = node.constructor
                    if len(node.args) != ctor.arity:
                        raise InvalidSystemError(
                            "arity-mismatch",
                            f"term {node!r} carries {len(node.args)} "
                            f"argument(s) for {ctor.arity}-ary "
                            f"constructor {ctor.name!r}",
                            position,
                        )
                    known = registered.get(ctor.name)
                    if known is not None and known.signature != ctor.signature:
                        raise InvalidSystemError(
                            "signature-conflict",
                            f"constructor {ctor.name!r} used with "
                            f"signature {ctor.signature}, but registered "
                            f"with {known.signature}",
                            position,
                        )
                    stack.extend(node.args)
                else:
                    raise InvalidSystemError(
                        "not-an-expression",
                        f"constraint contains non-expression {node!r}",
                        position,
                    )
