"""Constraint system builder — the public entry point for clients.

A :class:`ConstraintSystem` accumulates variables, constructors, and raw
inclusion constraints ``L <= R``.  It is a passive container: solving is
performed by :func:`repro.solver.solve`, which may be invoked several
times on one system with different options (this is exactly how the
experiment harness runs the same constraints through all six
configurations of paper Table 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .constructors import Constructor, ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import MalformedExpressionError, SignatureError
from .expressions import ONE, ZERO, SetExpression, Term, Var
from .variance import Variance


class ConstraintSystem:
    """A mutable collection of set variables and inclusion constraints."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._constructors: Dict[str, Constructor] = {
            ZERO_CONSTRUCTOR.name: ZERO_CONSTRUCTOR,
            ONE_CONSTRUCTOR.name: ONE_CONSTRUCTOR,
        }
        self._vars: List[Var] = []
        self._constraints: List[Tuple[SetExpression, SetExpression]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def constructor(
        self,
        name: str,
        signature: Sequence[Variance] = (),
    ) -> Constructor:
        """Register (or look up) a constructor with the given signature.

        Raises :class:`SignatureError` if ``name`` was previously
        registered with a different signature.
        """
        signature = tuple(signature)
        existing = self._constructors.get(name)
        if existing is not None:
            if existing.signature != signature:
                raise SignatureError(
                    f"constructor {name!r} already registered with "
                    f"signature {existing.signature}, got {signature}"
                )
            return existing
        made = Constructor(name, signature)
        self._constructors[name] = made
        return made

    def fresh_var(self, name: str = "") -> Var:
        """Create a fresh set variable with a deterministic index."""
        var = Var(len(self._vars), name)
        self._vars.append(var)
        return var

    def fresh_vars(self, count: int, prefix: str = "v") -> List[Var]:
        """Create ``count`` fresh variables named ``prefix0..``."""
        return [self.fresh_var(f"{prefix}{i}") for i in range(count)]

    def term(
        self,
        constructor: Union[Constructor, str],
        args: Sequence[SetExpression] = (),
        label: object = None,
    ) -> Term:
        """Build a term, resolving a constructor name if necessary."""
        if isinstance(constructor, str):
            found = self._constructors.get(constructor)
            if found is None:
                raise SignatureError(
                    f"unknown constructor {constructor!r}; register it "
                    f"with ConstraintSystem.constructor first"
                )
            constructor = found
        return Term(constructor, tuple(args), label)

    def add(self, left: SetExpression, right: SetExpression) -> None:
        """Record the inclusion constraint ``left <= right``."""
        self._check_expr(left)
        self._check_expr(right)
        self._constraints.append((left, right))

    def add_all(
        self, pairs: Iterable[Tuple[SetExpression, SetExpression]]
    ) -> None:
        for left, right in pairs:
            self.add(left, right)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def zero(self) -> Term:
        return ZERO

    @property
    def one(self) -> Term:
        return ONE

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def variables(self) -> Tuple[Var, ...]:
        return tuple(self._vars)

    @property
    def constraints(self) -> Tuple[Tuple[SetExpression, SetExpression], ...]:
        return tuple(self._constraints)

    def var_by_index(self, index: int) -> Var:
        return self._vars[index]

    def find_var(self, name: str) -> Optional[Var]:
        """Return the first variable with the given name, if any."""
        for var in self._vars:
            if var.name == name:
                return var
        return None

    def __len__(self) -> int:
        return len(self._constraints)

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem({self.name!r}, vars={self.num_vars}, "
            f"constraints={len(self._constraints)})"
        )

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_expr(self, expr: SetExpression) -> None:
        if isinstance(expr, Var):
            if (expr.index >= len(self._vars)
                    or self._vars[expr.index] is not expr):
                raise MalformedExpressionError(
                    f"variable {expr!r} does not belong to this system"
                )
            return
        if isinstance(expr, Term):
            for arg in expr.args:
                self._check_expr(arg)
            return
        raise MalformedExpressionError(f"not a set expression: {expr!r}")
