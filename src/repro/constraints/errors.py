"""Exceptions and diagnostics for the set-constraint system.

Resolution of inclusion constraints can discover *inconsistencies*
(e.g. ``c(...) <= d(...)`` for distinct constructors ``c`` and ``d``).
A batch analysis such as points-to analysis over possibly ill-typed C
should not abort on the first such clash, so the solver records
:class:`ConstraintDiagnostic` values and keeps going.  Callers that want
hard failures can use :meth:`repro.solver.Solution.raise_on_errors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ReproError


class ConstraintError(ReproError):
    """Base class for all errors raised by the constraint machinery."""


class SignatureError(ConstraintError):
    """A constructor was applied with the wrong number of arguments."""


class MalformedExpressionError(ConstraintError):
    """A set expression was built from unsupported pieces."""


class InvalidSystemError(ConstraintError):
    """A constraint system failed solve-time validation.

    Raised by :meth:`repro.constraints.ConstraintSystem.validate` (which
    the solver engine runs before closure) instead of letting malformed
    input surface as a raw ``IndexError``/``KeyError`` from deep inside
    the graph code.

    Attributes:
        reason: machine-readable tag, e.g. ``"var-out-of-range"``,
            ``"arity-mismatch"``, ``"signature-conflict"``,
            ``"not-an-expression"``.
        constraint_index: position of the offending constraint in
            :attr:`ConstraintSystem.constraints` (``-1`` when the fault
            is not tied to one constraint).
    """

    def __init__(self, reason: str, message: str,
                 constraint_index: int = -1) -> None:
        super().__init__(
            f"{message} (constraint #{constraint_index}, {reason})"
            if constraint_index >= 0 else f"{message} ({reason})"
        )
        self.reason = reason
        self.constraint_index = constraint_index


class DepthLimitError(ConstraintError):
    """A set expression nests constructors deeper than the solver allows.

    Raised with a clear message by
    :func:`repro.constraints.resolution.decompose` (and by the iterative
    expression walkers) instead of letting a pathologically deep term
    exhaust the Python recursion limit mid-closure.
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"constructor term nests {depth} levels deep, exceeding the "
            f"limit of {limit}; raise repro.constraints.resolution."
            f"MAX_TERM_DEPTH (or pass max_depth) if this is intentional"
        )
        self.depth = depth
        self.limit = limit


class InconsistentConstraintError(ConstraintError):
    """Raised when the caller asked for strict handling of clashes."""

    def __init__(self, diagnostic: "ConstraintDiagnostic") -> None:
        super().__init__(str(diagnostic))
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class ConstraintDiagnostic:
    """A non-fatal inconsistency found during resolution.

    Attributes:
        kind: machine-readable tag, e.g. ``"constructor-clash"`` or
            ``"nonempty-in-zero"``.
        left: the left-hand set expression of the offending constraint.
        right: the right-hand set expression.
    """

    kind: str
    left: Any
    right: Any

    def __str__(self) -> str:
        return f"{self.kind}: {self.left} <= {self.right}"
