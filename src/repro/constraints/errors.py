"""Exceptions and diagnostics for the set-constraint system.

Resolution of inclusion constraints can discover *inconsistencies*
(e.g. ``c(...) <= d(...)`` for distinct constructors ``c`` and ``d``).
A batch analysis such as points-to analysis over possibly ill-typed C
should not abort on the first such clash, so the solver records
:class:`ConstraintDiagnostic` values and keeps going.  Callers that want
hard failures can use :meth:`repro.solver.Solution.raise_on_errors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class ConstraintError(Exception):
    """Base class for all errors raised by the constraint machinery."""


class SignatureError(ConstraintError):
    """A constructor was applied with the wrong number of arguments."""


class MalformedExpressionError(ConstraintError):
    """A set expression was built from unsupported pieces."""


class InconsistentConstraintError(ConstraintError):
    """Raised when the caller asked for strict handling of clashes."""

    def __init__(self, diagnostic: "ConstraintDiagnostic") -> None:
        super().__init__(str(diagnostic))
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class ConstraintDiagnostic:
    """A non-fatal inconsistency found during resolution.

    Attributes:
        kind: machine-readable tag, e.g. ``"constructor-clash"`` or
            ``"nonempty-in-zero"``.
        left: the left-hand set expression of the offending constraint.
        right: the right-hand set expression.
    """

    kind: str
    left: Any
    right: Any

    def __str__(self) -> str:
        return f"{self.kind}: {self.left} <= {self.right}"
