"""Argument variance for set constructors.

Every constructor argument position is either covariant (the constructed
set grows when the argument grows) or contravariant (the constructed set
shrinks when the argument grows).  Variance drives the structural
decomposition rule of the resolution system ``R`` (paper Figure 1):

    c(l_1, ..., l_n) <= c(r_1, ..., r_n)

decomposes into ``l_i <= r_i`` for covariant positions and ``r_i <= l_i``
for contravariant positions.
"""

from __future__ import annotations

import enum


class Variance(enum.Enum):
    """Variance of a constructor argument position."""

    COVARIANT = "+"
    CONTRAVARIANT = "-"

    def flip(self) -> "Variance":
        """Return the opposite variance.

        Useful when reasoning about nested contexts: an argument that is
        contravariant inside a contravariant position is overall covariant.
        """
        if self is Variance.COVARIANT:
            return Variance.CONTRAVARIANT
        return Variance.COVARIANT

    @property
    def is_covariant(self) -> bool:
        return self is Variance.COVARIANT

    @property
    def is_contravariant(self) -> bool:
        return self is Variance.CONTRAVARIANT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __hash__(self) -> int:
        # Enum members hash by object identity by default, which varies
        # between processes.  Variance participates (via Constructor
        # signatures) in every Term hash, so give it a value-based hash:
        # with PYTHONHASHSEED pinned, term-set iteration order — and
        # therefore the solver's emitted-operation order and Work counts
        # — becomes reproducible across processes.
        return hash(self.value)


#: Shorthands used throughout signature declarations.
COVARIANT = Variance.COVARIANT
CONTRAVARIANT = Variance.CONTRAVARIANT
