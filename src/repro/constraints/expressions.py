"""Set expressions: variables, constructed terms, 0 and 1.

The grammar (paper Section 2.1)::

    L, R in se ::= X | c(se_1, ..., se_n) | 0 | 1

``0`` and ``1`` are represented as nullary terms over the distinguished
constructors :data:`~repro.constraints.constructors.ZERO_CONSTRUCTOR` and
:data:`~repro.constraints.constructors.ONE_CONSTRUCTOR`, matching the
paper's treatment of 0 and 1 as constructors.

Expressions are immutable and hashable; terms hash structurally, which is
what lets the solver deduplicate source/sink edges.
"""

from __future__ import annotations

from typing import Tuple, Union

from .constructors import Constructor, ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import MalformedExpressionError, SignatureError


class SetExpression:
    """Abstract base for all set expressions."""

    __slots__ = ()

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Var)

    @property
    def is_term(self) -> bool:
        return isinstance(self, Term)

    @property
    def is_zero(self) -> bool:
        return isinstance(self, Term) and self.constructor is ZERO_CONSTRUCTOR

    @property
    def is_one(self) -> bool:
        return isinstance(self, Term) and self.constructor is ONE_CONSTRUCTOR


class Var(SetExpression):
    """A set variable.

    Variables are created through
    :meth:`repro.constraints.ConstraintSystem.fresh_var`, which assigns a
    deterministic creation ``index``.  Identity (and hashing) is by index,
    so two systems' variables must never be mixed — the system checks this.
    """

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str = "") -> None:
        self.index = index
        self.name = name or f"v{index}"

    def __repr__(self) -> str:
        return f"Var({self.index}, {self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("var", self.index))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.index == self.index


class Term(SetExpression):
    """A constructed term ``c(se_1, ..., se_n)``.

    Args must match the constructor's arity.  ``label`` is an optional
    opaque tag carried along for client use (Andersen's analysis stores
    the abstract location there); it participates in equality so that
    distinct locations yield distinct source terms.
    """

    __slots__ = ("constructor", "args", "label", "_hash")

    def __init__(
        self,
        constructor: Constructor,
        args: Tuple[SetExpression, ...] = (),
        label: object = None,
    ) -> None:
        args = tuple(args)
        if len(args) != constructor.arity:
            raise SignatureError(
                f"constructor {constructor.name!r} expects "
                f"{constructor.arity} argument(s), got {len(args)}"
            )
        for arg in args:
            if not isinstance(arg, SetExpression):
                raise MalformedExpressionError(
                    f"term argument {arg!r} is not a set expression"
                )
        self.constructor = constructor
        self.args = args
        self.label = label
        # ``hash(None)`` is address-based before Python 3.12, which would
        # make unlabeled-term hashes (and hence set iteration order and
        # the solver's Work counts) vary between processes.  Omit the
        # label from the hash when absent; equality still checks it.
        if label is None:
            self._hash = hash((constructor, args))
        else:
            self._hash = hash((constructor, args, label))

    def __repr__(self) -> str:
        return (
            f"Term({self.constructor.name!r}, {self.args!r}, "
            f"{self.label!r})"
        )

    def __str__(self) -> str:
        tag = f"[{self.label}]" if self.label is not None else ""
        if not self.args:
            return f"{self.constructor.name}{tag}"
        inner = ",".join(str(a) for a in self.args)
        return f"{self.constructor.name}{tag}({inner})"

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Term)
            and other._hash == self._hash
            and other.constructor == self.constructor
            and other.label == self.label
            and other.args == self.args
        )


#: The empty set ``0``.
ZERO = Term(ZERO_CONSTRUCTOR)

#: The universal set ``1``.
ONE = Term(ONE_CONSTRUCTOR)

#: Anything accepted where a set expression is expected.
SetExpr = Union[Var, Term]


def variables_of(expr: SetExpression) -> Tuple[Var, ...]:
    """Return the variables occurring in ``expr``, in left-to-right order.

    Duplicates are preserved; callers needing a set can wrap the result.
    Iterative (explicit stack) so pathologically deep terms cannot
    overflow the Python recursion limit.
    """
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            out.append(node)
        elif isinstance(node, Term):
            stack.extend(reversed(node.args))
        else:
            raise MalformedExpressionError(f"not a set expression: {node!r}")
    return tuple(out)
