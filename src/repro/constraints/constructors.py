"""Set constructors and their signatures.

A constructor ``c`` has a fixed *signature*: an arity and a variance for
each argument position (paper Section 2.1).  Constructors are plain value
objects — two constructors are the same constructor exactly when they
agree on name and signature.  :class:`repro.constraints.ConstraintSystem`
additionally enforces that a name is never reused with a different
signature within one system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .errors import SignatureError
from .variance import Variance


@dataclass(frozen=True)
class Constructor:
    """An n-ary set constructor with per-argument variance.

    Attributes:
        name: the constructor's display name, e.g. ``"ref"``.
        signature: variance of each argument position; the arity is
            ``len(signature)``.
    """

    name: str
    signature: Tuple[Variance, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("constructor name must be non-empty")
        if not isinstance(self.signature, tuple):
            # Allow lists for convenience but store a tuple.
            object.__setattr__(self, "signature", tuple(self.signature))
        for variance in self.signature:
            if not isinstance(variance, Variance):
                raise SignatureError(
                    f"signature of {self.name!r} contains non-Variance "
                    f"entry {variance!r}"
                )

    @property
    def arity(self) -> int:
        return len(self.signature)

    @property
    def is_nullary(self) -> bool:
        return not self.signature

    def __str__(self) -> str:
        if self.is_nullary:
            return self.name
        marks = ",".join(str(v) for v in self.signature)
        return f"{self.name}/{self.arity}({marks})"


#: The empty set, treated as a nullary constructor (paper Section 2.2:
#: "we treat 0 and 1 as constructors").
ZERO_CONSTRUCTOR = Constructor("0")

#: The universal set, also a nullary constructor.
ONE_CONSTRUCTOR = Constructor("1")
