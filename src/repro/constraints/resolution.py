"""The resolution rules ``R`` (paper Figure 1).

These rules rewrite an arbitrary inclusion ``L <= R`` into *atomic*
constraints of the three forms the graph representations store:

====================  =========================================
``X <= Y``            variable-variable constraint  (``VAR_VAR``)
``c(...) <= X``       source-variable constraint    (``SOURCE_VAR``)
``X <= c(...)``       variable-sink constraint      (``VAR_SINK``)
====================  =========================================

The structural rule decomposes ``c(l_1..l_n) <= c(r_1..r_n)`` into
argument constraints oriented by variance.  Trivial constraints
(``0 <= se`` and ``se <= 1``) are dropped.  Clashes between distinct
constructors — including ``c(...) <= 0`` and ``1 <= c(...)`` — are
reported as :class:`~repro.constraints.errors.ConstraintDiagnostic`
values rather than raised, so resolution of an ill-typed input can
continue.
"""

from __future__ import annotations

from typing import List, Tuple

from .errors import ConstraintDiagnostic, MalformedExpressionError
from .expressions import SetExpression, Term, Var

#: Tag for an atomic ``X <= Y`` constraint: ``(VAR_VAR, X, Y)``.
VAR_VAR = "vv"
#: Tag for an atomic ``c(...) <= X`` constraint: ``(SOURCE_VAR, term, X)``.
SOURCE_VAR = "sv"
#: Tag for an atomic ``X <= c(...)`` constraint: ``(VAR_SINK, X, term)``.
VAR_SINK = "vs"

#: An atomic constraint as produced by :func:`decompose`.
Atomic = Tuple[str, object, object]


def decompose(
    left: SetExpression,
    right: SetExpression,
    atoms: List[Atomic],
    diagnostics: List[ConstraintDiagnostic],
) -> None:
    """Rewrite ``left <= right`` into atomic constraints.

    Appends atomic constraints to ``atoms`` and inconsistency reports to
    ``diagnostics``.  Uses an explicit work stack so deeply nested terms
    cannot overflow the Python recursion limit.
    """
    stack = [(left, right)]
    while stack:
        l, r = stack.pop()
        if isinstance(l, Term) and l.is_zero:
            continue  # 0 <= se : trivially true
        if isinstance(r, Term) and r.is_one:
            continue  # se <= 1 : trivially true
        l_is_var = isinstance(l, Var)
        r_is_var = isinstance(r, Var)
        if l_is_var and r_is_var:
            atoms.append((VAR_VAR, l, r))
        elif l_is_var:
            if not isinstance(r, Term):
                raise MalformedExpressionError(f"bad sink expression {r!r}")
            atoms.append((VAR_SINK, l, r))
        elif r_is_var:
            if not isinstance(l, Term):
                raise MalformedExpressionError(f"bad source expression {l!r}")
            atoms.append((SOURCE_VAR, l, r))
        elif isinstance(l, Term) and isinstance(r, Term):
            if l.constructor == r.constructor:
                for variance, l_arg, r_arg in zip(
                    l.constructor.signature, l.args, r.args
                ):
                    if variance.is_covariant:
                        stack.append((l_arg, r_arg))
                    else:
                        stack.append((r_arg, l_arg))
            else:
                diagnostics.append(_clash(l, r))
        else:
            raise MalformedExpressionError(
                f"cannot decompose {l!r} <= {r!r}"
            )


def _clash(left: Term, right: Term) -> ConstraintDiagnostic:
    """Classify a constructor clash into a diagnostic kind."""
    if right.is_zero:
        kind = "nonempty-in-zero"
    elif left.is_one:
        kind = "one-in-constructed"
    else:
        kind = "constructor-clash"
    return ConstraintDiagnostic(kind, left, right)


def decompose_pair(
    left: SetExpression, right: SetExpression
) -> Tuple[List[Atomic], List[ConstraintDiagnostic]]:
    """Convenience wrapper returning fresh lists (used by tests)."""
    atoms: List[Atomic] = []
    diagnostics: List[ConstraintDiagnostic] = []
    decompose(left, right, atoms, diagnostics)
    return atoms, diagnostics
