"""The resolution rules ``R`` (paper Figure 1).

These rules rewrite an arbitrary inclusion ``L <= R`` into *atomic*
constraints of the three forms the graph representations store:

====================  =========================================
``X <= Y``            variable-variable constraint  (``VAR_VAR``)
``c(...) <= X``       source-variable constraint    (``SOURCE_VAR``)
``X <= c(...)``       variable-sink constraint      (``VAR_SINK``)
====================  =========================================

The structural rule decomposes ``c(l_1..l_n) <= c(r_1..r_n)`` into
argument constraints oriented by variance.  Trivial constraints
(``0 <= se`` and ``se <= 1``) are dropped.  Clashes between distinct
constructors — including ``c(...) <= 0`` and ``1 <= c(...)`` — are
reported as :class:`~repro.constraints.errors.ConstraintDiagnostic`
values rather than raised, so resolution of an ill-typed input can
continue.
"""

from __future__ import annotations

from typing import List, Tuple

from typing import Optional

from .constructors import ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import (
    ConstraintDiagnostic,
    DepthLimitError,
    MalformedExpressionError,
)
from .expressions import SetExpression, Term, Var
from .variance import Variance

#: Default bound on constructor nesting during decomposition.  Deeper
#: terms raise :class:`~repro.constraints.errors.DepthLimitError` with a
#: clear message instead of (via the recursive helpers that surround the
#: solver: hashing, printing, validation) flirting with Python's
#: recursion limit mid-closure.  Far above anything the workloads
#: produce; raise it (or pass ``max_depth``) for intentionally deep
#: systems.
MAX_TERM_DEPTH = 100_000

#: Tag for an atomic ``X <= Y`` constraint: ``(VAR_VAR, X, Y)``.
VAR_VAR = "vv"
#: Tag for an atomic ``c(...) <= X`` constraint: ``(SOURCE_VAR, term, X)``.
SOURCE_VAR = "sv"
#: Tag for an atomic ``X <= c(...)`` constraint: ``(VAR_SINK, X, term)``.
VAR_SINK = "vs"

#: An atomic constraint as produced by :func:`decompose`.
Atomic = Tuple[str, object, object]


def decompose(
    left: SetExpression,
    right: SetExpression,
    atoms: List[Atomic],
    diagnostics: List[ConstraintDiagnostic],
    max_depth: Optional[int] = None,
) -> None:
    """Rewrite ``left <= right`` into atomic constraints.

    Appends atomic constraints to ``atoms`` and inconsistency reports to
    ``diagnostics``.  Uses an explicit work stack so deeply nested terms
    cannot overflow the Python recursion limit; nesting beyond
    ``max_depth`` (default :data:`MAX_TERM_DEPTH`) raises
    :class:`~repro.constraints.errors.DepthLimitError`.

    This function sits on the solver's hot path (one call per ``rr``
    worklist operation), so the type dispatch is written with local
    bindings and identity checks instead of the ``is_zero``/``is_one``
    convenience properties.
    """
    append = atoms.append
    covariant = Variance.COVARIANT
    limit = MAX_TERM_DEPTH if max_depth is None else max_depth
    stack = [(left, right, 0)]
    push = stack.append
    pop = stack.pop
    while stack:
        l, r, depth = pop()
        if depth > limit:
            raise DepthLimitError(depth, limit)
        l_is_term = isinstance(l, Term)
        if l_is_term and l.constructor is ZERO_CONSTRUCTOR:
            continue  # 0 <= se : trivially true
        r_is_term = isinstance(r, Term)
        if r_is_term and r.constructor is ONE_CONSTRUCTOR:
            continue  # se <= 1 : trivially true
        if isinstance(l, Var):
            if isinstance(r, Var):
                append((VAR_VAR, l, r))
            elif r_is_term:
                append((VAR_SINK, l, r))
            else:
                raise MalformedExpressionError(f"bad sink expression {r!r}")
        elif isinstance(r, Var):
            if l_is_term:
                append((SOURCE_VAR, l, r))
            else:
                raise MalformedExpressionError(f"bad source expression {l!r}")
        elif l_is_term and r_is_term:
            l_ctor = l.constructor
            r_ctor = r.constructor
            if l_ctor is r_ctor or l_ctor == r_ctor:
                child_depth = depth + 1
                for variance, l_arg, r_arg in zip(
                    l_ctor.signature, l.args, r.args
                ):
                    if variance is covariant:
                        push((l_arg, r_arg, child_depth))
                    else:
                        push((r_arg, l_arg, child_depth))
            else:
                diagnostics.append(_clash(l, r))
        else:
            raise MalformedExpressionError(
                f"cannot decompose {l!r} <= {r!r}"
            )


def _clash(left: Term, right: Term) -> ConstraintDiagnostic:
    """Classify a constructor clash into a diagnostic kind."""
    if right.is_zero:
        kind = "nonempty-in-zero"
    elif left.is_one:
        kind = "one-in-constructed"
    else:
        kind = "constructor-clash"
    return ConstraintDiagnostic(kind, left, right)


def decompose_pair(
    left: SetExpression, right: SetExpression
) -> Tuple[List[Atomic], List[ConstraintDiagnostic]]:
    """Convenience wrapper returning fresh lists (used by tests)."""
    atoms: List[Atomic] = []
    diagnostics: List[ConstraintDiagnostic] = []
    decompose(left, right, atoms, diagnostics)
    return atoms, diagnostics
