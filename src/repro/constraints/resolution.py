"""The resolution rules ``R`` (paper Figure 1).

These rules rewrite an arbitrary inclusion ``L <= R`` into *atomic*
constraints of the three forms the graph representations store:

====================  =========================================
``X <= Y``            variable-variable constraint  (``VAR_VAR``)
``c(...) <= X``       source-variable constraint    (``SOURCE_VAR``)
``X <= c(...)``       variable-sink constraint      (``VAR_SINK``)
====================  =========================================

The structural rule decomposes ``c(l_1..l_n) <= c(r_1..r_n)`` into
argument constraints oriented by variance.  Trivial constraints
(``0 <= se`` and ``se <= 1``) are dropped.  Clashes between distinct
constructors — including ``c(...) <= 0`` and ``1 <= c(...)`` — are
reported as :class:`~repro.constraints.errors.ConstraintDiagnostic`
values rather than raised, so resolution of an ill-typed input can
continue.
"""

from __future__ import annotations

from typing import List, Tuple

from .constructors import ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import ConstraintDiagnostic, MalformedExpressionError
from .expressions import SetExpression, Term, Var
from .variance import Variance

#: Tag for an atomic ``X <= Y`` constraint: ``(VAR_VAR, X, Y)``.
VAR_VAR = "vv"
#: Tag for an atomic ``c(...) <= X`` constraint: ``(SOURCE_VAR, term, X)``.
SOURCE_VAR = "sv"
#: Tag for an atomic ``X <= c(...)`` constraint: ``(VAR_SINK, X, term)``.
VAR_SINK = "vs"

#: An atomic constraint as produced by :func:`decompose`.
Atomic = Tuple[str, object, object]


def decompose(
    left: SetExpression,
    right: SetExpression,
    atoms: List[Atomic],
    diagnostics: List[ConstraintDiagnostic],
) -> None:
    """Rewrite ``left <= right`` into atomic constraints.

    Appends atomic constraints to ``atoms`` and inconsistency reports to
    ``diagnostics``.  Uses an explicit work stack so deeply nested terms
    cannot overflow the Python recursion limit.

    This function sits on the solver's hot path (one call per ``rr``
    worklist operation), so the type dispatch is written with local
    bindings and identity checks instead of the ``is_zero``/``is_one``
    convenience properties.
    """
    append = atoms.append
    covariant = Variance.COVARIANT
    stack = [(left, right)]
    push = stack.append
    pop = stack.pop
    while stack:
        l, r = pop()
        l_is_term = isinstance(l, Term)
        if l_is_term and l.constructor is ZERO_CONSTRUCTOR:
            continue  # 0 <= se : trivially true
        r_is_term = isinstance(r, Term)
        if r_is_term and r.constructor is ONE_CONSTRUCTOR:
            continue  # se <= 1 : trivially true
        if isinstance(l, Var):
            if isinstance(r, Var):
                append((VAR_VAR, l, r))
            elif r_is_term:
                append((VAR_SINK, l, r))
            else:
                raise MalformedExpressionError(f"bad sink expression {r!r}")
        elif isinstance(r, Var):
            if l_is_term:
                append((SOURCE_VAR, l, r))
            else:
                raise MalformedExpressionError(f"bad source expression {l!r}")
        elif l_is_term and r_is_term:
            l_ctor = l.constructor
            r_ctor = r.constructor
            if l_ctor is r_ctor or l_ctor == r_ctor:
                for variance, l_arg, r_arg in zip(
                    l_ctor.signature, l.args, r.args
                ):
                    if variance is covariant:
                        push((l_arg, r_arg))
                    else:
                        push((r_arg, l_arg))
            else:
                diagnostics.append(_clash(l, r))
        else:
            raise MalformedExpressionError(
                f"cannot decompose {l!r} <= {r!r}"
            )


def _clash(left: Term, right: Term) -> ConstraintDiagnostic:
    """Classify a constructor clash into a diagnostic kind."""
    if right.is_zero:
        kind = "nonempty-in-zero"
    elif left.is_one:
        kind = "one-in-constructed"
    else:
        kind = "constructor-clash"
    return ConstraintDiagnostic(kind, left, right)


def decompose_pair(
    left: SetExpression, right: SetExpression
) -> Tuple[List[Atomic], List[ConstraintDiagnostic]]:
    """Convenience wrapper returning fresh lists (used by tests)."""
    atoms: List[Atomic] = []
    diagnostics: List[ConstraintDiagnostic] = []
    decompose(left, right, atoms, diagnostics)
    return atoms, diagnostics
