"""The set-constraint language of the paper (Section 2.1).

Public surface::

    ConstraintSystem   -- builder for variables, constructors, constraints
    Variance           -- argument variance (co-/contravariant)
    Constructor        -- an n-ary constructor with a signature
    Var, Term          -- set expressions
    ZERO, ONE          -- the empty and universal sets (nullary terms)
    decompose_pair     -- the resolution rules R as a pure function
"""

from .constructors import Constructor, ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from .errors import (
    ConstraintDiagnostic,
    ConstraintError,
    DepthLimitError,
    InconsistentConstraintError,
    InvalidSystemError,
    MalformedExpressionError,
    SignatureError,
)
from .expressions import ONE, ZERO, SetExpression, Term, Var, variables_of
from .resolution import (
    Atomic,
    SOURCE_VAR,
    VAR_SINK,
    VAR_VAR,
    decompose,
    decompose_pair,
)
from .system import ConstraintSystem
from .variance import COVARIANT, CONTRAVARIANT, Variance

__all__ = [
    "Atomic",
    "COVARIANT",
    "CONTRAVARIANT",
    "Constructor",
    "ConstraintDiagnostic",
    "ConstraintError",
    "ConstraintSystem",
    "DepthLimitError",
    "InconsistentConstraintError",
    "InvalidSystemError",
    "MalformedExpressionError",
    "ONE",
    "ONE_CONSTRUCTOR",
    "SOURCE_VAR",
    "SetExpression",
    "SignatureError",
    "Term",
    "VAR_SINK",
    "VAR_VAR",
    "Var",
    "Variance",
    "ZERO",
    "ZERO_CONSTRUCTOR",
    "decompose",
    "decompose_pair",
    "variables_of",
]
