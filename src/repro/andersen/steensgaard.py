"""Steensgaard's unification-based points-to analysis.

The almost-linear-time baseline that Shapiro & Horwitz compared
Andersen's analysis against (paper Sections 1, 4 and 6).  Precision is
traded for speed: every assignment *unifies* the two sides' pointee
classes instead of adding an inclusion, so points-to sets are coarse
equivalence classes.

The implementation is independent of the set-constraint machinery on
purpose — it serves as a semantically different baseline for the
experiment harness's precision/speed comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..cfront import ast
from ..cfront.types import Array, CType, Function, INT, Pointer, Record
from .locations import AbstractLocation, LocationKind, LocationTable

HEAP_FUNCTIONS = frozenset(
    "malloc calloc realloc valloc memalign strdup xmalloc xcalloc "
    "xrealloc xstrdup".split()
)


class _Node:
    """An equivalence-class record (ECR) in the unification structure."""

    __slots__ = ("parent", "pointee", "signature", "locations")

    def __init__(self) -> None:
        self.parent: "_Node" = self
        self.pointee: Optional["_Node"] = None
        self.signature: Optional["_Signature"] = None
        self.locations: List[AbstractLocation] = []


class _Signature:
    """Function signature attached to a class holding function locations."""

    __slots__ = ("params", "returns")

    def __init__(self, params: List[_Node], returns: _Node) -> None:
        self.params = params
        self.returns = returns


class SteensgaardAnalysis:
    """Run Steensgaard's analysis over a translation unit."""

    def __init__(self) -> None:
        self.locations = LocationTable()
        self._ref_class: Dict[AbstractLocation, _Node] = {}
        self._scopes: List[Dict[str, "_Symbol"]] = [{}]
        self._records: Dict[str, Dict[str, CType]] = {}
        self._current_returns: Optional[_Node] = None
        self._current_fn = ""
        self._string_loc: Optional[AbstractLocation] = None
        self._heap_counter = 0

    # ------------------------------------------------------------------
    # Union-find with attribute merging
    # ------------------------------------------------------------------
    def _find(self, node: _Node) -> _Node:
        root = node
        while root.parent is not root:
            root = root.parent
        while node.parent is not root:
            node.parent, node = root, node.parent
        return root

    def _join(self, a: _Node, b: _Node) -> _Node:
        """Unify two classes, merging pointees and signatures."""
        worklist = [(a, b)]
        result = self._find(a)
        while worklist:
            left, right = worklist.pop()
            left, right = self._find(left), self._find(right)
            if left is right:
                continue
            right.parent = left
            left.locations.extend(right.locations)
            right.locations = []
            if right.pointee is not None:
                if left.pointee is None:
                    left.pointee = right.pointee
                else:
                    worklist.append((left.pointee, right.pointee))
            if right.signature is not None:
                if left.signature is None:
                    left.signature = right.signature
                else:
                    longer, shorter = left.signature, right.signature
                    if len(shorter.params) > len(longer.params):
                        longer, shorter = shorter, longer
                    for l_param, r_param in zip(longer.params, shorter.params):
                        worklist.append((l_param, r_param))
                    worklist.append((longer.returns, shorter.returns))
                    left.signature = longer
        return result

    def _pointee(self, node: _Node) -> _Node:
        root = self._find(node)
        if root.pointee is None:
            root.pointee = _Node()
        return self._find(root.pointee)

    def _class_of(self, location: AbstractLocation) -> _Node:
        node = self._ref_class.get(location)
        if node is None:
            node = _Node()
            node.locations.append(location)
            self._ref_class[location] = node
        return self._find(node)

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def _make_location(self, name: str, kind: LocationKind
                       ) -> AbstractLocation:
        location = self.locations.make(name, kind)
        self._class_of(location)
        return location

    def _bind(self, name: str, ctype: CType,
              location: AbstractLocation) -> "_Symbol":
        symbol = _Symbol(name, ctype, location)
        self._scopes[-1][name] = symbol
        return symbol

    def _lookup(self, name: str) -> Optional["_Symbol"]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(self, unit: ast.TranslationUnit) -> "SteensgaardResult":
        self._collect_records(unit)
        for item in unit.items:
            if isinstance(item, ast.FunctionDef):
                self._declare_function(item.name, item.type, item.params)
            elif isinstance(item, ast.Decl):
                self._declare(item, scope_name="")
        for item in unit.items:
            if isinstance(item, ast.FunctionDef):
                self._function_body(item)
            elif isinstance(item, ast.Decl) and item.init is not None:
                symbol = self._lookup(item.name)
                if symbol is not None:
                    self._initialize(symbol, item.init)
        return SteensgaardResult(self)

    def _collect_records(self, root: ast.Node) -> None:
        stack: List[ast.Node] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.RecordDef):
                self._records[node.tag] = {
                    member.name: member.type for member in node.members
                }
            stack.extend(node.children())

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _declare_function(
        self,
        name: str,
        ctype: Function,
        params: Optional[List[ast.ParamDecl]] = None,
    ) -> "_Symbol":
        existing = self._lookup(name)
        if existing is not None and existing.is_function:
            return existing
        location = self._make_location(name, LocationKind.FUNCTION)
        node = self._class_of(location)
        param_nodes: List[_Node] = []
        param_locs: List[AbstractLocation] = []
        param_names = [p.name or f"arg{i}" for i, p in enumerate(params or [])]
        while len(param_names) < len(ctype.params):
            param_names.append(f"arg{len(param_names)}")
        for index in range(len(ctype.params)):
            ploc = self._make_location(
                f"{name}::{param_names[index]}", LocationKind.PARAMETER
            )
            param_locs.append(ploc)
            param_nodes.append(self._pointee(self._class_of(ploc)))
        returns = _Node()
        node.signature = _Signature(param_nodes, returns)
        symbol = self._scopes[0].setdefault(
            name, _Symbol(name, ctype, location)
        )
        symbol.param_locations = param_locs
        symbol.returns = returns
        return symbol

    def _declare(self, decl: ast.Decl, scope_name: str) -> None:
        if decl.storage == "typedef" or not decl.name:
            return
        if isinstance(decl.type, Function):
            self._declare_function(decl.name, decl.type)
            return
        if self._lookup(decl.name) is not None and not scope_name:
            return
        qualified = f"{scope_name}::{decl.name}" if scope_name else decl.name
        location = self._make_location(qualified, LocationKind.VARIABLE)
        symbol = self._bind(decl.name, decl.type, location)
        if decl.init is not None and scope_name:
            self._initialize(symbol, decl.init)

    def _initialize(self, symbol: "_Symbol", init: ast.Node) -> None:
        contents = self._pointee(self._class_of(symbol.location))
        for leaf in self._init_leaves(init):
            value = self._value_class(leaf)
            if value is not None:
                self._join(contents, value)

    def _init_leaves(self, init: ast.Node) -> List[ast.Expr]:
        if isinstance(init, ast.InitList):
            out: List[ast.Expr] = []
            for item in init.items:
                out.extend(self._init_leaves(item))
            return out
        return [init]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _function_body(self, function: ast.FunctionDef) -> None:
        symbol = self._lookup(function.name)
        previous_returns = self._current_returns
        previous_fn = self._current_fn
        self._current_returns = symbol.returns
        self._current_fn = function.name
        self._scopes.append({})
        for param, location in zip(function.params, symbol.param_locations):
            if param.name:
                self._bind(param.name, param.type, location)
        self._statement(function.body)
        self._scopes.pop()
        self._current_returns = previous_returns
        self._current_fn = previous_fn

    def _statement(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.Compound):
            self._scopes.append({})
            for item in stmt.items:
                self._statement(item)
            self._scopes.pop()
        elif isinstance(stmt, ast.Decl):
            self._declare(stmt, scope_name=self._current_fn or "<global>")
        elif isinstance(stmt, (ast.RecordDef, ast.EnumDef)):
            pass
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._value_class(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._value_class(stmt.condition)
            self._statement(stmt.then_branch)
            if stmt.else_branch is not None:
                self._statement(stmt.else_branch)
        elif isinstance(stmt, (ast.While, ast.Switch)):
            self._value_class(stmt.condition)
            self._statement(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._statement(stmt.body)
            self._value_class(stmt.condition)
        elif isinstance(stmt, ast.For):
            self._scopes.append({})
            if isinstance(stmt.init, ast.Compound):
                for item in stmt.init.items:
                    self._statement(item)
            elif stmt.init is not None:
                self._value_class(stmt.init)
            if stmt.condition is not None:
                self._value_class(stmt.condition)
            if stmt.step is not None:
                self._value_class(stmt.step)
            self._statement(stmt.body)
            self._scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._value_class(stmt.value)
                if value is not None and self._current_returns is not None:
                    self._join(self._current_returns, value)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Goto)):
            pass
        elif isinstance(stmt, ast.Label):
            self._statement(stmt.body)
        elif isinstance(stmt, ast.Case):
            if stmt.value is not None:
                self._value_class(stmt.value)
            self._statement(stmt.body)
        else:
            raise TypeError(f"unexpected statement {stmt!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lvalue_class(self, expr: ast.Expr) -> Optional[_Node]:
        """Class of the locations the expression designates."""
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name)
            if symbol is None:
                location = self._make_location(expr.name,
                                               LocationKind.VARIABLE)
                symbol = _Symbol(expr.name, INT, location)
                self._scopes[0][expr.name] = symbol
            return self._class_of(symbol.location)
        if isinstance(expr, ast.StringLit):
            if self._string_loc is None:
                self._string_loc = self._make_location(
                    "<strings>", LocationKind.STRING
                )
            return self._class_of(self._string_loc)
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                return self._value_class(expr.operand)
            if expr.op in ("++", "--"):
                return self._lvalue_class(expr.operand)
            return None
        if isinstance(expr, ast.Postfix):
            return self._lvalue_class(expr.operand)
        if isinstance(expr, ast.Index):
            self._value_class(expr.index)
            return self._value_class(expr.base)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                return self._value_class(expr.base)
            return self._lvalue_class(expr.base)
        if isinstance(expr, ast.Cast):
            return self._lvalue_class(expr.operand)
        if isinstance(expr, ast.Comma):
            self._value_class(expr.left)
            return self._lvalue_class(expr.right)
        return None

    def _value_class(self, expr: ast.Expr) -> Optional[_Node]:
        """Class of locations the expression's *value* points to."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit,
                             ast.SizeOf)):
            return None
        if isinstance(expr, ast.Cast):
            return self._value_class(expr.operand)
        if isinstance(expr, ast.Assign):
            value = self._value_class(expr.value)
            target = self._lvalue_class(expr.target)
            if target is not None and value is not None:
                self._join(self._pointee(target), value)
            return value
        if isinstance(expr, ast.Unary) and expr.op == "&":
            return self._lvalue_class(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self._value_class(expr.left)
            right = self._value_class(expr.right)
            if expr.op in ("+", "-"):
                if left is not None and right is not None:
                    return self._join(left, right)
                return left if left is not None else right
            return None
        if isinstance(expr, ast.Conditional):
            self._value_class(expr.condition)
            then_value = self._value_class(expr.then_value)
            else_value = self._value_class(expr.else_value)
            if then_value is not None and else_value is not None:
                return self._join(then_value, else_value)
            return then_value if then_value is not None else else_value
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Comma):
            self._value_class(expr.left)
            return self._value_class(expr.right)
        lvalue = self._lvalue_class(expr)
        if lvalue is None:
            return None
        expr_type = self._type_of(expr)
        if isinstance(expr_type, (Array, Function)):
            # Decay: the value points at the designated locations.
            return lvalue
        return self._pointee(lvalue)

    def _call(self, expr: ast.Call) -> Optional[_Node]:
        name = (
            expr.function.name
            if isinstance(expr.function, ast.Ident)
            else None
        )
        if name in HEAP_FUNCTIONS:
            for arg in expr.args:
                self._value_class(arg)
            self._heap_counter += 1
            heap = self._make_location(
                f"heap@{self._heap_counter}", LocationKind.HEAP
            )
            return self._class_of(heap)
        if name is not None and self._lookup(name) is None:
            self._declare_function(
                name, Function(INT, tuple(INT for _ in expr.args))
            )
        callee = self._value_class(expr.function)
        arg_values = [self._value_class(a) for a in expr.args]
        if callee is None:
            return None
        root = self._find(callee)
        if root.signature is None:
            root.signature = _Signature(
                [_Node() for _ in arg_values], _Node()
            )
        signature = root.signature
        for param, value in zip(signature.params, arg_values):
            if value is not None:
                self._join(param, value)
        return self._find(signature.returns)

    # ------------------------------------------------------------------
    # Light types for decay decisions (mirrors the Andersen generator).
    # ------------------------------------------------------------------
    def _type_of(self, expr: ast.Expr) -> Optional[CType]:
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name)
            return symbol.ctype if symbol is not None else None
        if isinstance(expr, ast.StringLit):
            return Array(INT)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = self._type_of(expr.operand)
            if isinstance(inner, Pointer):
                return inner.target
            if isinstance(inner, Array):
                return inner.element
            return None
        if isinstance(expr, ast.Index):
            base = self._type_of(expr.base)
            if isinstance(base, Array):
                return base.element
            if isinstance(base, Pointer):
                return base.target
            return None
        if isinstance(expr, ast.Member):
            base = self._type_of(expr.base)
            if expr.arrow and isinstance(base, Pointer):
                base = base.target
            if isinstance(base, Record):
                fields = self._records.get(base.tag)
                if fields:
                    return fields.get(expr.name)
            return None
        if isinstance(expr, ast.Cast):
            return expr.target_type
        return None


class _Symbol:
    __slots__ = ("name", "ctype", "location", "param_locations", "returns")

    def __init__(self, name: str, ctype: CType,
                 location: AbstractLocation) -> None:
        self.name = name
        self.ctype = ctype
        self.location = location
        self.param_locations: List[AbstractLocation] = []
        self.returns: Optional[_Node] = None

    @property
    def is_function(self) -> bool:
        return isinstance(self.ctype, Function)


class SteensgaardResult:
    """Points-to queries over the unification structure."""

    def __init__(self, analysis: SteensgaardAnalysis) -> None:
        self._analysis = analysis

    def points_to(self, location: AbstractLocation
                  ) -> FrozenSet[AbstractLocation]:
        analysis = self._analysis
        node = analysis._ref_class.get(location)
        if node is None:
            return frozenset()
        root = analysis._find(node)
        if root.pointee is None:
            return frozenset()
        return frozenset(analysis._find(root.pointee).locations)

    def points_to_named(self, name: str) -> FrozenSet[str]:
        location = self._analysis.locations.by_name(name)
        return frozenset(t.name for t in self.points_to(location))

    @property
    def locations(self) -> LocationTable:
        return self._analysis.locations

    def total_edges(self) -> int:
        return sum(
            len(self.points_to(location))
            for location in self._analysis.locations
        )

    def average_set_size(self) -> float:
        sizes = [
            len(self.points_to(location))
            for location in self._analysis.locations
        ]
        nonempty = [s for s in sizes if s]
        if not nonempty:
            return 0.0
        return sum(nonempty) / len(nonempty)


def analyze_unit_steensgaard(unit: ast.TranslationUnit) -> SteensgaardResult:
    """Run Steensgaard's analysis over a parsed translation unit."""
    return SteensgaardAnalysis().analyze(unit)
