"""Constraint generation for Andersen's points-to analysis (Section 3).

The formulation follows the paper: a location ``l`` is modelled as an
object ``ref(l, X_l, X̄_l)`` whose covariant second argument is the
points-to set (the ``get`` method's range) and whose contravariant third
argument is the same set in update position (the ``set`` method's
domain).  Updating through an unknown location set ``t`` is the sink
constraint ``t <= ref(1, 1, T̄)``; dereferencing is ``t <= ref(1, T, 0̄)``.

Functions are modelled with a family of ``lam_k`` constructors — one
per arity — with contravariant parameter positions and a covariant
return position, which gives field-sensitive treatment of indirect
calls through function pointers.

The rules infer L-value sets for every expression (paper Figure 6):
``lvalue(e)`` denotes the set of locations ``e`` designates, and
``rvalue(e)`` converts to the value's points-to set by dereferencing.
Arrays and structs are collapsed (field-insensitive), the standard
choice for this analysis generation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cfront import ast
from ..cfront.types import (
    Array,
    CType,
    Function,
    INT,
    Pointer,
    Record,
    Scalar,
)
from ..constraints import (
    ConstraintSystem,
    ONE,
    SetExpression,
    Term,
    Var,
    Variance,
    ZERO,
)
from .locations import AbstractLocation, LocationKind, LocationTable

#: Allocation functions that return a fresh heap location per call site.
HEAP_FUNCTIONS = frozenset(
    "malloc calloc realloc valloc memalign strdup xmalloc xcalloc "
    "xrealloc xstrdup".split()
)


class Symbol:
    """A named program entity bound in some scope."""

    __slots__ = ("name", "ctype", "location", "function")

    def __init__(
        self,
        name: str,
        ctype: CType,
        location: AbstractLocation,
        function: Optional["FunctionInfo"] = None,
    ) -> None:
        self.name = name
        self.ctype = ctype
        self.location = location
        self.function = function


class FunctionInfo:
    """Constraint-level view of a function (defined or prototyped)."""

    __slots__ = (
        "name", "location", "param_locations", "return_var", "lam_term",
        "ctype", "defined",
    )

    def __init__(
        self,
        name: str,
        location: AbstractLocation,
        param_locations: List[AbstractLocation],
        return_var: Var,
        lam_term: Term,
        ctype: Function,
    ) -> None:
        self.name = name
        self.location = location
        self.param_locations = param_locations
        self.return_var = return_var
        self.lam_term = lam_term
        self.ctype = ctype
        self.defined = False

    @property
    def arity(self) -> int:
        return len(self.param_locations)


class AndersenProgram:
    """Output of constraint generation, ready for the solver."""

    def __init__(
        self,
        system: ConstraintSystem,
        locations: LocationTable,
        points_to_var: Dict[AbstractLocation, Var],
        functions: Dict[str, FunctionInfo],
        ast_nodes: int,
        source_lines: int,
    ) -> None:
        self.system = system
        self.locations = locations
        self.points_to_var = points_to_var
        self.functions = functions
        self.ast_nodes = ast_nodes
        self.source_lines = source_lines

    @property
    def num_locations(self) -> int:
        return len(self.locations)

    def var_of(self, location: AbstractLocation) -> Var:
        """The points-to set variable ``X_l`` of a location."""
        return self.points_to_var[location]

    def location_named(self, name: str) -> AbstractLocation:
        return self.locations.by_name(name)


class ConstraintGenerator:
    """Walks a translation unit and emits set constraints."""

    def __init__(self) -> None:
        self.system = ConstraintSystem("andersen")
        cov, con = Variance.COVARIANT, Variance.CONTRAVARIANT
        self.ref = self.system.constructor("ref", (cov, cov, con))
        self.loc_ctor = self.system.constructor("loc", ())
        self._lam_ctors: Dict[int, object] = {}
        self.locations = LocationTable()
        self.points_to_var: Dict[AbstractLocation, Var] = {}
        self._ref_terms: Dict[AbstractLocation, Term] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.records: Dict[str, Dict[str, CType]] = {}
        self._scopes: List[Dict[str, Symbol]] = [{}]
        self._current_function: Optional[FunctionInfo] = None
        self._string_location: Optional[AbstractLocation] = None
        self._heap_counter = 0
        self._enum_constants: set = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def analyze(self, unit: ast.TranslationUnit, source_lines: int = 0
                ) -> AndersenProgram:
        self._collect_records(unit)
        # Pass 1: bind all file-scope names so forward references work.
        for item in unit.items:
            if isinstance(item, ast.FunctionDef):
                self._declare_function(item.name, item.type, item.params)
            elif isinstance(item, ast.Decl):
                self._declare_global(item)
        # Pass 2: process initializers and function bodies.
        for item in unit.items:
            if isinstance(item, ast.FunctionDef):
                self._function_body(item)
            elif isinstance(item, ast.Decl) and item.init is not None:
                symbol = self._lookup(item.name)
                if symbol is not None:
                    self._initialize(symbol, item.init)
        return AndersenProgram(
            self.system,
            self.locations,
            self.points_to_var,
            self.functions,
            unit.count_nodes(),
            source_lines,
        )

    # ------------------------------------------------------------------
    # Records (structs/unions) — field-insensitive, but we keep field
    # types so `type_of` can see through member accesses.
    # ------------------------------------------------------------------
    def _collect_records(self, root: ast.Node) -> None:
        stack: List[ast.Node] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.RecordDef):
                self.records[node.tag] = {
                    member.name: member.type for member in node.members
                }
            elif isinstance(node, ast.EnumDef):
                self._enum_constants.update(node.enumerators)
            stack.extend(node.children())

    def _field_type(self, record: Record, name: str) -> Optional[CType]:
        direct = record.field_type(name)
        if direct is not None:
            return direct
        fields = self.records.get(record.tag)
        if fields is not None:
            return fields.get(name)
        return None

    # ------------------------------------------------------------------
    # Locations, terms and scopes
    # ------------------------------------------------------------------
    def _lam(self, arity: int):
        ctor = self._lam_ctors.get(arity)
        if ctor is None:
            cov, con = Variance.COVARIANT, Variance.CONTRAVARIANT
            ctor = self.system.constructor(
                f"lam{arity}", (cov,) + (con,) * arity + (cov,)
            )
            self._lam_ctors[arity] = ctor
        return ctor

    def _make_location(self, name: str,
                       kind: LocationKind) -> AbstractLocation:
        location = self.locations.make(name, kind)
        self.points_to_var[location] = self.system.fresh_var(f"X[{name}]")
        return location

    def ref_term(self, location: AbstractLocation) -> Term:
        """The cached object term ``ref(l, X_l, X̄_l)`` of a location."""
        term = self._ref_terms.get(location)
        if term is None:
            contents = self.points_to_var[location]
            name_term = Term(self.loc_ctor, (), label=location)
            term = Term(
                self.ref, (name_term, contents, contents), label=location
            )
            self._ref_terms[location] = term
        return term

    def _wrapper(self, value: SetExpression) -> Term:
        """A transient location carrying an R-value as its contents.

        Used to give non-lvalue expressions (assignments, calls,
        arithmetic) an L-value set in the uniform formulation; the
        wrapper itself never enters a points-to set.
        """
        return Term(self.ref, (ZERO, value, value), label=None)

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _bind(self, symbol: Symbol) -> None:
        self._scopes[-1][symbol.name] = symbol

    def _lookup(self, name: str) -> Optional[Symbol]:
        for scope in reversed(self._scopes):
            symbol = scope.get(name)
            if symbol is not None:
                return symbol
        return None

    def _qualified(self, name: str) -> str:
        if self._current_function is not None:
            return f"{self._current_function.name}::{name}"
        return name

    def _string_loc(self) -> AbstractLocation:
        if self._string_location is None:
            self._string_location = self._make_location(
                "<strings>", LocationKind.STRING
            )
        return self._string_location

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _declare_function(
        self,
        name: str,
        ctype: Function,
        params: Optional[List[ast.ParamDecl]] = None,
    ) -> FunctionInfo:
        info = self.functions.get(name)
        if info is not None:
            return info
        location = self._make_location(name, LocationKind.FUNCTION)
        param_types = list(ctype.params)
        param_names = [
            p.name or f"arg{i}" for i, p in enumerate(params or [])
        ]
        while len(param_names) < len(param_types):
            param_names.append(f"arg{len(param_names)}")
        param_locations = [
            self._make_location(f"{name}::{param_names[i]}",
                                LocationKind.PARAMETER)
            for i in range(len(param_types))
        ]
        return_var = self.system.fresh_var(f"ret[{name}]")
        lam_args: Tuple[SetExpression, ...] = (
            Term(self.loc_ctor, (), label=location),
            *(self.points_to_var[p] for p in param_locations),
            return_var,
        )
        lam_term = Term(
            self._lam(len(param_locations)), lam_args, label=location
        )
        info = FunctionInfo(
            name, location, param_locations, return_var, lam_term, ctype
        )
        self.functions[name] = info
        # The contents of a function's location is its lambda term.
        self.system.add(lam_term, self.points_to_var[location])
        self._bind(Symbol(name, ctype, location, info))
        return info

    def _declare_global(self, decl: ast.Decl) -> None:
        if decl.storage == "typedef" or not decl.name:
            return
        if isinstance(decl.type, Function):
            self._declare_function(decl.name, decl.type)
            return
        if self._lookup(decl.name) is not None:
            return  # redeclaration (e.g. extern + definition)
        location = self._make_location(decl.name, LocationKind.VARIABLE)
        self._bind(Symbol(decl.name, decl.type, location))

    def _declare_local(self, decl: ast.Decl) -> None:
        if decl.storage == "typedef" or not decl.name:
            return
        if isinstance(decl.type, Function):
            self._declare_function(decl.name, decl.type)
            return
        location = self._make_location(
            self._qualified(decl.name), LocationKind.VARIABLE
        )
        symbol = Symbol(decl.name, decl.type, location)
        self._bind(symbol)
        if decl.init is not None:
            self._initialize(symbol, decl.init)

    def _initialize(self, symbol: Symbol, init: ast.Node) -> None:
        """Process ``T x = init`` — values flow into the contents of x."""
        contents = self.points_to_var[symbol.location]
        for leaf in self._init_leaves(init):
            value = self.rvalue(leaf)
            if not (isinstance(value, Term) and value.is_zero):
                self.system.add(value, contents)

    def _init_leaves(self, init: ast.Node) -> List[ast.Expr]:
        if isinstance(init, ast.InitList):
            leaves: List[ast.Expr] = []
            for item in init.items:
                leaves.extend(self._init_leaves(item))
            return leaves
        return [init]

    # ------------------------------------------------------------------
    # Function bodies and statements
    # ------------------------------------------------------------------
    def _function_body(self, function: ast.FunctionDef) -> None:
        info = self.functions[function.name]
        info.defined = True
        previous = self._current_function
        self._current_function = info
        self._push_scope()
        for param, location in zip(function.params, info.param_locations):
            if param.name:
                self._bind(Symbol(param.name, param.type, location))
        self._statement(function.body)
        self._pop_scope()
        self._current_function = previous

    def _statement(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.Compound):
            self._push_scope()
            for item in stmt.items:
                self._statement(item)
            self._pop_scope()
        elif isinstance(stmt, ast.Decl):
            self._declare_local(stmt)
        elif isinstance(stmt, (ast.RecordDef, ast.EnumDef)):
            pass  # types carry no points-to content
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.rvalue(stmt.condition)
            self._statement(stmt.then_branch)
            if stmt.else_branch is not None:
                self._statement(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self.rvalue(stmt.condition)
            self._statement(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._statement(stmt.body)
            self.rvalue(stmt.condition)
        elif isinstance(stmt, ast.For):
            self._push_scope()
            if isinstance(stmt.init, ast.Compound):
                for item in stmt.init.items:
                    self._statement(item)
            elif stmt.init is not None:
                self.rvalue(stmt.init)
            if stmt.condition is not None:
                self.rvalue(stmt.condition)
            if stmt.step is not None:
                self.rvalue(stmt.step)
            self._statement(stmt.body)
            self._pop_scope()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.rvalue(stmt.value)
                if self._current_function is not None and not (
                    isinstance(value, Term) and value.is_zero
                ):
                    self.system.add(value, self._current_function.return_var)
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Goto)):
            pass
        elif isinstance(stmt, ast.Label):
            self._statement(stmt.body)
        elif isinstance(stmt, ast.Switch):
            self.rvalue(stmt.condition)
            self._statement(stmt.body)
        elif isinstance(stmt, ast.Case):
            if stmt.value is not None:
                self.rvalue(stmt.value)
            self._statement(stmt.body)
        else:
            raise TypeError(f"unexpected statement node {stmt!r}")

    # ------------------------------------------------------------------
    # Core set operations with the standard engineered short-circuits:
    # dereferencing or storing through a *known* ref term resolves the
    # structural rule immediately instead of minting fresh variables and
    # sink terms.  This keeps the variables-per-AST-node ratio in the
    # regime the paper reports (Table 1) while generating exactly the
    # constraints the generic rules would after one resolution step.
    # ------------------------------------------------------------------
    def _deref(self, designated: SetExpression) -> SetExpression:
        """Contents of the locations in ``designated`` (the get method)."""
        if isinstance(designated, Term):
            if designated.is_zero:
                return ZERO
            if designated.constructor is self.ref:
                # ref(l, X, X̄) <= ref(1, T, 0̄) resolves to X <= T; skip
                # the detour and use X directly.
                return designated.args[1]
        value = self.system.fresh_var("deref")
        sink = Term(self.ref, (ONE, value, ZERO), label=None)
        self.system.add(designated, sink)
        return value

    def _store(self, target: SetExpression, value: SetExpression) -> None:
        """Flow ``value`` into the contents of every location in ``target``."""
        if isinstance(value, Term) and value.is_zero:
            return
        if isinstance(target, Term):
            if target.is_zero:
                return
            if target.constructor is self.ref:
                # ref(l, X, X̄) <= ref(1, 1, V̄) resolves to V <= X.
                self.system.add(value, target.args[2])
                return
        sink = Term(self.ref, (ONE, ONE, value), label=None)
        self.system.add(target, sink)

    def _merge(self, *values: SetExpression) -> SetExpression:
        """Union of value sets, avoiding a fresh variable when possible."""
        nonzero = [
            v for v in values if not (isinstance(v, Term) and v.is_zero)
        ]
        if not nonzero:
            return ZERO
        if len(nonzero) == 1:
            return nonzero[0]
        merged = self.system.fresh_var("merge")
        for value in nonzero:
            self.system.add(value, merged)
        return merged

    def _wrapper(self, value: SetExpression) -> Term:
        """A transient location holding ``value`` as its contents.

        Gives non-designator expressions an L-value set for the rare
        cases where one is needed (e.g. ``*(p = q) = r``).
        """
        if isinstance(value, Term) and value.is_zero:
            return ZERO
        if isinstance(value, Var):
            return Term(self.ref, (ZERO, value, value), label=None)
        cell = self.system.fresh_var("cell")
        self.system.add(value, cell)
        return Term(self.ref, (ZERO, cell, cell), label=None)

    @staticmethod
    def _is_function_valued(ctype: Optional[CType]) -> bool:
        return isinstance(ctype, Function) or (
            isinstance(ctype, Pointer) and isinstance(ctype.target, Function)
        )

    # ------------------------------------------------------------------
    # L-value sets (the paper's tau): locations an expression designates.
    # ------------------------------------------------------------------
    def lvalue(self, expr: ast.Expr) -> SetExpression:
        """The set of locations ``expr`` designates."""
        if isinstance(expr, ast.Ident):
            return self._ident_lvalue(expr.name)
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit)):
            return ZERO
        if isinstance(expr, ast.StringLit):
            return self.ref_term(self._string_loc())
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                if self._is_function_valued(self.type_of(expr.operand)):
                    # *fp is fp for function pointers (the designator
                    # immediately decays back to the pointer value).
                    return self.lvalue(expr.operand)
                return self.rvalue(expr.operand)
            if expr.op in ("++", "--"):
                return self.lvalue(expr.operand)
            return self._wrapper(self.rvalue(expr))
        if isinstance(expr, ast.Postfix):
            return self.lvalue(expr.operand)
        if isinstance(expr, ast.Index):
            # e1[e2] is *(e1 + e2); offsets are ignored, so the
            # designated locations are the base value's targets.
            self.rvalue(expr.index)
            return self.rvalue(expr.base)
        if isinstance(expr, ast.Member):
            # Collapsed aggregates: x.f designates x; p->f designates *p.
            if expr.arrow:
                return self.rvalue(expr.base)
            return self.lvalue(expr.base)
        if isinstance(expr, ast.Cast):
            return self.lvalue(expr.operand)
        if isinstance(expr, ast.Comma):
            self.rvalue(expr.left)
            return self.lvalue(expr.right)
        if isinstance(expr, ast.SizeOf):
            if expr.operand is not None:
                self.rvalue(expr.operand)
            return ZERO
        # Assignments, calls, arithmetic, conditionals: not designators;
        # wrap the R-value in a transient location.
        return self._wrapper(self.rvalue(expr))

    def _ident_lvalue(self, name: str) -> SetExpression:
        symbol = self._lookup(name)
        if symbol is None and name in self._enum_constants:
            return ZERO  # enumerators are integer constants
        if symbol is None:
            # Implicit declaration: create a file-scope int variable.
            location = self._make_location(name, LocationKind.VARIABLE)
            symbol = Symbol(name, INT, location)
            self._scopes[0][name] = symbol
        return self.ref_term(symbol.location)

    # ------------------------------------------------------------------
    # R-values: the points-to set of an expression's value.
    # ------------------------------------------------------------------
    def rvalue(self, expr: ast.Expr) -> SetExpression:
        """The points-to set of the expression's *value*."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.CharLit,
                             ast.SizeOf)):
            if isinstance(expr, ast.SizeOf) and expr.operand is not None:
                self.rvalue(expr.operand)
            return ZERO
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                if isinstance(self.type_of(expr.operand), Function):
                    return self.rvalue(expr.operand)  # &f is f
                return self.lvalue(expr.operand)
            if expr.op in ("*", "++", "--"):
                return self._designator_rvalue(expr)
            self.rvalue(expr.operand)
            return ZERO
        if isinstance(expr, ast.Binary):
            left = self.rvalue(expr.left)
            right = self.rvalue(expr.right)
            if expr.op in ("+", "-"):
                # Pointer arithmetic: the result may point wherever
                # either side points (field-insensitive).
                return self._merge(left, right)
            return ZERO
        if isinstance(expr, ast.Conditional):
            self.rvalue(expr.condition)
            return self._merge(
                self.rvalue(expr.then_value), self.rvalue(expr.else_value)
            )
        if isinstance(expr, ast.Comma):
            self.rvalue(expr.left)
            return self.rvalue(expr.right)
        if isinstance(expr, ast.Cast):
            return self.rvalue(expr.operand)
        # Designators: identifiers, derefs, indexing, member access,
        # string literals, postfix inc/dec.
        return self._designator_rvalue(expr)

    def _designator_rvalue(self, expr: ast.Expr) -> SetExpression:
        designated = self.lvalue(expr)
        if isinstance(designated, Term) and designated.is_zero:
            return ZERO
        if isinstance(self.type_of(expr), Array):
            # Array-to-pointer decay: the value points at the designated
            # locations themselves.
            return designated
        return self._deref(designated)

    # ------------------------------------------------------------------
    # Assignment — the (Asst) rule.
    # ------------------------------------------------------------------
    def _assign(self, expr: ast.Assign) -> SetExpression:
        value = self.rvalue(expr.value)
        target = self.lvalue(expr.target)
        self._store(target, value)
        return value

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------
    def _call(self, expr: ast.Call) -> SetExpression:
        callee_name = (
            expr.function.name
            if isinstance(expr.function, ast.Ident)
            else None
        )
        if callee_name in HEAP_FUNCTIONS:
            for arg in expr.args:
                self.rvalue(arg)
            self._heap_counter += 1
            heap = self._make_location(
                f"heap@{self._heap_counter}", LocationKind.HEAP
            )
            return self.ref_term(heap)

        direct: Optional[FunctionInfo] = None
        if callee_name is not None:
            symbol = self._lookup(callee_name)
            if symbol is None:
                # Implicitly declared extern function.
                ctype = Function(INT, tuple(INT for _ in expr.args))
                direct = self._declare_function(callee_name, ctype)
            elif symbol.function is not None:
                direct = symbol.function

        arg_values = [self.rvalue(arg) for arg in expr.args]
        arity = direct.arity if direct is not None else len(arg_values)
        sink_args: List[SetExpression] = [
            arg_values[position] if position < len(arg_values) else ZERO
            for position in range(arity)
        ]
        result = self.system.fresh_var("retsite")
        lam_sink = Term(
            self._lam(arity), (ONE, *sink_args, result), label=None
        )
        # The callee values flow into the lam sink; the resolution rules
        # wire actuals to formals (contravariant) and returns to the
        # call site (covariant).
        callee_values = self.rvalue(expr.function)
        if not (isinstance(callee_values, Term) and callee_values.is_zero):
            self.system.add(callee_values, lam_sink)
        return result

    # ------------------------------------------------------------------
    # Approximate static types (enough for decay decisions).
    # ------------------------------------------------------------------
    def type_of(self, expr: ast.Expr) -> Optional[CType]:
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name)
            return symbol.ctype if symbol is not None else None
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return Scalar("double")
        if isinstance(expr, ast.CharLit):
            return Scalar("char")
        if isinstance(expr, ast.StringLit):
            return Array(Scalar("char"))
        if isinstance(expr, ast.Unary):
            if expr.op == "*":
                inner = self.type_of(expr.operand)
                if isinstance(inner, Pointer):
                    return inner.target
                if isinstance(inner, Array):
                    return inner.element
                if isinstance(inner, Function):
                    return inner  # *f is f for function designators
                return None
            if expr.op == "&":
                inner = self.type_of(expr.operand)
                return Pointer(inner) if inner is not None else None
            if expr.op in ("++", "--"):
                return self.type_of(expr.operand)
            return INT
        if isinstance(expr, ast.Postfix):
            return self.type_of(expr.operand)
        if isinstance(expr, ast.Binary):
            left = self.type_of(expr.left)
            if isinstance(left, (Pointer, Array)):
                return left.decayed() if isinstance(left, Array) else left
            right = self.type_of(expr.right)
            if isinstance(right, (Pointer, Array)):
                return right.decayed() if isinstance(right, Array) else right
            return INT
        if isinstance(expr, ast.Assign):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Conditional):
            then_type = self.type_of(expr.then_value)
            return then_type if then_type is not None else self.type_of(
                expr.else_value
            )
        if isinstance(expr, ast.Call):
            function_type = self.type_of(expr.function)
            if isinstance(function_type, Function):
                return function_type.returns
            if isinstance(function_type, Pointer) and isinstance(
                function_type.target, Function
            ):
                return function_type.target.returns
            return None
        if isinstance(expr, ast.Index):
            base = self.type_of(expr.base)
            if isinstance(base, Array):
                return base.element
            if isinstance(base, Pointer):
                return base.target
            return None
        if isinstance(expr, ast.Member):
            base = self.type_of(expr.base)
            if expr.arrow and isinstance(base, Pointer):
                base = base.target
            if isinstance(base, Array):
                base = base.element
            if isinstance(base, Record):
                return self._field_type(base, expr.name)
            return None
        if isinstance(expr, ast.Cast):
            return expr.target_type
        if isinstance(expr, ast.SizeOf):
            return INT
        if isinstance(expr, ast.Comma):
            return self.type_of(expr.right)
        return None


# ----------------------------------------------------------------------
# Public helpers
# ----------------------------------------------------------------------
def analyze_unit(unit: ast.TranslationUnit, source_lines: int = 0
                 ) -> AndersenProgram:
    """Generate Andersen constraints for a parsed translation unit."""
    return ConstraintGenerator().analyze(unit, source_lines)


def analyze_source(source: str, filename: str = "<input>") -> AndersenProgram:
    """Parse C source text and generate Andersen constraints."""
    from ..cfront.parser import parse

    unit = parse(source, filename)
    return analyze_unit(unit, source_lines=source.count("\n") + 1)


def analyze_file(path: str) -> AndersenProgram:
    """Parse a C file and generate Andersen constraints."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, filename=path)
