"""Points-to graph extraction.

The paper derives the points-to graph directly from the constraints: the
points-to set of a location ``l`` is the set of location labels on the
``ref``/``lam`` source terms in the least solution of ``X_l``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..solver import Solution, SolverOptions, solve
from .analysis import AndersenProgram
from .locations import AbstractLocation


class PointsToResult:
    """The points-to graph of one program under one solver configuration."""

    def __init__(
        self,
        program: AndersenProgram,
        solution: Solution,
    ) -> None:
        self.program = program
        self.solution = solution
        self._graph: Optional[Dict[AbstractLocation,
                                   FrozenSet[AbstractLocation]]] = None

    # ------------------------------------------------------------------
    def points_to(self, location: AbstractLocation
                  ) -> FrozenSet[AbstractLocation]:
        """Locations that ``location`` may point to."""
        var = self.program.points_to_var[location]
        labels = set()
        for term in self.solution.least_solution(var):
            if isinstance(term.label, AbstractLocation):
                labels.add(term.label)
        return frozenset(labels)

    def points_to_named(self, name: str) -> FrozenSet[str]:
        """Convenience: points-to set of the location named ``name``."""
        location = self.program.location_named(name)
        return frozenset(target.name for target in self.points_to(location))

    @property
    def graph(self) -> Dict[AbstractLocation, FrozenSet[AbstractLocation]]:
        """The whole points-to graph (cached)."""
        if self._graph is None:
            self._graph = {
                location: self.points_to(location)
                for location in self.program.locations
            }
        return self._graph

    # ------------------------------------------------------------------
    # Aggregate precision metrics (used for the Steensgaard comparison).
    # ------------------------------------------------------------------
    def total_edges(self) -> int:
        return sum(len(targets) for targets in self.graph.values())

    def average_set_size(self) -> float:
        graph = self.graph
        nonempty = [len(t) for t in graph.values() if t]
        if not nonempty:
            return 0.0
        return sum(nonempty) / len(nonempty)

    def as_name_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Deterministic, name-based rendering for tests and goldens."""
        out: Dict[str, Tuple[str, ...]] = {}
        for location, targets in self.graph.items():
            if targets:
                out[location.name] = tuple(
                    sorted(target.name for target in targets)
                )
        return out


def solve_points_to(
    program: AndersenProgram, options: Optional[SolverOptions] = None
) -> PointsToResult:
    """Solve a generated constraint system and wrap the points-to view."""
    solution = solve(program.system, options or SolverOptions())
    return PointsToResult(program, solution)


def points_to_sets_equal(a: PointsToResult, b: PointsToResult) -> bool:
    """Whether two results (same program!) agree on every location."""
    return a.as_name_graph() == b.as_name_graph()
