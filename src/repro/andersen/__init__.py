"""Andersen's points-to analysis for C (paper Section 3).

Quick use::

    from repro.andersen import analyze_source, solve_points_to

    program = analyze_source(open("prog.c").read())
    result = solve_points_to(program)          # IF-Online by default
    result.points_to_named("p")                # frozenset of location names
"""

from .analysis import (
    AndersenProgram,
    ConstraintGenerator,
    FunctionInfo,
    HEAP_FUNCTIONS,
    analyze_file,
    analyze_source,
    analyze_unit,
)
from .locations import AbstractLocation, LocationKind, LocationTable
from .pointsto import (
    PointsToResult,
    points_to_sets_equal,
    solve_points_to,
)
from .steensgaard import (
    SteensgaardAnalysis,
    SteensgaardResult,
    analyze_unit_steensgaard,
)

__all__ = [
    "AbstractLocation",
    "AndersenProgram",
    "ConstraintGenerator",
    "FunctionInfo",
    "HEAP_FUNCTIONS",
    "LocationKind",
    "LocationTable",
    "PointsToResult",
    "SteensgaardAnalysis",
    "SteensgaardResult",
    "analyze_file",
    "analyze_source",
    "analyze_unit",
    "analyze_unit_steensgaard",
    "points_to_sets_equal",
    "solve_points_to",
]
