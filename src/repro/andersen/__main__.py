"""Command-line points-to analysis: ``python -m repro.andersen file.c``.

Options::

    python -m repro.andersen prog.c                 # points-to sets
    python -m repro.andersen prog.c --experiment SF-Plain
    python -m repro.andersen prog.c --dot out.dot   # graphviz export
    python -m repro.andersen prog.c --steensgaard   # baseline too
    python -m repro.andersen prog.c --stats         # solver statistics
"""

from __future__ import annotations

import argparse
import sys

from ..cfront import parse
from ..experiments.config import EXPERIMENT_LABELS, options_for
from .analysis import analyze_source
from .pointsto import solve_points_to
from .steensgaard import analyze_unit_steensgaard


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.andersen",
        description="Andersen's points-to analysis for C.",
    )
    parser.add_argument("file", help="C source file to analyze")
    parser.add_argument(
        "--experiment", default="IF-Online", choices=EXPERIMENT_LABELS,
        help="solver configuration (paper Table 4 label)",
    )
    parser.add_argument(
        "--dot", metavar="FILE",
        help="also write the points-to graph as Graphviz DOT",
    )
    parser.add_argument(
        "--steensgaard", action="store_true",
        help="also run the Steensgaard baseline for comparison",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print solver statistics"
    )
    args = parser.parse_args(argv)

    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = analyze_source(source, filename=args.file)
    result = solve_points_to(program, options_for(args.experiment))

    print(f"{args.file}: {program.ast_nodes} AST nodes, "
          f"{program.num_locations} locations, "
          f"{program.system.num_vars} set variables")
    for location, targets in sorted(
        result.graph.items(), key=lambda item: item[0].name
    ):
        if targets:
            names = ", ".join(sorted(t.name for t in targets))
            print(f"  {location.name} -> {{{names}}}")

    if args.stats:
        stats = result.solution.stats
        print(f"\n[{args.experiment}] work={stats.work} "
              f"final_edges={stats.final_edges} "
              f"eliminated={stats.vars_eliminated} "
              f"time={stats.total_seconds:.3f}s")

    if args.steensgaard:
        baseline = analyze_unit_steensgaard(parse(source, args.file))
        print(f"\nSteensgaard baseline: avg set size "
              f"{baseline.average_set_size():.2f} "
              f"(Andersen: {result.average_set_size():.2f})")

    if args.dot:
        from ..viz import points_to_dot

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(points_to_dot(result))
        print(f"\nDOT graph written to {args.dot}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
