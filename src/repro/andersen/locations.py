"""Abstract memory locations for points-to analysis.

Andersen's analysis abstracts the store into a finite set of locations:
one per declared variable and parameter, one per heap-allocation site,
one per function, and one shared location for string literals
(Section 3 of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LocationKind(enum.Enum):
    VARIABLE = "var"
    PARAMETER = "param"
    HEAP = "heap"
    FUNCTION = "function"
    STRING = "string"


@dataclass(frozen=True)
class AbstractLocation:
    """One abstract memory location.

    ``uid`` is a dense index assigned by the location table; equality
    and hashing use only the uid, so locations are cheap dictionary
    keys.  ``name`` is the diagnostic spelling, qualified by function
    for locals (``main::p``) and by site for heap locations
    (``heap@12``).
    """

    uid: int
    name: str
    kind: LocationKind

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AbstractLocation) and other.uid == self.uid

    def __hash__(self) -> int:
        return hash(("loc", self.uid))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return (
            f"AbstractLocation({self.uid}, {self.name!r}, "
            f"{self.kind.value})"
        )


class LocationTable:
    """Creates and indexes abstract locations."""

    def __init__(self) -> None:
        self._locations: list[AbstractLocation] = []

    def make(self, name: str, kind: LocationKind) -> AbstractLocation:
        location = AbstractLocation(len(self._locations), name, kind)
        self._locations.append(location)
        return location

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self):
        return iter(self._locations)

    def by_uid(self, uid: int) -> AbstractLocation:
        return self._locations[uid]

    def by_name(self, name: str) -> AbstractLocation:
        for location in self._locations:
            if location.name == name:
                return location
        raise KeyError(name)
