"""Hand-written miniature C programs.

Small, realistic inputs with *known* points-to answers, used by tests,
examples, and the quickstart.  Each entry is plain C source accepted by
:func:`repro.cfront.parse`.
"""

from __future__ import annotations

from typing import Dict

#: The paper's Figure 5 program: a = &b; b = &d; a = &c; c = &b;
FIGURE5 = """
int *a;
int *b;
int *c;
int d;

int main(void)
{
    a = (int *)&b;
    b = &d;
    a = (int *)&c;
    c = (int *)&b;
    return 0;
}
"""

LINKED_LIST = """
struct list {
    struct list *next;
    int *payload;
};

struct list *head;
int slot0, slot1;

struct list *cons(struct list *tail, int *value)
{
    struct list *cell;
    cell = (struct list *)malloc(sizeof(struct list));
    cell->next = tail;
    cell->payload = value;
    return cell;
}

struct list *reverse(struct list *node)
{
    struct list *previous;
    struct list *following;
    previous = 0;
    while (node != 0) {
        following = node->next;
        node->next = previous;
        previous = node;
        node = following;
    }
    return previous;
}

int main(void)
{
    head = cons(head, &slot0);
    head = cons(head, &slot1);
    head = reverse(head);
    return head->payload != 0;
}
"""

SWAP_CYCLE = """
int x, y;
int *p, *q;

void swap(int **u, int **v)
{
    int *tmp;
    tmp = *u;
    *u = *v;
    *v = tmp;
}

int main(void)
{
    p = &x;
    q = &y;
    swap(&p, &q);
    swap(&q, &p);
    return *p + *q;
}
"""

FUNCTION_POINTERS = """
int a, b;

int *first(int *u, int *v) { return u; }
int *second(int *u, int *v) { return v; }

int *(*table[2])(int *, int *) = { first, second };

int *apply(int *(*fn)(int *, int *), int *u, int *v)
{
    return fn(u, v);
}

int main(void)
{
    int *out;
    int i;
    out = apply(first, &a, &b);
    out = apply(second, out, &b);
    for (i = 0; i < 2; i++) {
        out = table[i](&a, out);
    }
    return out == &a;
}
"""

RECURSION = """
struct tree {
    struct tree *left;
    struct tree *right;
    int *tag;
};

int marker;

struct tree *rotate(struct tree *node)
{
    struct tree *pivot;
    if (node == 0) return 0;
    pivot = node->left;
    if (pivot != 0) {
        node->left = pivot->right;
        pivot->right = rotate(node);
        pivot->tag = &marker;
        return pivot;
    }
    node->right = rotate(node->right);
    return node;
}

int main(void)
{
    struct tree *root;
    root = (struct tree *)malloc(sizeof(struct tree));
    root->left = (struct tree *)malloc(sizeof(struct tree));
    root = rotate(root);
    return root != 0;
}
"""

MULTI_LEVEL = """
int target;
int *level1;
int **level2;
int ***level3;

int main(void)
{
    level1 = &target;
    level2 = &level1;
    level3 = &level2;
    **level3 = &target;
    *level2 = *level2;
    return ***level3;
}
"""


HASH_TABLE = """
struct entry {
    struct entry *next;
    char *key;
    int *value;
};

struct entry *buckets[8];
int slot_a, slot_b;

int hash(char *key)
{
    int h;
    h = 0;
    while (*key != 0) {
        h = h * 31 + *key;
        key++;
    }
    return h % 8;
}

void put(char *key, int *value)
{
    struct entry *cell;
    int index;
    index = hash(key);
    cell = (struct entry *)malloc(sizeof(struct entry));
    cell->key = key;
    cell->value = value;
    cell->next = buckets[index];
    buckets[index] = cell;
}

int *get(char *key)
{
    struct entry *cur;
    cur = buckets[hash(key)];
    while (cur != 0) {
        if (cur->key == key) return cur->value;
        cur = cur->next;
    }
    return 0;
}

int main(void)
{
    int *found;
    put("a", &slot_a);
    put("b", &slot_b);
    found = get("a");
    return found == &slot_a;
}
"""

ARENA = """
struct arena {
    char *base;
    char *cursor;
    struct arena *previous;
};

struct arena *current;

struct arena *arena_new(struct arena *previous)
{
    struct arena *fresh;
    fresh = (struct arena *)malloc(sizeof(struct arena));
    fresh->base = (char *)malloc(1024);
    fresh->cursor = fresh->base;
    fresh->previous = previous;
    return fresh;
}

char *arena_alloc(struct arena *a, int bytes)
{
    char *out;
    out = a->cursor;
    a->cursor = a->cursor + bytes;
    return out;
}

int main(void)
{
    char *first;
    char *second;
    current = arena_new(0);
    current = arena_new(current);
    first = arena_alloc(current, 16);
    second = arena_alloc(current->previous, 32);
    return first != second;
}
"""

STATE_MACHINE = """
int state_data;

typedef int (*handler)(int);

int on_start(int event);
int on_run(int event);
int on_stop(int event);

handler table[3] = { on_start, on_run, on_stop };
handler current_handler;

int on_start(int event) { current_handler = table[1]; return 1; }
int on_run(int event)   { current_handler = table[2]; return 2; }
int on_stop(int event)  { current_handler = table[0]; return 0; }

int main(void)
{
    int code;
    int i;
    current_handler = on_start;
    code = 0;
    for (i = 0; i < 6; i++) {
        code = current_handler(i);
    }
    return code;
}
"""

#: name -> source
ALL_PROGRAMS: Dict[str, str] = {
    "figure5": FIGURE5,
    "linked_list": LINKED_LIST,
    "swap_cycle": SWAP_CYCLE,
    "function_pointers": FUNCTION_POINTERS,
    "recursion": RECURSION,
    "multi_level": MULTI_LEVEL,
    "hash_table": HASH_TABLE,
    "arena": ARENA,
    "state_machine": STATE_MACHINE,
}
