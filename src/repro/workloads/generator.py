"""Synthetic C benchmark generator.

The paper evaluates on 20+ real C programs (Table 1).  Those sources and
the production frontend that preprocessed them are not available here,
so we generate *synthetic* C programs that exercise the same
constraint-graph phenomena:

* sparse initial graphs (edge density around 1/n, the regime the
  Section 5 model assumes);
* pointer-parameter passing and returned pointers, which create long
  variable-variable constraint chains;
* feedback assignments (``g = f(g); p = q; q = p;``), double-pointer
  swaps, linked-structure updates — the motifs that make strongly
  connected components *emerge during closure* (the paper notes fewer
  than 20 % of final-SCC variables are cyclic initially);
* function pointers and heap allocation for realism;
* plain scalar code so the vars-per-AST-node ratio resembles Table 1.

Structure matters as much as size: real programs consist of modules
with *local* pointer recycling and mostly one-directional flow between
modules.  The generator therefore groups functions into **clusters**,
each owning its own global pools.  Feedback (which closes cycles) stays
within a cluster, producing many small-to-medium SCCs; values flow
across clusters only from lower-numbered to higher-numbered clusters,
producing the deep acyclic chains on which standard form's redundant
re-propagation shows (Section 2.3's ``2lk`` example).

Generation is deterministic in the seed, and emits C *source text* so
the lexer/parser substrate is exercised at full scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape knobs for one synthetic benchmark."""

    name: str
    seed: int = 0
    #: number of generated functions (main is extra)
    functions: int = 10
    #: functions per cluster (each cluster owns its global pools)
    cluster_size: int = 6
    #: global variables per pointer kind *per cluster*
    globals_per_kind: int = 3
    #: number of struct types
    structs: int = 2
    #: statements per function body (uniform range)
    statements: Sequence[int] = (4, 10)
    #: calls issued from main per generated function
    main_calls_per_function: int = 2
    #: probability that a call result is fed back into its argument pool
    #: (within-cluster only: this is what closes cycles)
    feedback: float = 0.5
    #: probability of a one-way read from an earlier cluster's pools
    cross_flow: float = 0.25
    #: probability of routing a call through a function pointer
    fnptr: float = 0.15
    #: probability a function contains a heap allocation
    heap: float = 0.3
    #: fraction of functions that are pure scalar filler
    scalar_fraction: float = 0.3
    #: size of the program-wide shared pointer pool
    shared_pool: int = 6
    #: probability a pointer-heavy function couples (both directions)
    #: with the shared pool; this is what lets SCC size grow with
    #: program size, as in real programs with widely shared globals
    shared_rw: float = 0.25


class _Cluster:
    """Per-cluster variable pools."""

    __slots__ = ("index", "ints", "ptrs", "pptrs", "nodes", "fnptrs")

    def __init__(self, index: int) -> None:
        self.index = index
        self.ints: List[str] = []
        self.ptrs: List[str] = []
        self.pptrs: List[str] = []
        self.nodes: List[str] = []
        self.fnptrs: List[str] = []


class CProgramGenerator:
    """Emit one synthetic C translation unit for a config."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.lines: List[str] = []
        self.struct_names: List[str] = []
        self.clusters: List[_Cluster] = []
        self.shared = _Cluster(-1)
        #: (name, shape tag, struct, cluster index)
        self.function_shapes: List[tuple] = []

    # ------------------------------------------------------------------
    def generate(self) -> str:
        n_clusters = max(
            1, (self.config.functions + self.config.cluster_size - 1)
            // self.config.cluster_size
        )
        self.clusters = [_Cluster(i) for i in range(n_clusters)]
        self._emit_structs()
        self._emit_globals()
        self._emit_prototypes()
        self._emit_functions()
        self._emit_main()
        return "\n".join(self.lines) + "\n"

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _emit_structs(self) -> None:
        for index in range(max(1, self.config.structs)):
            name = f"node{index}"
            self.struct_names.append(name)
            self.lines.append(f"struct {name} {{")
            self.lines.append(f"    struct {name} *next;")
            self.lines.append(f"    struct {name} *prev;")
            self.lines.append("    int *data;")
            self.lines.append("    int value;")
            self.lines.append("};")
        self.lines.append("")

    def _emit_globals(self) -> None:
        count = max(2, self.config.globals_per_kind)
        for cluster in self.clusters:
            tag = cluster.index
            for index in range(count * 2):
                name = f"c{tag}_i{index}"
                cluster.ints.append(name)
                self.lines.append(f"int {name};")
            for index in range(count):
                name = f"c{tag}_p{index}"
                cluster.ptrs.append(name)
                target = self.rng.choice(cluster.ints)
                self.lines.append(f"int *{name} = &{target};")
            for index in range(max(1, count // 2)):
                name = f"c{tag}_pp{index}"
                cluster.pptrs.append(name)
                target = self.rng.choice(cluster.ptrs)
                self.lines.append(f"int **{name} = &{target};")
            for index in range(max(2, count // 2)):
                struct = self.rng.choice(self.struct_names)
                name = f"c{tag}_n{index}"
                cluster.nodes.append(name)
                self.lines.append(f"struct {struct} *{name};")
            name = f"c{tag}_f0"
            cluster.fnptrs.append(name)
            self.lines.append(f"int *(*{name})(int *, int *);")
        for index in range(max(2, self.config.shared_pool)):
            name = f"sh_i{index}"
            self.shared.ints.append(name)
            self.lines.append(f"int {name};")
        for index in range(max(2, self.config.shared_pool)):
            name = f"sh_p{index}"
            self.shared.ptrs.append(name)
            target = self.rng.choice(self.shared.ints)
            self.lines.append(f"int *{name} = &{target};")
        for index in range(max(1, self.config.shared_pool // 3)):
            name = f"sh_n{index}"
            self.shared.nodes.append(name)
            struct = self.rng.choice(self.struct_names)
            self.lines.append(f"struct {struct} *{name};")
        self.lines.append("")

    # The function shape palette.
    _SHAPES = (
        ("ptrfun", "int *{name}(int *a, int *b)"),
        ("swap", "void {name}(int **u, int **v)"),
        ("listop", "struct {struct} *{name}(struct {struct} *head)"),
        ("scalar", "int {name}(int x, int y)"),
        ("connector", "void {name}(void)"),
        ("dispatch", "int *{name}(int *(*fp)(int *, int *), int *arg)"),
        ("alloc", "struct {struct} *{name}(int n)"),
    )

    def _pick_shape(self, index: int) -> tuple:
        rng = self.rng
        if rng.random() < self.config.scalar_fraction:
            return self._SHAPES[3]
        if index < len(self._SHAPES):
            return self._SHAPES[index % len(self._SHAPES)]
        weights = (5, 3, 4, 0, 3, 2, 3)
        return rng.choices(self._SHAPES, weights=weights, k=1)[0]

    def _emit_prototypes(self) -> None:
        for index in range(self.config.functions):
            shape = self._pick_shape(index)
            name = f"fn{index}"
            struct = self.rng.choice(self.struct_names)
            cluster = index % len(self.clusters)
            signature = shape[1].format(name=name, struct=struct)
            self.function_shapes.append((name, shape[0], struct, cluster))
            self.lines.append(f"{signature};")
        self.lines.append("")

    def _emit_functions(self) -> None:
        for name, tag, struct, cluster in self.function_shapes:
            emitter = getattr(self, f"_body_{tag}")
            emitter(name, struct, self.clusters[cluster])
            self.lines.append("")

    # ------------------------------------------------------------------
    # Pool pickers — reads may come from earlier clusters (one-way
    # flow); writes stay within the function's own cluster.
    # ------------------------------------------------------------------
    def _read_cluster(self, own: _Cluster) -> _Cluster:
        rng = self.rng
        if own.index > 0 and rng.random() < self.config.cross_flow:
            return self.clusters[rng.randrange(own.index)]
        return own

    def _random_int_expr(self, cluster: _Cluster) -> str:
        rng = self.rng
        source = self._read_cluster(cluster)
        choices = [
            str(rng.randrange(100)),
            rng.choice(source.ints),
            f"{rng.choice(source.ints)} + {rng.randrange(10)}",
        ]
        return rng.choice(choices)

    def _random_ptr_source(self, cluster: _Cluster,
                           params: Sequence[str] = ()) -> str:
        """An expression of type int*, read from own or earlier cluster."""
        rng = self.rng
        source = self._read_cluster(cluster)
        options = [
            f"&{rng.choice(source.ints)}",
            rng.choice(source.ptrs),
            f"*{rng.choice(source.pptrs)}",
        ]
        options.extend(params)
        return rng.choice(options)

    # ------------------------------------------------------------------
    # Bodies
    # ------------------------------------------------------------------
    def _body_ptrfun(self, name: str, struct: str, cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"int *{name}(int *a, int *b)")
        lines.append("{")
        lines.append("    int *t0;")
        lines.append("    int *t1;")
        lines.append("    t0 = a;")
        lines.append("    t1 = b;")
        for _ in range(self._statement_count()):
            kind = rng.randrange(6)
            if kind == 0:
                source = self._random_ptr_source(cluster, ("a", "b", "t1"))
                lines.append(f"    t0 = {source};")
            elif kind == 1:
                lines.append(
                    f"    {rng.choice(cluster.ptrs)} = t{rng.randrange(2)};"
                )
            elif kind == 2:
                lines.append(
                    f"    *{rng.choice(cluster.pptrs)} = t{rng.randrange(2)};"
                )
            elif kind == 3:
                lines.append(f"    t1 = {rng.choice(cluster.ptrs)};")
            elif kind == 4:
                lines.append(
                    f"    if ({self._random_int_expr(cluster)} > "
                    f"{rng.randrange(50)}) t0 = t1; else t1 = t0;"
                )
            else:
                lines.append(f"    *t0 = *t1 + {rng.randrange(10)};")
        if rng.random() < self.config.shared_rw:
            shared = rng.choice(self.shared.ptrs)
            local = rng.choice(cluster.ptrs)
            lines.append(f"    {shared} = t0;")
            lines.append(f"    {local} = {shared};")
        returned = rng.choice(("a", "b", "t0", "t1",
                               rng.choice(cluster.ptrs)))
        lines.append(f"    return {returned};")
        lines.append("}")

    def _body_swap(self, name: str, struct: str, cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"void {name}(int **u, int **v)")
        lines.append("{")
        lines.append("    int *tmp;")
        lines.append("    tmp = *u;")
        lines.append("    *u = *v;")
        lines.append("    *v = tmp;")
        for _ in range(self._statement_count() // 2):
            kind = rng.randrange(3)
            if kind == 0:
                lines.append(f"    {rng.choice(cluster.pptrs)} = u;")
            elif kind == 1:
                source = self._random_ptr_source(cluster, ("tmp",))
                lines.append(f"    *u = {source};")
            else:
                lines.append(f"    tmp = *{rng.choice(('u', 'v'))};")
        lines.append("}")

    def _body_listop(self, name: str, struct: str, cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"struct {struct} *{name}(struct {struct} *head)")
        lines.append("{")
        lines.append(f"    struct {struct} *cur;")
        lines.append(f"    struct {struct} *nxt;")
        lines.append("    cur = head;")
        lines.append("    while (cur != 0) {")
        lines.append("        nxt = cur->next;")
        if rng.random() < 0.5:
            lines.append("        cur->prev = nxt;")
        if rng.random() < 0.5:
            lines.append(
                f"        cur->data = {self._random_ptr_source(cluster)};"
            )
        if rng.random() < 0.4:
            # Reversal motif: cycles among the nodes' contents.
            lines.append("        cur->next = cur->prev;")
        lines.append("        cur = nxt;")
        lines.append("    }")
        node_global = rng.choice(cluster.nodes)
        lines.append(f"    if (head != 0) {node_global} = head->next;")
        lines.append(
            f"    return {rng.choice(('head', 'cur', node_global))};"
        )
        lines.append("}")

    def _body_scalar(self, name: str, struct: str, cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"int {name}(int x, int y)")
        lines.append("{")
        lines.append("    int acc;")
        lines.append("    int i;")
        lines.append("    acc = x;")
        lines.append("    for (i = 0; i < y; i++) {")
        lines.append(f"        acc = acc * {rng.randrange(2, 9)} + i;")
        lines.append(
            f"        if (acc > {rng.randrange(1000)}) acc = acc - y;"
        )
        lines.append("    }")
        for _ in range(self._statement_count() // 2):
            target = rng.choice(cluster.ints)
            lines.append(
                f"    {target} = acc + {self._random_int_expr(cluster)};"
            )
        lines.append("    return acc;")
        lines.append("}")

    def _body_connector(self, name: str, struct: str,
                        cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"void {name}(void)")
        lines.append("{")
        for _ in range(self._statement_count()):
            kind = rng.randrange(4)
            if kind == 0:
                target = rng.choice(cluster.ptrs)
                source = self._random_ptr_source(cluster)
                lines.append(f"    {target} = {source};")
            elif kind == 1:
                target = rng.choice(cluster.pptrs)
                lines.append(f"    {target} = &{rng.choice(cluster.ptrs)};")
            elif kind == 2:
                target = rng.choice(cluster.ptrs)
                lines.append(f"    {target} = *{rng.choice(cluster.pptrs)};")
            else:
                source_pool = self._read_cluster(cluster).nodes
                target = rng.choice(cluster.nodes)
                lines.append(f"    {target} = {rng.choice(source_pool)};")
        if rng.random() < self.config.shared_rw:
            shared = rng.choice(self.shared.ptrs)
            local = rng.choice(cluster.ptrs)
            lines.append(f"    {shared} = {local};")
            lines.append(f"    {local} = {rng.choice(self.shared.ptrs)};")
            node_shared = rng.choice(self.shared.nodes)
            node_local = rng.choice(cluster.nodes)
            lines.append(f"    {node_shared} = {node_local};")
            lines.append(f"    {node_local} = {node_shared};")
        if rng.random() < self.config.feedback:
            # Close a small local cycle explicitly.
            first, second = rng.sample(cluster.ptrs, 2) if len(
                cluster.ptrs
            ) >= 2 else (cluster.ptrs[0], cluster.ptrs[0])
            lines.append(f"    {first} = {second};")
            lines.append(f"    {second} = {first};")
        lines.append("}")

    def _body_dispatch(self, name: str, struct: str,
                       cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"int *{name}(int *(*fp)(int *, int *), int *arg)")
        lines.append("{")
        lines.append("    int *out;")
        lines.append(f"    out = fp(arg, {rng.choice(cluster.ptrs)});")
        if rng.random() < 0.5:
            lines.append(f"    {rng.choice(cluster.ptrs)} = out;")
        if cluster.fnptrs and rng.random() < 0.5:
            lines.append(f"    {rng.choice(cluster.fnptrs)} = fp;")
        lines.append("    return out;")
        lines.append("}")

    def _body_alloc(self, name: str, struct: str, cluster: _Cluster) -> None:
        rng = self.rng
        lines = self.lines
        lines.append(f"struct {struct} *{name}(int n)")
        lines.append("{")
        lines.append(f"    struct {struct} *fresh;")
        lines.append(
            f"    fresh = (struct {struct} *)"
            f"malloc(sizeof(struct {struct}));"
        )
        lines.append("    fresh->value = n;")
        lines.append(f"    fresh->data = {self._random_ptr_source(cluster)};")
        node_global = rng.choice(cluster.nodes)
        lines.append(f"    fresh->next = {node_global};")
        lines.append(f"    {node_global} = fresh;")
        lines.append("    return fresh;")
        lines.append("}")

    def _statement_count(self) -> int:
        low, high = self.config.statements
        return self.rng.randint(low, high)

    # ------------------------------------------------------------------
    # main: wire everything together; feedback stays within a cluster.
    # ------------------------------------------------------------------
    def _emit_main(self) -> None:
        rng = self.rng
        lines = self.lines
        lines.append("int main(void)")
        lines.append("{")
        lines.append("    int *lp0;")
        lines.append("    int *lp1;")
        lines.append("    int rc;")
        struct = self.struct_names[0]
        first = self.clusters[0]
        lines.append(f"    struct {struct} *ln;")
        lines.append(f"    lp0 = {self._random_ptr_source(first)};")
        lines.append(f"    lp1 = &{rng.choice(first.ints)};")
        lines.append("    rc = 0;")
        lines.append("    ln = 0;")
        ptr_functions = [
            entry for entry in self.function_shapes if entry[1] == "ptrfun"
        ]
        for name, tag, struct, cluster_index in self.function_shapes:
            cluster = self.clusters[cluster_index]
            for _ in range(self.config.main_calls_per_function):
                self._emit_main_call(name, tag, struct, cluster,
                                     ptr_functions)
        # Chain results across clusters one way: deep acyclic flow.
        # Several independent passes create the long source-carrying
        # chains (and diamonds) on which SF's redundant re-propagation
        # shows (the 2lk example of Section 2.3).
        for _ in range(3):
            previous = None
            for cluster in self.clusters:
                if previous is not None:
                    target = rng.choice(cluster.ptrs)
                    source = rng.choice(previous.ptrs)
                    lines.append(f"    {target} = {source};")
                    if rng.random() < 0.5:
                        node_target = rng.choice(cluster.nodes)
                        node_source = rng.choice(previous.nodes)
                        lines.append(f"    {node_target} = {node_source};")
                previous = cluster
        lines.append("    return rc;")
        lines.append("}")

    def _emit_main_call(
        self,
        name: str,
        tag: str,
        struct: str,
        cluster: _Cluster,
        ptr_functions: List[tuple],
    ) -> None:
        rng = self.rng
        lines = self.lines
        feedback = rng.random() < self.config.feedback
        ptr_pool = cluster.ptrs + ["lp0", "lp1"]
        if tag == "ptrfun":
            target = rng.choice(ptr_pool)
            arg_a = self._random_ptr_source(cluster, ("lp0", "lp1"))
            arg_b = self._random_ptr_source(cluster, ("lp0", "lp1"))
            if cluster.fnptrs and rng.random() < self.config.fnptr:
                pointer = rng.choice(cluster.fnptrs)
                lines.append(f"    {pointer} = {name};")
                lines.append(f"    {target} = {pointer}({arg_a}, {arg_b});")
            else:
                lines.append(f"    {target} = {name}({arg_a}, {arg_b});")
            if feedback:
                back = arg_a if arg_a[0] not in "&*" else "lp0"
                lines.append(f"    {back} = {target};")
        elif tag == "swap":
            first = rng.choice(ptr_pool)
            second = rng.choice(ptr_pool)
            lines.append(f"    {name}(&{first}, &{second});")
        elif tag in ("listop", "alloc"):
            node_pool = cluster.nodes + ["ln"]
            target = rng.choice(node_pool)
            argument = (
                rng.choice(node_pool) if tag == "listop"
                else str(rng.randrange(64))
            )
            lines.append(f"    {target} = {name}({argument});")
            if feedback and tag == "listop":
                lines.append(f"    {argument} = {target};")
        elif tag == "scalar":
            lines.append(
                f"    rc = rc + {name}({self._random_int_expr(cluster)}, "
                f"{rng.randrange(16)});"
            )
        elif tag == "connector":
            lines.append(f"    {name}();")
        elif tag == "dispatch":
            if not ptr_functions:
                return
            callee = rng.choice(ptr_functions)[0]
            target = rng.choice(ptr_pool)
            argument = self._random_ptr_source(cluster, ("lp0", "lp1"))
            lines.append(f"    {target} = {name}({callee}, {argument});")
            if feedback:
                lines.append(f"    lp1 = {target};")


def generate_program(config: GeneratorConfig) -> str:
    """Generate the C source for one benchmark configuration."""
    return CProgramGenerator(config).generate()


# ----------------------------------------------------------------------
# Random constraint systems (differential fuzzing, repro.resilience.fuzz)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RandomSystemConfig:
    """Shape of one seeded random constraint system.

    Unlike :class:`GeneratorConfig` (which emits C source and exercises
    the full frontend), this builds a :class:`~repro.constraints.system.
    ConstraintSystem` directly, with shapes the frontend never produces:
    mixed-variance constructors, labeled atoms in arbitrary positions,
    deliberately clashing structural constraints, and dense feedback
    edges that force cycles.  The differential fuzzer solves these under
    every Table-4 configuration and cross-checks the results.
    """

    seed: int = 0
    #: set variables in the system
    variables: int = 24
    #: distinct labeled nullary atoms (the ground terms of solutions)
    atoms: int = 6
    #: ``X <= Y`` constraints
    var_var: int = 28
    #: ``term <= X`` constraints
    sources: int = 12
    #: ``X <= term`` constraints
    sinks: int = 10
    #: ``term <= term`` constraints (structural decomposition / clashes)
    structural: int = 6
    #: probability a var-var edge is immediately mirrored (closes cycles)
    feedback: float = 0.3
    #: maximum constructor nesting of generated terms
    max_depth: int = 2
    #: probability a generated sink is ``0`` / a source is ``1``
    #: (exercises the nonempty-in-zero / one-in-constructed diagnostics)
    extremes: float = 0.05
    name: str = ""


def random_system(config: RandomSystemConfig):
    """Build the seeded random system described by ``config``.

    Deterministic in ``config`` (including its seed): the same config
    rebuilds an identical system, which is what lets the fuzzer report a
    disagreement by seed alone.
    """
    from ..constraints.system import ConstraintSystem
    from ..constraints.variance import CONTRAVARIANT, COVARIANT

    rng = random.Random(config.seed)
    system = ConstraintSystem(config.name or f"fuzz-{config.seed}")
    variables = system.fresh_vars(max(2, config.variables))
    atoms = [
        system.term(system.constructor(f"a{i}"), (), label=f"atom-{i}")
        for i in range(max(1, config.atoms))
    ]
    ref = system.constructor("ref", (COVARIANT,))
    fun = system.constructor("fun", (CONTRAVARIANT, COVARIANT))
    pair = system.constructor("pair", (COVARIANT, COVARIANT))
    compound = (ref, fun, pair)

    def make_term(depth: int):
        if depth <= 0 or rng.random() < 0.4:
            return rng.choice(atoms)
        ctor = rng.choice(compound)
        args = tuple(
            rng.choice(variables) if rng.random() < 0.5
            else make_term(depth - 1)
            for _ in range(ctor.arity)
        )
        return system.term(ctor, args)

    for _ in range(config.var_var):
        left, right = rng.sample(variables, 2)
        system.add(left, right)
        if rng.random() < config.feedback:
            system.add(right, left)
    for _ in range(config.sources):
        if rng.random() < config.extremes:
            system.add(system.one, rng.choice(variables))
        else:
            system.add(make_term(config.max_depth), rng.choice(variables))
    for _ in range(config.sinks):
        if rng.random() < config.extremes:
            system.add(rng.choice(variables), system.zero)
        else:
            system.add(rng.choice(variables), make_term(config.max_depth))
    for _ in range(config.structural):
        if rng.random() < 0.7:
            # Same constructor on both sides: decomposes structurally
            # (by variance) instead of clashing immediately.
            ctor = rng.choice(compound)
            args = lambda: tuple(  # noqa: E731 - local shorthand
                rng.choice(variables) if rng.random() < 0.6
                else make_term(config.max_depth - 1)
                for _ in range(ctor.arity)
            )
            system.add(system.term(ctor, args()), system.term(ctor, args()))
        else:
            system.add(make_term(config.max_depth),
                       make_term(config.max_depth))
    return system
