"""The benchmark suite mirroring paper Table 1.

Each entry is a synthetic program (see :mod:`repro.workloads.generator`)
named after one of the paper's C benchmarks and scaled to span roughly
three orders of magnitude in AST size, like the original table.  Sizes
are reduced versus the paper (a pure-Python solver replaces their C
implementation); every measured claim is a *relative* factor, which is
size-stable once programs are large enough.

``suite("quick")`` is a small subset for CI; ``suite("full")`` is the
evaluation suite used by the experiment harness and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..andersen import AndersenProgram, analyze_unit
from ..cfront import ast, parse
from .generator import GeneratorConfig, generate_program


def _config(name: str, seed: int, functions: int, **overrides
            ) -> GeneratorConfig:
    """Derive secondary knobs from the primary size knob."""
    defaults = dict(
        globals_per_kind=max(3, functions // 3),
        structs=max(1, functions // 12),
        statements=(4, 10),
        main_calls_per_function=2,
    )
    defaults.update(overrides)
    return GeneratorConfig(name=name, seed=seed, functions=functions,
                           **defaults)


#: The full suite: names follow paper Table 1, sizes scaled down ~5x.
FULL_SUITE: Tuple[GeneratorConfig, ...] = (
    _config("allroots", seed=101, functions=4),
    _config("diff.diffh", seed=102, functions=6),
    _config("anagram", seed=103, functions=7),
    _config("genetic", seed=104, functions=9),
    _config("ks", seed=105, functions=11),
    _config("ul", seed=106, functions=13),
    _config("ft", seed=107, functions=16),
    _config("compress", seed=108, functions=20),
    _config("ratfor", seed=109, functions=25),
    _config("compiler", seed=110, functions=31),
    _config("assembler", seed=111, functions=39),
    _config("ML-typecheck", seed=112, functions=48),
    _config("eqntott", seed=113, functions=60),
    _config("simulator", seed=114, functions=75),
    _config("less-177", seed=115, functions=93),
    _config("li", seed=116, functions=115),
    _config("flex-2.4.7", seed=117, functions=130, feedback=0.25,
            shared_rw=0.05),
    _config("pmake", seed=118, functions=148),
    _config("make-3.75", seed=119, functions=168),
    _config("inform-5.5", seed=120, functions=190),
    _config("tar-1.11.2", seed=121, functions=214),
    _config("sgmls-1.1", seed=122, functions=240),
    _config("screen-3.5.2", seed=123, functions=268),
    _config("cvs-1.3", seed=124, functions=300),
)

#: Small subset for fast tests.
QUICK_SUITE: Tuple[GeneratorConfig, ...] = tuple(
    config for config in FULL_SUITE
    if config.name in (
        "allroots", "anagram", "ks", "compress", "compiler", "eqntott",
    )
)

#: Mid-size subset for the default benchmark harness run.
MEDIUM_SUITE: Tuple[GeneratorConfig, ...] = tuple(
    config for config in FULL_SUITE
    if config.name in (
        "allroots", "diff.diffh", "anagram", "genetic", "ks", "ul", "ft",
        "compress", "ratfor", "compiler", "assembler", "ML-typecheck",
        "eqntott", "simulator", "less-177", "li",
    )
)

_SUITES: Dict[str, Tuple[GeneratorConfig, ...]] = {
    "quick": QUICK_SUITE,
    "medium": MEDIUM_SUITE,
    "full": FULL_SUITE,
}


@dataclass
class Benchmark:
    """One suite entry: generated source plus lazily built artifacts."""

    config: GeneratorConfig
    source: str
    _unit: Optional[ast.TranslationUnit] = None
    _program: Optional[AndersenProgram] = None

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def lines_of_code(self) -> int:
        return self.source.count("\n") + 1

    @property
    def unit(self) -> ast.TranslationUnit:
        if self._unit is None:
            self._unit = parse(self.source, filename=self.name)
        return self._unit

    @property
    def ast_nodes(self) -> int:
        return self.unit.count_nodes()

    @property
    def program(self) -> AndersenProgram:
        """The generated Andersen constraint system (cached)."""
        if self._program is None:
            self._program = analyze_unit(
                self.unit, source_lines=self.lines_of_code
            )
        return self._program


@lru_cache(maxsize=None)
def _benchmark_for(config: GeneratorConfig) -> Benchmark:
    return Benchmark(config, generate_program(config))


def benchmark(name: str) -> Benchmark:
    """Look up one suite benchmark by its Table 1 name."""
    for config in FULL_SUITE:
        if config.name == name:
            return _benchmark_for(config)
    raise KeyError(f"unknown benchmark {name!r}")


def suite(which: str = "medium") -> List[Benchmark]:
    """Materialize a named suite ("quick", "medium", or "full")."""
    try:
        configs = _SUITES[which]
    except KeyError:
        raise KeyError(
            f"unknown suite {which!r}; choose from {sorted(_SUITES)}"
        ) from None
    return [_benchmark_for(config) for config in configs]


def suite_names(which: str = "medium") -> List[str]:
    return [config.name for config in _SUITES[which]]


def save_sources(directory: str, which: str = "medium") -> List[str]:
    """Write the generated C sources to ``directory`` for inspection.

    Returns the written file paths.  Useful for eyeballing workloads or
    feeding them to an external compiler/analyzer.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    written = []
    for bench in suite(which):
        safe = bench.name.replace("/", "_")
        path = os.path.join(directory, f"{safe}.c")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(bench.source)
        written.append(path)
    return written
