"""Benchmark workloads: synthetic generator, named suite, hand samples."""

from .generator import CProgramGenerator, GeneratorConfig, generate_program
from .programs import ALL_PROGRAMS
from .suite import (
    Benchmark,
    save_sources,
    FULL_SUITE,
    MEDIUM_SUITE,
    QUICK_SUITE,
    benchmark,
    suite,
    suite_names,
)

__all__ = [
    "ALL_PROGRAMS",
    "Benchmark",
    "CProgramGenerator",
    "FULL_SUITE",
    "GeneratorConfig",
    "MEDIUM_SUITE",
    "QUICK_SUITE",
    "benchmark",
    "generate_program",
    "save_sources",
    "suite",
    "suite_names",
]
