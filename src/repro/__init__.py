"""repro — Partial Online Cycle Elimination in Inclusion Constraint Graphs.

A full reproduction of Fähndrich, Foster, Su & Aiken (PLDI 1998):

* a set-constraint language with n-ary variance-aware constructors
  (:mod:`repro.constraints`);
* constraint-graph solvers in standard and inductive form with partial
  online cycle elimination (:mod:`repro.graph`, :mod:`repro.solver`);
* Andersen's points-to analysis for C on top of a from-scratch C
  frontend (:mod:`repro.cfront`, :mod:`repro.andersen`), plus a
  Steensgaard baseline;
* synthetic benchmark workloads (:mod:`repro.workloads`);
* the analytical random-graph model of Section 5 (:mod:`repro.model`);
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`);
* a resilience layer — solve budgets, cancellation, checkpoint/resume,
  graph-invariant audits, and a differential fuzzer
  (:mod:`repro.resilience`).

Every exception the package raises deliberately derives from
:class:`ReproError`, so ``except repro.ReproError`` guards a whole
pipeline.
"""

from .constraints import (
    ConstraintSystem,
    Constructor,
    ONE,
    Term,
    Var,
    Variance,
    ZERO,
)
from .errors import ReproError
from .graph import RandomOrder, SearchMode
from .resilience import CancellationToken, SolveBudget, SolveStatus
from .solver import (
    CyclePolicy,
    GraphForm,
    Solution,
    SolverOptions,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "CancellationToken",
    "ConstraintSystem",
    "Constructor",
    "CyclePolicy",
    "GraphForm",
    "ONE",
    "RandomOrder",
    "ReproError",
    "SearchMode",
    "Solution",
    "SolveBudget",
    "SolveStatus",
    "SolverOptions",
    "Term",
    "Var",
    "Variance",
    "ZERO",
    "solve",
    "__version__",
]
