"""repro — Partial Online Cycle Elimination in Inclusion Constraint Graphs.

A full reproduction of Fähndrich, Foster, Su & Aiken (PLDI 1998):

* a set-constraint language with n-ary variance-aware constructors
  (:mod:`repro.constraints`);
* constraint-graph solvers in standard and inductive form with partial
  online cycle elimination (:mod:`repro.graph`, :mod:`repro.solver`);
* Andersen's points-to analysis for C on top of a from-scratch C
  frontend (:mod:`repro.cfront`, :mod:`repro.andersen`), plus a
  Steensgaard baseline;
* synthetic benchmark workloads (:mod:`repro.workloads`);
* the analytical random-graph model of Section 5 (:mod:`repro.model`);
* the experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).
"""

from .constraints import (
    ConstraintSystem,
    Constructor,
    ONE,
    Term,
    Var,
    Variance,
    ZERO,
)
from .graph import RandomOrder, SearchMode
from .solver import (
    CyclePolicy,
    GraphForm,
    Solution,
    SolverOptions,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "ConstraintSystem",
    "Constructor",
    "CyclePolicy",
    "GraphForm",
    "ONE",
    "RandomOrder",
    "SearchMode",
    "Solution",
    "SolverOptions",
    "Term",
    "Var",
    "Variance",
    "ZERO",
    "solve",
    "__version__",
]
