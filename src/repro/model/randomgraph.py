"""Random constraint graphs for Monte-Carlo validation of the model."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple


@dataclass
class RandomConstraintGraph:
    """A sampled instance of the Section 5 random-graph model.

    Nodes ``0..n-1`` are variables; nodes ``n..n+m-1`` are constructed
    (source/sink) nodes.  Every ordered pair of distinct nodes carries
    an edge independently with probability ``p``.  ``ranks`` assigns a
    uniformly random total order to the variable nodes.
    """

    n: int
    m: int
    p: float
    edges: Set[Tuple[int, int]]
    ranks: List[int]

    @property
    def num_nodes(self) -> int:
        return self.n + self.m

    def is_variable(self, node: int) -> bool:
        return node < self.n

    def successors(self, node: int) -> List[int]:
        return self._adjacency().get(node, [])

    def _adjacency(self) -> Dict[int, List[int]]:
        cached = getattr(self, "_adj", None)
        if cached is None:
            cached = {}
            for src, dst in self.edges:
                cached.setdefault(src, []).append(dst)
            object.__setattr__(self, "_adj", cached)
        return cached


def sample_graph(n: int, m: int, p: float,
                 rng: random.Random) -> RandomConstraintGraph:
    """Sample one random constraint graph from the model."""
    edges: Set[Tuple[int, int]] = set()
    total = n + m
    for src in range(total):
        for dst in range(total):
            if src != dst and rng.random() < p:
                edges.add((src, dst))
    ranks = list(range(n))
    rng.shuffle(ranks)
    return RandomConstraintGraph(n, m, p, edges, ranks)


def sample_variable_graph(n: int, p: float,
                          rng: random.Random) -> RandomConstraintGraph:
    """Variables only (m = 0); used for the Theorem 5.2 simulation."""
    return sample_graph(n, 0, p, rng)
