"""Run the *production solver* on the Section 5 random-graph model.

The Andersen benchmarks live in whatever graph regime real programs
induce; this module instead feeds the solver random constraint systems
drawn exactly from the model's distribution (n variables, m constructed
nodes, each ordered pair an edge with probability p) so the measured
SF/IF work ratio can be compared with the closed-form prediction of
Theorem 5.1.

Sources are distinct terms ``k(0)`` and sinks distinct terms ``k(1)``;
a source meeting a sink resolves to ``0 <= 1`` which is dropped, so —
matching the model's assumption — the resolution rules contribute no
edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constraints import ConstraintSystem, Variance
from ..solver import CyclePolicy, GraphForm, SolverOptions, solve


def random_constraint_system(
    n: int, m: int, p: float, seed: int = 0
) -> ConstraintSystem:
    """Sample a constraint system from the random-graph model."""
    rng = random.Random(seed)
    system = ConstraintSystem(f"model(n={n},m={m})")
    k = system.constructor("k", (Variance.COVARIANT,))
    variables = system.fresh_vars(n, "x")
    sources = [
        system.term(k, (system.zero,), label=("src", i)) for i in range(m)
    ]
    sinks = [
        system.term(k, (system.one,), label=("snk", i)) for i in range(m)
    ]
    # Variable-variable edges.
    for left in range(n):
        for right in range(n):
            if left != right and rng.random() < p:
                system.add(variables[left], variables[right])
    # Constructed-node edges: c -> X (source) and X -> c (sink).
    for c in range(m):
        for x in range(n):
            if rng.random() < p:
                system.add(sources[c], variables[x])
            if rng.random() < p:
                system.add(variables[x], sinks[c])
    return system


@dataclass(frozen=True)
class SolverModelComparison:
    """Measured SF vs IF work on model-distributed inputs."""

    n: int
    m: int
    p: float
    trials: int
    mean_work_sf: float
    mean_work_if: float

    @property
    def ratio(self) -> float:
        if self.mean_work_if == 0:
            return float("inf")
        return self.mean_work_sf / self.mean_work_if


def measure_solver_on_model(
    n: int,
    m: int = None,
    p: float = None,
    trials: int = 5,
    seed: int = 0,
) -> SolverModelComparison:
    """Solve sampled systems under SF-Oracle and IF-Oracle.

    The oracle policy mirrors the model's simple-paths-only assumption
    (perfect cycle elimination).  Defaults follow Theorem 5.1:
    ``m = 2n/3`` and ``p = 1/n``.
    """
    if m is None:
        m = max(1, round(2 * n / 3))
    if p is None:
        p = 1.0 / n
    total_sf = 0
    total_if = 0
    for trial in range(trials):
        system = random_constraint_system(n, m, p, seed=seed + trial)
        sf = solve(system, SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.ORACLE,
            seed=seed + trial,
        ))
        if_ = solve(system, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ORACLE,
            seed=seed + trial,
        ))
        total_sf += sf.stats.work
        total_if += if_.stats.work
    return SolverModelComparison(
        n, m, p, trials, total_sf / trials, total_if / trials
    )
