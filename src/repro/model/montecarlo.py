"""Monte-Carlo validation of the Section 5 model.

Two simulations:

* :func:`simulate_work` enumerates, per sampled graph, every simple
  path whose intermediate nodes are variables, and counts which edge
  additions SF and IF perform through it (SF: always; IF: per the
  order conditions proved in Lemma 5.3).  Averaging over graphs and
  orders estimates ``E(X_SF)`` and ``E(X_IF)`` — the quantities the
  closed-form sums of :mod:`repro.model.formulas` predict.

* :func:`simulate_reachable` measures the number of variables reachable
  through decreasing chains — the cost of one partial cycle search —
  validating Theorem 5.2's ``(e^k - 1 - k)/k`` bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .randomgraph import (
    RandomConstraintGraph,
    sample_graph,
    sample_variable_graph,
)


@dataclass(frozen=True)
class WorkSimulation:
    """Averaged simple-path edge-addition counts."""

    n: int
    m: int
    p: float
    trials: int
    mean_work_sf: float
    mean_work_if: float

    @property
    def ratio(self) -> float:
        if self.mean_work_if == 0:
            return float("inf")
        return self.mean_work_sf / self.mean_work_if


def _count_graph_work(graph: RandomConstraintGraph) -> tuple:
    """Count SF and IF edge additions through simple paths in one graph."""
    n = graph.n
    ranks = graph.ranks
    work_sf = 0
    work_if = 0

    def rank_of(node: int) -> float:
        # Constructed nodes behave like order -infinity: sources and
        # sinks always sit at the chain's ends.
        return ranks[node] if node < n else float("-inf")

    # DFS over simple paths whose intermediate nodes are variables.
    for start in range(graph.num_nodes):
        start_is_var = graph.is_variable(start)
        stack: List[tuple] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for succ in graph.successors(node):
                if succ in path:
                    continue
                new_path = path + (succ,)
                if len(new_path) >= 2:
                    _tally = _tally_path(
                        new_path, start_is_var, graph, rank_of
                    )
                    if _tally is not None:
                        sf_add, if_add = _tally
                        work_sf += sf_add
                        work_if += if_add
                # Only variables may be intermediate nodes.
                if graph.is_variable(succ):
                    stack.append((succ, new_path))
    return work_sf, work_if


def _tally_path(path, start_is_var, graph, rank_of):
    """Does the closure add edge (path[0], path[-1]) through this path?"""
    length = len(path)
    if length < 3:
        return None  # the edge itself, not an addition
    end = path[-1]
    end_is_var = graph.is_variable(end)
    # SF only propagates sources forward: additions happen for source
    # start nodes (to variables or sinks).
    sf_add = 0 if start_is_var else 1
    # IF adds the edge iff the endpoints carry the two smallest orders
    # on the path (Lemma 5.3); constructed nodes rank below everything.
    interior_min = min(rank_of(v) for v in path[1:-1])
    if rank_of(path[0]) < interior_min and rank_of(end) < interior_min:
        if_add = 1
    else:
        if_add = 0
    if not start_is_var and not end_is_var:
        # (c, c'): both representations always add (P = 1).
        if_add = 1
    return sf_add, if_add


def simulate_work(
    n: int,
    m: int,
    p: float,
    trials: int = 50,
    seed: int = 0,
) -> WorkSimulation:
    """Estimate expected SF/IF work on the random-graph model."""
    rng = random.Random(seed)
    total_sf = 0
    total_if = 0
    for _ in range(trials):
        graph = sample_graph(n, m, p, rng)
        work_sf, work_if = _count_graph_work(graph)
        total_sf += work_sf
        total_if += work_if
    return WorkSimulation(
        n, m, p, trials, total_sf / trials, total_if / trials
    )


@dataclass(frozen=True)
class ReachableSimulation:
    """Average decreasing-chain reachability (Theorem 5.2 quantity)."""

    n: int
    k: float
    trials: int
    mean_reachable: float
    max_reachable: int


def simulate_reachable(
    n: int,
    k: float = 2.0,
    trials: int = 20,
    seed: int = 0,
) -> ReachableSimulation:
    """Measure E(R_X) empirically at edge probability ``p = k/n``."""
    rng = random.Random(seed)
    total = 0
    count = 0
    worst = 0
    for _ in range(trials):
        graph = sample_variable_graph(n, k / n, rng)
        ranks = graph.ranks
        for start in range(n):
            reached = 0
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for succ in graph.successors(node):
                    if succ in seen or ranks[succ] >= ranks[node]:
                        continue
                    seen.add(succ)
                    reached += 1
                    stack.append(succ)
            total += reached
            worst = max(worst, reached)
            count += 1
    return ReachableSimulation(n, k, trials, total / count, worst)
