"""The analytical model of Section 5, in closed form.

Random constraint graphs: ``n`` variable nodes, ``m`` constructed
(source/sink) nodes, every ordered pair an edge independently with
probability ``p``.  The model counts *edge additions through simple
paths* — the work of closing the graph with perfect cycle elimination —
for both representations, and the expected number of nodes reachable by
a decreasing chain (the cost of one partial cycle search).

Key results reproduced here:

* ``expected_work_sf`` / ``expected_work_if`` — the exact sums of
  Sections 5.1 and 5.2 built on Lemma 5.3.
* Theorem 5.1: with ``p = 1/n`` and ``m/n = 2/3``,
  ``E(X_SF)/E(X_IF) -> ~2.5``.
* Theorem 5.2: with ``p = k/n`` the expected number of variables
  reachable through a predecessor chain is below ``(e^k - 1 - k)/k``
  (~2.2 for ``k = 2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Terms smaller than this fraction of the running total are dropped;
#: the sums' terms decay factorially so this loses nothing measurable.
_CUTOFF = 1e-18


def _path_sum(choices: int, p: float, weight) -> float:
    """Compute ``sum_i C(choices, i) * i! * p^(i+1) * weight(i)``.

    ``C(choices, i) * i!`` is the number of ways to pick and arrange the
    ``i`` intermediate variable nodes of a simple path; ``p^(i+1)`` is
    the probability all ``i+1`` edges exist; ``weight(i)`` is the
    representation-specific probability the edge is actually added
    through such a path (Lemma 5.3).
    """
    total = 0.0
    # Running C(choices, i) * i! * p^(i+1), folded together so neither
    # the falling factorial overflows nor p^(i+1) underflows.
    term = p
    for i in range(1, choices + 1):
        term *= (choices - i + 1) * p
        contribution = term * weight(i)
        total += contribution
        if contribution < _CUTOFF * max(total, 1e-300):
            break
    return total


# ----------------------------------------------------------------------
# Section 5.1 — standard form
# ----------------------------------------------------------------------
def expected_additions_sf_source_var(n: int, p: float) -> float:
    """``E(X_SF^(c,X))``: additions of one source-to-variable edge."""
    return _path_sum(n - 1, p, lambda i: 1.0)


def expected_additions_sf_source_source(n: int, p: float) -> float:
    """``E(X_SF^(c,c'))``: additions of one source-to-sink edge."""
    return _path_sum(n, p, lambda i: 1.0)


def expected_work_sf(n: int, m: int, p: float) -> float:
    """Total expected SF edge additions over all possible edges."""
    return (
        m * n * expected_additions_sf_source_var(n, p)
        + m * (m - 1) * expected_additions_sf_source_source(n, p)
    )


# ----------------------------------------------------------------------
# Section 5.2 — inductive form (probabilities from Lemma 5.3)
# ----------------------------------------------------------------------
def lemma_5_3_probability(l: int, kind: str) -> float:
    """``P_l(u, v)`` for a path with ``l`` nodes.

    ``kind`` is ``"vv"`` (both endpoints variables), ``"vc"`` (one
    variable, one constructed node), or ``"cc"`` (both constructed).
    """
    if kind == "vv":
        return 2.0 / (l * (l - 1))
    if kind == "vc":
        return 1.0 / (l - 1)
    if kind == "cc":
        return 1.0
    raise ValueError(f"unknown endpoint kind {kind!r}")


def expected_additions_if_var_var(n: int, p: float) -> float:
    """``E(X_IF^(X1,X2))`` using ``P_{i+2} = 2/((i+2)(i+1))``."""
    return _path_sum(
        n - 2, p, lambda i: lemma_5_3_probability(i + 2, "vv")
    )


def expected_additions_if_var_source(n: int, p: float) -> float:
    """``E(X_IF^(X,c)) = E(X_IF^(c,X))`` using ``P_{i+2} = 1/(i+1)``."""
    return _path_sum(
        n - 1, p, lambda i: lemma_5_3_probability(i + 2, "vc")
    )


def expected_additions_if_source_source(n: int, p: float) -> float:
    """``E(X_IF^(c,c'))``; same as SF (``P = 1``)."""
    return _path_sum(n, p, lambda i: 1.0)


def expected_work_if(n: int, m: int, p: float) -> float:
    """Total expected IF edge additions over all possible edges."""
    return (
        m * (m - 1) * expected_additions_if_source_source(n, p)
        + 2 * m * n * expected_additions_if_var_source(n, p)
        + n * (n - 1) * expected_additions_if_var_var(n, p)
    )


# ----------------------------------------------------------------------
# Section 5.3 — closed-form approximations at p = 1/n
# ----------------------------------------------------------------------
def knuth_q_approximation(n: int) -> float:
    """``sum_i C(n,i) i! n^-i  ~  sqrt(pi n / 2)`` (equation (2))."""
    return math.sqrt(math.pi * n / 2.0)


def approx_work_sf(n: int, m: int) -> float:
    """Closed-form ``E(X_SF)`` at ``p = 1/n`` (Section 5.3)."""
    q = knuth_q_approximation(n)
    return m * (q - 1.0) * 1.0 + (m * (m - 1) / n) * q


def approx_work_if(n: int, m: int) -> float:
    """Closed-form ``E(X_IF)`` at ``p = 1/n`` (Section 5.3)."""
    q = knuth_q_approximation(n)
    return (m * (m - 1) / n) * q + 2.0 * m * math.log(n) + n


@dataclass(frozen=True)
class WorkComparison:
    """SF-vs-IF expected work at one model configuration."""

    n: int
    m: int
    p: float
    work_sf: float
    work_if: float

    @property
    def ratio(self) -> float:
        return self.work_sf / self.work_if if self.work_if else math.inf


def compare_work(n: int, m_ratio: float = 2.0 / 3.0,
                 p: float = None) -> WorkComparison:
    """Exact-model comparison at the paper's parameters.

    Defaults: ``m = (2/3) n`` and ``p = 1/n`` (Theorem 5.1's setting).
    """
    m = max(1, round(m_ratio * n))
    if p is None:
        p = 1.0 / n
    return WorkComparison(
        n, m, p, expected_work_sf(n, m, p), expected_work_if(n, m, p)
    )


def theorem_5_1_ratio(n: int, m_ratio: float = 2.0 / 3.0) -> float:
    """``E(X_SF)/E(X_IF)`` at ``p = 1/n``; tends to ~2.5 as n grows."""
    return compare_work(n, m_ratio).ratio


# ----------------------------------------------------------------------
# Section 5.4 — cost of one partial cycle search
# ----------------------------------------------------------------------
def expected_reachable_exact(n: int, k: float) -> float:
    """Exact-model ``E(R_X)`` bound at ``p = k/n``.

    Counts, over simple paths of ``i`` variable steps from ``X``, the
    probability the path exists (``p^i``) times the probability it is a
    decreasing chain (``1/(i+1)!``).
    """
    p = k / n
    total = 0.0
    # Running falling-factorial(n-1, i) * p^i, folded to avoid overflow.
    term = 1.0
    factorial = 1.0
    for i in range(1, n):
        term *= (n - i) * p
        factorial *= (i + 1)
        contribution = term / factorial
        total += contribution
        if contribution < _CUTOFF * max(total, 1e-300):
            break
    return total


def theorem_5_2_bound(k: float = 2.0) -> float:
    """``(e^k - 1 - k) / k``; ~2.19 for the paper's ``k = 2``."""
    return (math.exp(k) - 1.0 - k) / k
