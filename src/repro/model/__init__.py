"""The analytical model of paper Section 5 plus Monte-Carlo validation."""

from .formulas import (
    WorkComparison,
    approx_work_if,
    approx_work_sf,
    compare_work,
    expected_additions_if_source_source,
    expected_additions_if_var_source,
    expected_additions_if_var_var,
    expected_additions_sf_source_source,
    expected_additions_sf_source_var,
    expected_reachable_exact,
    expected_work_if,
    expected_work_sf,
    knuth_q_approximation,
    lemma_5_3_probability,
    theorem_5_1_ratio,
    theorem_5_2_bound,
)
from .montecarlo import (
    ReachableSimulation,
    WorkSimulation,
    simulate_reachable,
    simulate_work,
)
from .randomgraph import (
    RandomConstraintGraph,
    sample_graph,
    sample_variable_graph,
)
from .solver_validation import (
    SolverModelComparison,
    measure_solver_on_model,
    random_constraint_system,
)

__all__ = [
    "RandomConstraintGraph",
    "SolverModelComparison",
    "measure_solver_on_model",
    "random_constraint_system",
    "ReachableSimulation",
    "WorkComparison",
    "WorkSimulation",
    "approx_work_if",
    "approx_work_sf",
    "compare_work",
    "expected_additions_if_source_source",
    "expected_additions_if_var_source",
    "expected_additions_if_var_var",
    "expected_additions_sf_source_source",
    "expected_additions_sf_source_var",
    "expected_reachable_exact",
    "expected_work_if",
    "expected_work_sf",
    "knuth_q_approximation",
    "lemma_5_3_probability",
    "sample_graph",
    "sample_variable_graph",
    "simulate_reachable",
    "simulate_work",
    "theorem_5_1_ratio",
    "theorem_5_2_bound",
]
