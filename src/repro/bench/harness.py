"""The benchmark-regression harness.

``run_bench`` solves a pinned, seeded workload suite under the six
Table-4 experiment configurations through the shared measurement
primitive (:func:`repro.bench.measure.measure_system`) and returns a
schema-versioned :class:`BenchReport`:

* the deterministic ``SolverStats`` counters per (benchmark,
  experiment) — exact regression oracles, reproducible across machines
  when ``PYTHONHASHSEED`` is pinned (the CLI pins it to ``0``);
* median-of-N wall times — noisy, gated only by a tolerance.

The report serializes to ``BENCH_<n>.json`` (see
:mod:`repro.bench.baseline`) and diffs against a committed baseline
(see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError
from ..experiments.config import EXPERIMENT_LABELS, options_for
from ..resilience.budget import SolveBudget
from ..resilience.errors import BudgetExceededError
from ..workloads import suite
from .measure import measure_system

#: Format version of the serialized report; bump on breaking changes.
#: v2 added the ``git_sha``/``timestamp`` provenance stamps so the
#: dashboard can order a report trajectory without filename parsing;
#: v1 reports still load (the stamps default to unknown/empty).
SCHEMA_VERSION = 2

#: The pinned smoke workload: small, seeded, fast enough for CI.
SMOKE_SUITE = "quick"
SMOKE_REPEATS = 3


def detect_git_sha() -> str:
    """The commit this run measures: ``$GITHUB_SHA`` or ``git rev-parse``.

    Falls back to ``"unknown"`` outside a repository — provenance is
    metadata, never a reason for a benchmark run to fail.
    """
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else "unknown"


def _utc_now() -> str:
    """ISO-8601 UTC stamp; lexicographic order == chronological order."""
    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


class BenchTimeoutError(ReproError):
    """A harness run exceeded its per-suite wall-clock timeout."""

    def __init__(self, message: str, completed: int = 0) -> None:
        super().__init__(message)
        #: (benchmark, experiment) pairs finished before the timeout
        self.completed = completed


@dataclass
class BenchRecord:
    """Measurements for one benchmark under one experiment."""

    benchmark: str
    experiment: str
    counters: Dict[str, int]
    wall_times: List[float]

    @property
    def work(self) -> int:
        return self.counters["work"]

    @property
    def median_seconds(self) -> float:
        times = sorted(self.wall_times)
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2

    @property
    def best_seconds(self) -> float:
        return min(self.wall_times)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "experiment": self.experiment,
            "counters": dict(self.counters),
            "wall_times": list(self.wall_times),
            "median_seconds": self.median_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        return cls(
            benchmark=payload["benchmark"],
            experiment=payload["experiment"],
            counters={k: int(v) for k, v in payload["counters"].items()},
            wall_times=[float(t) for t in payload["wall_times"]],
        )


@dataclass
class BenchReport:
    """One full harness run over a suite, ready to serialize."""

    suite: str
    seed: int
    repeats: int
    experiments: List[str]
    records: List[BenchRecord]
    schema_version: int = SCHEMA_VERSION
    python_version: str = field(
        default_factory=lambda: platform.python_version()
    )
    hash_seed: str = field(
        default_factory=lambda: os.environ.get("PYTHONHASHSEED", "random")
    )
    #: commit the run measured (schema v2; "unknown" on v1 reports)
    git_sha: str = field(default_factory=detect_git_sha)
    #: ISO-8601 UTC stamp of the run (schema v2; "" on v1 reports)
    timestamp: str = field(default_factory=_utc_now)

    def key(self) -> Dict[Tuple[str, str], BenchRecord]:
        return {
            (record.benchmark, record.experiment): record
            for record in self.records
        }

    @property
    def total_median_seconds(self) -> float:
        return sum(record.median_seconds for record in self.records)

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "seed": self.seed,
            "repeats": self.repeats,
            "experiments": list(self.experiments),
            "python_version": self.python_version,
            "hash_seed": self.hash_seed,
            "git_sha": self.git_sha,
            "timestamp": self.timestamp,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchReport":
        # v1 payloads predate the provenance stamps; default them
        # rather than refusing — old baselines must keep loading.
        return cls(
            suite=payload["suite"],
            seed=int(payload["seed"]),
            repeats=int(payload["repeats"]),
            experiments=list(payload["experiments"]),
            records=[
                BenchRecord.from_dict(entry) for entry in payload["records"]
            ],
            schema_version=int(payload["schema_version"]),
            python_version=payload.get("python_version", "unknown"),
            hash_seed=str(payload.get("hash_seed", "random")),
            git_sha=str(payload.get("git_sha", "unknown")),
            timestamp=str(payload.get("timestamp", "")),
        )


def run_bench(
    suite_name: str = SMOKE_SUITE,
    experiments: Optional[Iterable[str]] = None,
    seed: int = 0,
    repeats: int = SMOKE_REPEATS,
    benchmarks: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_dir: Optional[str] = None,
    timeout_seconds: Optional[float] = None,
    metrics_dir: Optional[str] = None,
    jobs: int = 1,
) -> BenchReport:
    """Run the harness and return the report.

    ``benchmarks`` optionally restricts the suite to the named entries
    (used by the fast unit tests); ``progress`` receives one line per
    completed (benchmark, experiment) pair.

    ``trace_dir`` attaches a bounded-memory telemetry sink
    (:class:`repro.trace.histogram.HistogramSink`) to every run and
    writes ``trace_summary.json`` (per-run distributions and phase
    times) plus ``trace_spans.json`` (a Chrome/Perfetto view of the
    phase spans) into that directory.  Sinks observe without steering,
    so every deterministic counter in the returned report is identical
    to an untraced run; only wall times carry the (small) observation
    cost, which is why traced reports should not be promoted to timing
    baselines.

    ``timeout_seconds`` bounds the *whole suite run* by wall clock: the
    remaining allowance is wired into each solve as a
    :class:`~repro.resilience.budget.SolveBudget` deadline, so even a
    single hung closure cannot stall the job — it raises
    :class:`BenchTimeoutError` (as does starting a run after the
    deadline has passed).  Deterministic counters are unaffected by the
    budget machinery; wall times carry a small polling cost, so
    timeout-bounded reports should not be promoted to timing baselines
    either.

    ``metrics_dir`` attaches a :class:`repro.metrics.sink.MetricsSink`
    (labeled with the suite, benchmark, form and mode of every run) to
    a fresh :class:`~repro.metrics.registry.MetricsRegistry` and writes
    ``metrics.json`` (a loadable snapshot) and ``metrics.prom``
    (Prometheus text exposition) into that directory after the suite
    completes.  The same observe-don't-steer contract applies: counters
    in the report are unchanged, wall times carry the observation cost.

    ``jobs > 1`` shards the (benchmark, experiment) pairs across a
    :mod:`repro.parallel` worker pool (``jobs <= 0`` means one worker
    per core).  The report's deterministic fields are byte-identical to
    a serial run — results merge in task submission order and every
    worker pins ``PYTHONHASHSEED`` — and only ``wall_times`` /
    ``median_seconds`` / ``timestamp`` differ.  ``timeout_seconds``
    then bounds the whole run *and* each individual solve (crashed or
    hung workers are retried once, then reported); trace and metrics
    artifacts are merged across workers in the same task order.
    """
    if jobs != 1:
        return _run_bench_parallel(
            suite_name=suite_name,
            experiments=experiments,
            seed=seed,
            repeats=repeats,
            benchmarks=benchmarks,
            progress=progress,
            trace_dir=trace_dir,
            timeout_seconds=timeout_seconds,
            metrics_dir=metrics_dir,
            jobs=jobs,
        )
    deadline = (
        None if timeout_seconds is None
        else time.perf_counter() + timeout_seconds
    )
    labels = list(experiments) if experiments else list(EXPERIMENT_LABELS)
    selected = _select_benchmarks(suite_name, benchmarks)
    metrics_registry = None
    if metrics_dir is not None:
        from ..metrics.registry import MetricsRegistry

        metrics_registry = MetricsRegistry()
    telemetry: List[tuple] = []
    records: List[BenchRecord] = []
    for bench in selected:
        system = bench.program.system  # build outside the timed region
        for label in labels:
            options = options_for(label, seed=seed)
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise BenchTimeoutError(
                        f"suite {suite_name!r} exceeded its "
                        f"{timeout_seconds:.0f}s timeout before "
                        f"{bench.name}/{label}",
                        completed=len(records),
                    )
                options = options.replace(
                    budget=SolveBudget(deadline_seconds=remaining)
                )
            sink = None
            if trace_dir is not None:
                from ..trace.histogram import HistogramSink

                sink = HistogramSink(label=f"{bench.name}/{label}")
            if metrics_registry is not None:
                from ..metrics.sink import MetricsSink
                from ..trace.sinks import combine

                metrics_sink = MetricsSink.for_options(
                    options,
                    registry=metrics_registry,
                    suite=suite_name,
                    benchmark=bench.name,
                )
                options = options.replace(
                    sink=combine(sink, metrics_sink)
                )
            elif sink is not None:
                options = options.replace(sink=sink)
            try:
                measured = measure_system(system, options, repeats=repeats)
            except BudgetExceededError as error:
                raise BenchTimeoutError(
                    f"suite {suite_name!r} exceeded its "
                    f"{timeout_seconds:.0f}s timeout inside "
                    f"{bench.name}/{label}: {error}",
                    completed=len(records),
                ) from error
            if sink is not None:
                telemetry.append(
                    (bench.name, label, sink.summary(), sink.spans)
                )
            records.append(
                BenchRecord(
                    benchmark=bench.name,
                    experiment=label,
                    counters=measured.counters,
                    wall_times=measured.wall_times,
                )
            )
            if progress is not None:
                progress(
                    f"{bench.name:<14} {label:<10} "
                    f"work={measured.counters['work']:>9} "
                    f"median={measured.median_seconds * 1000:8.1f}ms"
                )
    report = BenchReport(
        suite=suite_name,
        seed=seed,
        repeats=repeats,
        experiments=labels,
        records=records,
    )
    if trace_dir is not None:
        _write_trace_outputs(report, telemetry, trace_dir)
    if metrics_registry is not None and metrics_dir is not None:
        _write_metrics_outputs(report, metrics_registry, metrics_dir)
    return report


def _select_benchmarks(suite_name: str,
                       benchmarks: Optional[Iterable[str]]) -> list:
    """The suite's benchmark list, optionally restricted by name."""
    selected = suite(suite_name)
    if benchmarks is not None:
        wanted = set(benchmarks)
        selected = [bench for bench in selected if bench.name in wanted]
        missing = wanted - {bench.name for bench in selected}
        if missing:
            raise KeyError(
                f"benchmarks not in suite {suite_name!r}: {sorted(missing)}"
            )
    return selected


def _run_bench_parallel(
    suite_name: str,
    experiments: Optional[Iterable[str]],
    seed: int,
    repeats: int,
    benchmarks: Optional[Iterable[str]],
    progress: Optional[Callable[[str], None]],
    trace_dir: Optional[str],
    timeout_seconds: Optional[float],
    metrics_dir: Optional[str],
    jobs: int,
) -> BenchReport:
    """The ``jobs != 1`` harness path: shard pairs over a worker pool.

    One task per (benchmark, experiment) pair, merged back in task
    submission order — the serial loop's order — so the report's
    deterministic fields cannot depend on worker scheduling.
    """
    from ..parallel.pool import TaskSpec, run_tasks
    from ..parallel.tasks import bench_task

    labels = list(experiments) if experiments else list(EXPERIMENT_LABELS)
    selected = _select_benchmarks(suite_name, benchmarks)
    tasks = [
        TaskSpec(
            key=f"{bench.name}/{label}",
            payload={
                "suite": suite_name,
                "benchmark": bench.name,
                "experiment": label,
                "seed": seed,
                "repeats": repeats,
                "trace": trace_dir is not None,
                "metrics": metrics_dir is not None,
                "budget_seconds": timeout_seconds,
            },
            timeout=timeout_seconds,
        )
        for bench in selected
        for label in labels
    ]

    def report_progress(result) -> None:
        if progress is None:
            return
        if result.ok and result.value.get("status") == "ok":
            counters = result.value["counters"]
            times = sorted(result.value["wall_times"])
            mid = len(times) // 2
            median = (
                times[mid] if len(times) % 2
                else (times[mid - 1] + times[mid]) / 2
            )
            name, label = result.key.split("/", 1)
            progress(
                f"{name:<14} {label:<10} "
                f"work={counters['work']:>9} "
                f"median={median * 1000:8.1f}ms"
            )
        else:
            progress(f"{result.key}: FAILED ({result.kind})")

    results = run_tasks(
        bench_task,
        tasks,
        jobs=jobs,
        retries=1,
        progress=report_progress,
        overall_timeout=timeout_seconds,
    )
    completed = sum(
        1 for result in results
        if result.ok and result.value.get("status") == "ok"
    )
    timeouts = [
        result for result in results
        if (result.ok and result.value.get("status") == "timeout")
        or (not result.ok and result.kind == "timeout")
    ]
    if timeouts:
        first = timeouts[0]
        detail = (
            first.value["detail"] if first.ok else first.error
        )
        raise BenchTimeoutError(
            f"suite {suite_name!r} exceeded its "
            f"{timeout_seconds:.0f}s timeout inside {first.key}: "
            f"{detail}",
            completed=completed,
        )
    from ..parallel.pool import require_ok

    require_ok(results)

    records = []
    telemetry: List[tuple] = []
    metrics_snapshots: List[dict] = []
    for spec, result in zip(tasks, results):
        value = result.value
        name = spec.payload["benchmark"]
        label = spec.payload["experiment"]
        records.append(
            BenchRecord(
                benchmark=name,
                experiment=label,
                counters={
                    key: int(count)
                    for key, count in value["counters"].items()
                },
                wall_times=[float(t) for t in value["wall_times"]],
            )
        )
        if value.get("telemetry") is not None:
            telemetry.append((
                name,
                label,
                value["telemetry"]["summary"],
                value["telemetry"]["spans"],
            ))
        if value.get("metrics") is not None:
            metrics_snapshots.append(value["metrics"])
    report = BenchReport(
        suite=suite_name,
        seed=seed,
        repeats=repeats,
        experiments=labels,
        records=records,
    )
    if trace_dir is not None:
        _write_trace_outputs(report, telemetry, trace_dir)
    if metrics_dir is not None:
        from ..parallel.merge import merge_metrics_snapshots

        registry = merge_metrics_snapshots(metrics_snapshots)
        _write_metrics_outputs(report, registry, metrics_dir)
    return report


def _write_metrics_outputs(report: BenchReport, registry,
                           metrics_dir: str) -> None:
    """Write the --metrics artifacts: snapshot JSON + exposition text."""
    os.makedirs(metrics_dir, exist_ok=True)
    registry.flush_to(
        os.path.join(metrics_dir, "metrics.json"),
        meta={
            "suite": report.suite,
            "seed": report.seed,
            "repeats": report.repeats,
            "git_sha": report.git_sha,
            "timestamp": report.timestamp,
        },
    )
    prom_path = os.path.join(metrics_dir, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(registry.expose())


def _write_trace_outputs(report: BenchReport, telemetry: List[tuple],
                         trace_dir: str) -> None:
    """Write the --trace artifacts: telemetry summary + Chrome spans.

    ``telemetry`` holds ``(benchmark, experiment, summary, spans)``
    tuples — already-serialized sink state, so the same writer serves
    the serial path (live sinks, drained in place) and the parallel
    path (sink state shipped back from workers over a pipe).  Span
    times are ``perf_counter`` readings, which on this platform are
    CLOCK_MONOTONIC and therefore comparable across processes.
    """
    import json

    from ..trace.chrome import chrome_document, spans_to_chrome, write_chrome

    os.makedirs(trace_dir, exist_ok=True)
    summary = {
        "suite": report.suite,
        "seed": report.seed,
        "repeats": report.repeats,
        "runs": [
            {"benchmark": name, "experiment": label,
             "telemetry": run_summary}
            for name, label, run_summary, _ in telemetry
        ],
    }
    summary_path = os.path.join(trace_dir, "trace_summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    all_spans = [
        span for _, _, _, spans in telemetry for span in spans
    ]
    origin = min((span[1] for span in all_spans), default=0.0)
    events: List[dict] = []
    for tid, (name, label, _, spans) in enumerate(telemetry, start=1):
        events.extend(spans_to_chrome(
            spans,
            pid=1,
            tid=tid,
            process_name=f"repro.bench suite={report.suite}",
            thread_name=f"{name} {label}",
            time_origin=origin,
            args={"benchmark": name, "experiment": label},
        ))
    write_chrome(
        chrome_document(events, {"suite": report.suite,
                                 "seed": report.seed}),
        os.path.join(trace_dir, "trace_spans.json"),
    )


def render_report(report: BenchReport) -> str:
    """A compact human-readable table of one report."""
    lines = [
        f"suite={report.suite} seed={report.seed} repeats={report.repeats} "
        f"python={report.python_version} hash_seed={report.hash_seed}",
        f"{'benchmark':<14} {'experiment':<10} {'work':>10} "
        f"{'median_ms':>10}",
    ]
    for record in report.records:
        lines.append(
            f"{record.benchmark:<14} {record.experiment:<10} "
            f"{record.work:>10} {record.median_seconds * 1000:>10.1f}"
        )
    lines.append(
        f"total median wall time: {report.total_median_seconds:.3f}s"
    )
    return "\n".join(lines)


def suite_results(which: str = "medium", seed: int = 0, repeats: int = 1,
                  jobs: int = 1):
    """Construct the experiment runner used by the benchmark scripts.

    The pytest benchmark scripts under ``benchmarks/`` build their
    shared :class:`~repro.experiments.SuiteResults` through this hook so
    table/figure reproduction and regression tracking enter the same
    measurement path (``SuiteResults`` itself times runs via
    :func:`repro.bench.measure.measure_system`).
    """
    from ..experiments.runner import SuiteResults

    return SuiteResults.for_suite(which, seed=seed, repeats=repeats,
                                  jobs=jobs)


def bench_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The table/figure harnesses time full analysis runs (seconds);
    repeated rounds would multiply the suite cost for no statistical
    benefit — regression tracking of solver time lives in
    :func:`run_bench`, not in pytest-benchmark statistics.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
