"""Command-line entry point: ``python -m repro.bench``.

Typical uses::

    # CI smoke gate: run the pinned smoke workload, write BENCH_<n>.json,
    # diff work counts against the committed baseline (wall times are
    # skipped because CI hardware differs from the baseline's machine).
    python -m repro.bench --smoke --baseline benchmarks/BASELINE.json \
        --ignore-time

    # Record a new baseline after an intentional change.
    python -m repro.bench --smoke --write-baseline benchmarks/BASELINE.json

    # Local perf check, medium suite, with the time gate active.
    python -m repro.bench --suite medium --baseline benchmarks/BASELINE.json

Work counts are exact oracles only under a pinned hash seed, so unless
``PYTHONHASHSEED`` is already set the process re-executes itself once
with ``PYTHONHASHSEED=0``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    load_report,
    write_next_report,
    write_report,
)
from ..parallel.pool import ParallelError
from .compare import IncomparableReportsError, compare_reports
from .harness import (
    BenchTimeoutError,
    SMOKE_REPEATS,
    SMOKE_SUITE,
    render_report,
    run_bench,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="benchmark-regression harness for the solver",
    )
    parser.add_argument(
        "--suite", default=None, choices=("quick", "medium", "full"),
        help="workload suite to run (default: quick)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"pinned CI smoke run: suite={SMOKE_SUITE!r}, "
             f"repeats={SMOKE_REPEATS}",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help=f"wall-time samples per configuration "
             f"(median is recorded; default {SMOKE_REPEATS})",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="variable-order seed (default 0)")
    parser.add_argument(
        "--experiments", nargs="+", metavar="LABEL", default=None,
        help="subset of Table-4 labels (default: all six)",
    )
    parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the BENCH_<n>.json output (default: cwd)",
    )
    parser.add_argument(
        "--no-output", action="store_true",
        help="do not write a BENCH_<n>.json file",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"compare against this baseline (e.g. {DEFAULT_BASELINE}) "
             "and exit nonzero on regression",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="write this run as the new baseline",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed median wall-time growth before failing "
             "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--ignore-time", action="store_true",
        help="gate on work counts only (use when the baseline was "
             "recorded on different hardware)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole suite run; a hung or "
             "regressed solve aborts with a timeout error instead of "
             "stalling the job (default: no timeout)",
    )
    parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="attach telemetry sinks and write trace_summary.json + "
             "trace_spans.json (Chrome/Perfetto) into DIR; counters "
             "are unaffected, wall times carry the observation cost",
    )
    parser.add_argument(
        "--metrics", metavar="DIR", default=None,
        help="attach a MetricsSink to every run and write metrics.json "
             "(snapshot) + metrics.prom (Prometheus text) into DIR; "
             "counters are unaffected, wall times carry the "
             "observation cost",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard (benchmark, experiment) pairs across N worker "
             "processes (0 = one per core; default 1 = serial); "
             "deterministic report fields are byte-identical to a "
             "serial run",
    )
    parser.add_argument(
        "--no-pin-hashseed", action="store_true",
        help="do not re-exec with PYTHONHASHSEED=0 (work counts of "
             "Online configurations then vary between processes)",
    )
    return parser


def _repin_hash_seed(argv: List[str]) -> Optional[int]:
    """Re-exec once with PYTHONHASHSEED=0 unless already pinned."""
    if os.environ.get("PYTHONHASHSEED") is not None:
        return None
    import subprocess

    env = dict(os.environ, PYTHONHASHSEED="0")
    command = [sys.executable, "-m", "repro.bench", *argv]
    return subprocess.call(command, env=env)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = _build_parser().parse_args(argv)
    if not args.no_pin_hashseed:
        code = _repin_hash_seed(argv)
        if code is not None:
            return code
    suite_name = args.suite or SMOKE_SUITE
    repeats = args.repeats if args.repeats is not None else SMOKE_REPEATS
    try:
        report = run_bench(
            suite_name=suite_name,
            experiments=args.experiments,
            seed=args.seed,
            repeats=repeats,
            progress=lambda line: print(line, flush=True),
            trace_dir=args.trace,
            timeout_seconds=args.timeout,
            metrics_dir=args.metrics,
            jobs=args.jobs,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except BenchTimeoutError as error:
        print(f"timeout: {error}", file=sys.stderr)
        return 3
    except ParallelError as error:
        print(f"parallel run failed: {error}", file=sys.stderr)
        return 2
    print()
    print(render_report(report))
    if args.trace:
        print(f"\nwrote trace artifacts to {args.trace}/")
    if args.metrics:
        print(f"\nwrote metrics artifacts to {args.metrics}/")
    if not args.no_output:
        path = write_next_report(report, args.out)
        print(f"\nwrote {path}")
    if args.write_baseline:
        write_report(report, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
    if args.baseline:
        try:
            baseline = load_report(args.baseline)
            comparison = compare_reports(
                baseline,
                report,
                time_tolerance=args.time_tolerance,
                check_time=not args.ignore_time,
            )
        except (BaselineError, IncomparableReportsError) as error:
            print(f"\nbaseline compare failed: {error}", file=sys.stderr)
            return 2
        print(f"\ncompare against {args.baseline}:")
        print(comparison.render())
        if not comparison.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
