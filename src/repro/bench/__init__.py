"""Benchmark-regression subsystem (``python -m repro.bench``).

Layout:

* :mod:`repro.bench.measure` — the one measurement primitive shared
  with the experiment runner (kept import-light; only this module is
  imported eagerly so ``repro.experiments`` can depend on it without a
  cycle);
* :mod:`repro.bench.harness` — suite runner producing schema-versioned
  :class:`~repro.bench.harness.BenchReport` objects;
* :mod:`repro.bench.baseline` — ``BENCH_<n>.json`` / baseline I/O;
* :mod:`repro.bench.compare` — the regression gate;
* :mod:`repro.bench.__main__` — the CLI.
"""

from __future__ import annotations

from .measure import (
    COUNTER_FIELDS,
    Measurement,
    NondeterministicRunError,
    counters_of,
    measure_system,
)

__all__ = [
    "COUNTER_FIELDS",
    "Measurement",
    "NondeterministicRunError",
    "counters_of",
    "measure_system",
    # lazily importable (see __getattr__):
    "BenchRecord",
    "BenchReport",
    "ComparisonResult",
    "compare_reports",
    "load_report",
    "run_bench",
    "write_report",
]

_LAZY = {
    "BenchRecord": "harness",
    "BenchReport": "harness",
    "run_bench": "harness",
    "load_report": "baseline",
    "write_report": "baseline",
    "ComparisonResult": "compare",
    "compare_reports": "compare",
}


def __getattr__(name: str):
    """Lazy re-exports of the harness layers.

    ``repro.experiments.runner`` imports :mod:`repro.bench.measure`
    while :mod:`repro.bench.harness` imports ``repro.experiments`` —
    deferring the heavier imports here keeps that dependency DAG free of
    an import cycle.
    """
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
