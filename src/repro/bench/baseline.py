"""Reading and writing benchmark reports and baselines.

Fresh harness runs are written as ``BENCH_<n>.json`` scratch files
(numbered, never overwriting an earlier run; gitignored).  The
*baseline* is one committed report — by convention
``benchmarks/BASELINE.json`` — that the compare step
(:mod:`repro.bench.compare`) diffs fresh runs against.
"""

from __future__ import annotations

import json
import os
import re
from typing import Tuple

from .harness import SCHEMA_VERSION, BenchReport

#: Default committed baseline location, relative to the repo root.
DEFAULT_BASELINE = os.path.join("benchmarks", "BASELINE.json")

#: Schema versions :func:`load_report` accepts.  v1 reports predate the
#: ``git_sha``/``timestamp`` provenance stamps; the loader defaults
#: those fields so committed v1 baselines keep working unchanged.
SUPPORTED_SCHEMA_VERSIONS = (1, SCHEMA_VERSION)

_BENCH_FILE = re.compile(r"^BENCH_(\d+)\.json$")


class BaselineError(ValueError):
    """A baseline/report file is missing, malformed, or incompatible."""


def next_bench_path(directory: str = ".") -> Tuple[str, int]:
    """The first unused ``BENCH_<n>.json`` path in ``directory``."""
    taken = set()
    for entry in os.listdir(directory or "."):
        match = _BENCH_FILE.match(entry)
        if match:
            taken.add(int(match.group(1)))
    n = 1
    while n in taken:
        n += 1
    return os.path.join(directory or ".", f"BENCH_{n}.json"), n


def write_report(report: BenchReport, path: str) -> str:
    """Serialize ``report`` to ``path`` (pretty-printed, stable order)."""
    payload = report.to_dict()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_next_report(report: BenchReport, directory: str = ".") -> str:
    """Write ``report`` to the next free ``BENCH_<n>.json``."""
    path, _ = next_bench_path(directory)
    return write_report(report, path)


def load_report(path: str) -> BenchReport:
    """Load and validate a serialized report or baseline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise BaselineError(f"no report at {path!r}") from None
    except json.JSONDecodeError as error:
        raise BaselineError(f"{path!r} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise BaselineError(f"{path!r}: expected a JSON object")
    version = payload.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise BaselineError(
            f"{path!r}: schema_version {version!r} is not a supported "
            f"version ({supported})"
        )
    try:
        return BenchReport.from_dict(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise BaselineError(f"{path!r}: malformed report: {error}") from None
