"""The one measurement primitive every benchmark path goes through.

Both the experiment runner (:class:`repro.experiments.SuiteResults`,
which feeds the paper's tables and figures) and the regression harness
(:mod:`repro.bench.harness`) time solver runs by calling
:func:`measure_system`.  Keeping a single code path means a recorded
baseline and a reproduced table can never disagree about *how* a number
was measured.

A measurement solves the same system ``repeats`` times and keeps every
wall time; callers choose the best-of (the paper's convention for CPU
times) or the median (the regression harness's convention, more robust
on shared CI machines).  The deterministic counters — ``work``,
``redundant``, ``cycle_search_visits``, ... — must be identical across
repeats; a mismatch means the solver lost reproducibility and raises
:class:`NondeterministicRunError` rather than silently recording noise.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from ..constraints.system import ConstraintSystem
from ..solver import Solution, SolverOptions, solve

#: SolverStats fields that must be bit-identical across repeated runs of
#: the same system/options (everything except wall-clock times).
COUNTER_FIELDS = (
    "work",
    "redundant",
    "self_edges",
    "resolutions",
    "clashes",
    "cycle_searches",
    "cycle_search_visits",
    "cycles_found",
    "vars_eliminated",
    "periodic_sweeps",
    "final_edges",
)


class NondeterministicRunError(RuntimeError):
    """Raised when repeated runs disagree on a deterministic counter."""


def counters_of(solution: Solution) -> Dict[str, int]:
    """The deterministic counter snapshot of one solved run."""
    stats = solution.stats
    return {name: getattr(stats, name) for name in COUNTER_FIELDS}


@dataclass
class Measurement:
    """One system solved ``len(wall_times)`` times under one config."""

    solution: Solution
    #: total (closure + least-solution) seconds, in run order
    wall_times: List[float]

    @property
    def best_seconds(self) -> float:
        return min(self.wall_times)

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.wall_times)

    @property
    def counters(self) -> Dict[str, int]:
        return counters_of(self.solution)


def measure_system(
    system: ConstraintSystem,
    options: SolverOptions,
    repeats: int = 1,
) -> Measurement:
    """Solve ``system`` ``repeats`` times and collect the measurements.

    Returns the best-timed solution (all repeats are verified to agree
    on every deterministic counter, so which solution is kept only
    affects the attached wall-clock stats).
    """
    repeats = max(1, repeats)
    best: Solution = None  # type: ignore[assignment]
    best_time = float("inf")
    reference: Dict[str, int] = {}
    wall_times: List[float] = []
    for attempt in range(repeats):
        solution = solve(system, options)
        elapsed = solution.stats.total_seconds
        wall_times.append(elapsed)
        counters = counters_of(solution)
        if attempt == 0:
            reference = counters
        elif counters != reference:
            drifted = sorted(
                name for name in COUNTER_FIELDS
                if counters[name] != reference[name]
            )
            raise NondeterministicRunError(
                f"{options.label}: counters {drifted} changed between "
                f"repeat 0 and repeat {attempt} on the same system"
            )
        if elapsed < best_time:
            best, best_time = solution, elapsed
    return Measurement(solution=best, wall_times=wall_times)
