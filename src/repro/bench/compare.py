"""The regression gate: diff a fresh report against the baseline.

Two kinds of checks, reflecting the two kinds of numbers the harness
records:

* **Work counts are exact.**  They are deterministic for a pinned
  workload, seed, and ``PYTHONHASHSEED``, so *any* increase in ``work``
  is a regression — there is no noise to tolerate.  A (benchmark,
  experiment) pair present in the baseline but missing from the fresh
  run also fails: silently shrinking the suite must not read as green.
* **Wall times are noisy.**  The median must stay within
  ``1 + time_tolerance`` of the baseline; time checks can be disabled
  entirely (``check_time=False``) when baseline and current run were
  produced on different machines, as in CI.

Comparing runs with different suites, seeds, or hash seeds is refused
rather than attempted: the counters are only oracles when the workload
is literally the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .harness import BenchReport


class IncomparableReportsError(ValueError):
    """The two reports do not describe the same pinned workload."""


@dataclass
class Finding:
    """One comparison outcome for one (benchmark, experiment) metric."""

    benchmark: str
    experiment: str
    metric: str
    baseline: float
    current: float

    def __str__(self) -> str:
        delta = self.current - self.baseline
        rel = (delta / self.baseline * 100) if self.baseline else 0.0
        return (
            f"{self.benchmark}/{self.experiment} {self.metric}: "
            f"{self.baseline:g} -> {self.current:g} ({rel:+.1f}%)"
        )


@dataclass
class ComparisonResult:
    """All findings from one baseline diff."""

    regressions: List[Finding] = field(default_factory=list)
    improvements: List[Finding] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines: List[str] = []
        for key in self.missing:
            lines.append(f"MISSING    {key} (in baseline, not in this run)")
        for finding in self.regressions:
            lines.append(f"REGRESSION {finding}")
        for finding in self.improvements:
            lines.append(f"improved   {finding}")
        if not lines:
            lines.append("no regressions against baseline")
        return "\n".join(lines)


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    time_tolerance: float = 0.25,
    check_time: bool = True,
) -> ComparisonResult:
    """Diff ``current`` against ``baseline`` and classify the findings."""
    for attr in ("suite", "seed"):
        if getattr(baseline, attr) != getattr(current, attr):
            raise IncomparableReportsError(
                f"baseline {attr}={getattr(baseline, attr)!r} but current "
                f"run has {attr}={getattr(current, attr)!r}"
            )
    if baseline.hash_seed != current.hash_seed:
        raise IncomparableReportsError(
            f"baseline was recorded with PYTHONHASHSEED="
            f"{baseline.hash_seed} but this run used "
            f"{current.hash_seed}; work counts are only comparable "
            "under the same hash seed"
        )
    result = ComparisonResult()
    current_by_key = current.key()
    for key, base_record in baseline.key().items():
        record = current_by_key.get(key)
        if record is None:
            result.missing.append("/".join(key))
            continue
        finding = Finding(
            benchmark=key[0],
            experiment=key[1],
            metric="work",
            baseline=base_record.work,
            current=record.work,
        )
        if record.work > base_record.work:
            result.regressions.append(finding)
        elif record.work < base_record.work:
            result.improvements.append(finding)
        if check_time:
            base_time = base_record.median_seconds
            time_finding = Finding(
                benchmark=key[0],
                experiment=key[1],
                metric="median_seconds",
                baseline=base_time,
                current=record.median_seconds,
            )
            if record.median_seconds > base_time * (1.0 + time_tolerance):
                result.regressions.append(time_finding)
            elif record.median_seconds < base_time * (1.0 - time_tolerance):
                result.improvements.append(time_finding)
    return result
