"""The process-wide metrics registry.

A :class:`MetricsRegistry` owns metric families
(:class:`~repro.metrics.instruments.Family`) and provides the three
operations every exporter needs: :meth:`~MetricsRegistry.expose`
(Prometheus text), :meth:`~MetricsRegistry.snapshot` (JSON-ready dict)
and :meth:`~MetricsRegistry.flush_to` (snapshot to file).  Registration
is idempotent — asking twice for the same (name, type, labelnames)
returns the same family, so independent subsystems can wire themselves
without coordination — while re-registering a name with *different*
metadata raises, because silently forking a metric is how dashboards
end up lying.

:func:`default_registry` is the process-wide instance.  It exists so
long-running services and loosely coupled subsystems (the fuzz harness
counts its disagreements there) share one exposition endpoint without
threading a registry through every call path.  Solver instrumentation
proper always goes through an explicit
:class:`~repro.metrics.sink.MetricsSink`, so the default registry stays
empty unless something is actually being measured.

The overhead contract mirrors tracing: a registry that is
:meth:`disabled <MetricsRegistry.disable>` makes every attached
:class:`~repro.metrics.sink.MetricsSink` drop events after one
attribute check, and a solver with no sink attached never reaches
metrics code at all.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Optional

from .exposition import render
from .instruments import COUNTER, GAUGE, HISTOGRAM, Family

#: Format version of :meth:`MetricsRegistry.snapshot` payloads.
SNAPSHOT_SCHEMA_VERSION = 1


class MetricsRegistry:
    """A named collection of metric families with export operations."""

    def __init__(self, enabled: bool = True) -> None:
        #: read by MetricsSink before every event; flip with
        #: :meth:`enable`/:meth:`disable`
        self.enabled = enabled
        self._families: Dict[str, Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def _register(self, name: str, type_: str, help_: str,
                  labelnames: Iterable[str]) -> Family:
        names = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (existing.type != type_
                        or existing.labelnames != names):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type} with labels "
                        f"{existing.labelnames}, cannot re-register as "
                        f"{type_} with labels {names}"
                    )
                return existing
            family = Family(name, type_, help_, names)
            self._families[name] = family
            return family

    def counter(self, name: str, help_: str,
                labelnames: Iterable[str] = ()) -> Family:
        """Register (or fetch) a counter family."""
        return self._register(name, COUNTER, help_, labelnames)

    def gauge(self, name: str, help_: str,
              labelnames: Iterable[str] = ()) -> Family:
        """Register (or fetch) a gauge family."""
        return self._register(name, GAUGE, help_, labelnames)

    def histogram(self, name: str, help_: str,
                  labelnames: Iterable[str] = ()) -> Family:
        """Register (or fetch) a histogram family."""
        return self._register(name, HISTOGRAM, help_, labelnames)

    # -- state ----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def collect(self) -> List[Family]:
        """All families, name-sorted (the exposition order)."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def clear(self) -> None:
        """Drop every family (tests and process recycling)."""
        with self._lock:
            self._families.clear()

    # -- exporters ------------------------------------------------------
    def expose(self) -> str:
        """Prometheus text exposition of every family."""
        return render(self.collect())

    def snapshot(self, meta: Optional[dict] = None) -> dict:
        """JSON-ready dump of every family (plus optional metadata)."""
        payload = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "families": [family.to_dict() for family in self.collect()],
        }
        if meta:
            payload["meta"] = dict(meta)
        return payload

    def load_snapshot(self, payload: dict) -> None:
        """Merge a :meth:`snapshot` payload into this registry.

        Families are registered on demand from the snapshot metadata;
        counters and histogram buckets accumulate, gauges take the
        snapshot value — so loading N batch-run snapshots into one
        registry yields the aggregate a long-running service would have
        accumulated live.
        """
        version = payload.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported metrics snapshot schema {version!r} "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        for entry in payload.get("families", ()):
            family = self._register(
                entry["name"], entry["type"], entry.get("help", ""),
                entry.get("labelnames", ()),
            )
            family.merge_dict(entry)

    def flush_to(self, path: str, meta: Optional[dict] = None) -> str:
        """Write :meth:`snapshot` to ``path`` atomically; returns path.

        The snapshot is written to a sibling temp file and renamed into
        place, so a scraper or a crash mid-flush never observes a torn
        JSON document.
        """
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(meta), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path


class PeriodicFlusher:
    """Flush a registry to a file every ``interval`` seconds.

    For batch runs that want progress visible from outside the process
    (tail the file, or point ``python -m repro.metrics serve
    --snapshot`` at it).  A daemon thread flushes on a timer; a final
    flush happens on :meth:`stop`, so the file always ends complete.
    """

    def __init__(self, registry: MetricsRegistry, path: str,
                 interval: float = 30.0,
                 meta: Optional[dict] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.registry = registry
        self.path = path
        self.interval = interval
        self.meta = meta
        #: completed flushes (tests poll this)
        self.flushes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.registry.flush_to(self.path, self.meta)
            self.flushes += 1

    def start(self) -> "PeriodicFlusher":
        if self._thread is not None:
            raise RuntimeError("flusher already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-flush", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the timer and write one final snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 5.0)
            self._thread = None
        self.registry.flush_to(self.path, self.meta)
        self.flushes += 1

    def __enter__(self) -> "PeriodicFlusher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (created enabled on first use)."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry(enabled=True)
        return _default_registry


def reset_default_registry() -> None:
    """Discard the process-wide registry (test isolation)."""
    global _default_registry
    with _default_lock:
        _default_registry = None
