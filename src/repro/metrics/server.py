"""A stdlib-only Prometheus scrape endpoint.

``serve(registry)`` binds a :class:`ThreadingHTTPServer` whose
``GET /metrics`` renders the registry's exposition text on demand —
every scrape sees the current instrument values, including anything a
:class:`~repro.metrics.registry.PeriodicFlusher` or live
:class:`~repro.metrics.sink.MetricsSink` has accumulated since the
last one.  No third-party dependency: the container bakes in only the
standard library, and a scrape endpoint needs nothing more.

The CLI front end is ``python -m repro.metrics serve``.
"""

from __future__ import annotations

import sys
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from .exposition import CONTENT_TYPE
from .registry import MetricsRegistry

_INDEX = (
    "repro.metrics exposition endpoint\n"
    "\n"
    "GET /metrics  Prometheus text format 0.0.4\n"
)


def _make_handler(registry: MetricsRegistry,
                  error_hook: Optional[Callable[[BaseException],
                                                None]] = None):
    class MetricsHandler(BaseHTTPRequestHandler):
        # One scrape per line in server logs is noise; stay quiet.
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _send(self, status: int, content_type: str,
                  body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _report_error(self, error: BaseException) -> None:
            # A failing exposition must be *loud* somewhere the
            # operator looks: the hook if one was installed, stderr
            # otherwise — never silently dropped (scrapers retry
            # forever against a quietly broken endpoint).
            if error_hook is not None:
                error_hook(error)
            else:
                print(
                    f"repro.metrics: exposition failed: {error}",
                    file=sys.stderr,
                )
                traceback.print_exc(file=sys.stderr)

        def do_GET(self):
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                try:
                    body = registry.expose()
                except Exception as error:
                    self._report_error(error)
                    self._send(
                        500, "text/plain; charset=utf-8",
                        f"exposition failed: "
                        f"{type(error).__name__}: {error}\n",
                    )
                    return
                self._send(200, CONTENT_TYPE, body)
            elif path in ("/", "/index.html"):
                self._send(200, "text/plain; charset=utf-8", _INDEX)
            else:
                self._send(404, "text/plain; charset=utf-8",
                           "not found\n")

    return MetricsHandler


def serve(registry: MetricsRegistry, host: str = "127.0.0.1",
          port: int = 9464,
          error_hook: Optional[Callable[[BaseException], None]] = None,
          ) -> ThreadingHTTPServer:
    """Bind the endpoint; the caller decides how to run it.

    ``port=0`` binds an ephemeral port (tests); read the actual address
    back from ``server.server_address``.  Call ``serve_forever()`` to
    block, or :func:`serve_in_thread` for a background server.

    A raising exposition answers the scrape with HTTP 500 (body names
    the exception) and reports the error through ``error_hook`` — or,
    without one, to stderr with a traceback.
    """
    server = ThreadingHTTPServer(
        (host, port), _make_handler(registry, error_hook)
    )
    server.daemon_threads = True
    return server


def serve_in_thread(
    registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0,
    error_hook: Optional[Callable[[BaseException], None]] = None,
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the endpoint on a daemon thread; returns (server, thread).

    Shut down with ``server.shutdown()`` followed by
    ``server.server_close()``.
    """
    server = serve(registry, host, port, error_hook=error_hook)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-http",
        daemon=True,
    )
    thread.start()
    return server, thread
