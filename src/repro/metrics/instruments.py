"""Metric instruments: counters, gauges, histograms, and their families.

An *instrument* is one time series — a :class:`Counter`, :class:`Gauge`
or :class:`Histogram` holding one value (or one bucket map) for one
label combination.  A :class:`Family` groups every labeled child of one
metric name, owns the metadata (help text, label names), and hands out
children via :meth:`Family.labels`.

Design constraints, in order:

* **Cheap updates.** ``Counter.inc`` is one attribute add; histogram
  ``observe`` is one bucket-floor computation plus three adds.  Hot
  paths pre-bind children once (see
  :class:`repro.metrics.sink.MetricsSink`) so label resolution is paid
  at wiring time, not per event.
* **Shared buckets.** :class:`Histogram` buckets integer samples with
  :mod:`repro.trace.buckets` — the same scheme as the trace-side
  :class:`repro.trace.histogram.OnlineHistogram`, so the two can never
  drift on boundaries.
* **No clock reads, no locks.** The solver is single-threaded per run;
  cross-thread aggregation happens at registry level by merging
  snapshots.  Exposition readers see a consistent-enough view without
  synchronization (Python's GIL makes single attribute updates atomic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..trace.buckets import bucket_floor, bucket_rows, cumulative_bounds

#: Instrument type names as they appear in snapshots and ``# TYPE``.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class Counter:
    """A monotonically increasing value (float-valued; seconds count)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_value(self) -> float:
        return self.value


class Histogram:
    """Integer-sample histogram on the shared trace bucket scheme.

    Mirrors :class:`repro.trace.histogram.OnlineHistogram` exactly in
    where a sample lands (both delegate to
    :func:`repro.trace.buckets.bucket_floor`), and additionally tracks
    ``sum``/``count`` for exposition as a Prometheus histogram.
    """

    __slots__ = ("count", "sum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0
        #: bucket floor -> samples in the bucket (sparse)
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.count += count
        self.sum += value * count
        floor = bucket_floor(value)
        self.buckets[floor] = self.buckets.get(floor, 0) + count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_rows(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(lo, hi_inclusive, count)`` rows (shared scheme)."""
        return bucket_rows(self.buckets)

    def cumulative(self) -> List[Tuple[int, int]]:
        """Sorted ``(le, cumulative_count)`` rows, without ``+Inf``."""
        return cumulative_bounds(self.buckets)


_TYPE_CLASSES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}

#: Prometheus metric / label name grammar (exposition format 0.0.4).
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)
_LABEL_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


def valid_metric_name(name: str) -> bool:
    return bool(name) and name[0] not in "0123456789" and (
        set(name) <= _NAME_OK
    )


def valid_label_name(name: str) -> bool:
    return bool(name) and name[0] not in "0123456789" and (
        set(name) <= _LABEL_OK
    ) and not name.startswith("__")


class Family:
    """Every labeled child of one metric name, plus its metadata."""

    __slots__ = ("name", "type", "help", "labelnames", "_children")

    def __init__(self, name: str, type_: str, help_: str,
                 labelnames: Iterable[str] = ()) -> None:
        if type_ not in _TYPE_CLASSES:
            raise ValueError(f"unknown instrument type {type_!r}")
        if not valid_metric_name(name):
            raise ValueError(f"invalid metric name {name!r}")
        names = tuple(labelnames)
        for label in names:
            if not valid_label_name(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate label names in {names!r}")
        self.name = name
        self.type = type_
        self.help = help_
        self.labelnames = names
        #: label-value tuple -> child instrument
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values: str, **kwvalues: str):
        """The child instrument for one label-value combination.

        Accepts either positional values (in ``labelnames`` order) or
        keyword values; creates the child on first use.
        """
        if kwvalues:
            if values:
                raise ValueError(
                    "pass label values positionally or by keyword, not both"
                )
            try:
                values = tuple(
                    str(kwvalues.pop(name)) for name in self.labelnames
                )
            except KeyError as missing:
                raise ValueError(
                    f"{self.name}: missing label {missing.args[0]!r}"
                ) from None
            if kwvalues:
                raise ValueError(
                    f"{self.name}: unexpected labels {sorted(kwvalues)}"
                )
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {len(values)} values"
            )
        child = self._children.get(values)
        if child is None:
            child = _TYPE_CLASSES[self.type]()
            self._children[values] = child
        return child

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """All ``(label_values, child)`` pairs, label-sorted."""
        return sorted(self._children.items())

    # -- snapshots ------------------------------------------------------
    def to_dict(self) -> dict:
        rows = []
        for values, child in self.series():
            row: Dict[str, object] = {
                "labels": dict(zip(self.labelnames, values)),
            }
            if self.type == HISTOGRAM:
                row["count"] = child.count
                row["sum"] = child.sum
                row["buckets"] = {
                    str(floor): count
                    for floor, count in sorted(child.buckets.items())
                }
            else:
                row["value"] = child.to_value()
            rows.append(row)
        return {
            "name": self.name,
            "type": self.type,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": rows,
        }

    def merge_dict(self, payload: dict) -> None:
        """Fold one snapshot of this family back into the live children.

        Counters and histograms accumulate; gauges take the snapshot
        value (last write wins, matching their semantics).
        """
        for row in payload.get("series", ()):
            labels = row.get("labels", {})
            values = tuple(
                str(labels.get(name, "")) for name in self.labelnames
            )
            child = self.labels(*values)
            if self.type == HISTOGRAM:
                child.count += int(row["count"])
                child.sum += int(row["sum"])
                for floor, count in row.get("buckets", {}).items():
                    floor = int(floor)
                    child.buckets[floor] = (
                        child.buckets.get(floor, 0) + int(count)
                    )
            elif self.type == COUNTER:
                child.inc(float(row["value"]))
            else:
                child.set(float(row["value"]))


def instrument_value(child: object) -> Optional[float]:
    """The scalar value of a counter/gauge child (None for histograms)."""
    to_value = getattr(child, "to_value", None)
    return to_value() if to_value is not None else None
