"""The bridge from solver events to metric instruments.

:class:`MetricsSink` is a :class:`repro.trace.sinks.TraceSink`, which
is the whole trick: the solver core has exactly one set of
instrumentation points (the trace call sites in ``solver/engine`` and
``graph/{base,standard,inductive,cycles}``), and metrics ride those
points instead of adding a second, driftable set.  Attach one with
``SolverOptions(sink=MetricsSink.for_options(options, ...))`` — or tee
it with other sinks via :func:`repro.trace.sinks.combine`.

Overhead:

* **No sink attached** — the solver pays one attribute check per
  operation, exactly as before; metrics code is never reached.
* **Sink attached, registry disabled** — every event method returns
  after one attribute read (``registry.enabled``); instruments are
  registered but receive nothing, and deterministic solver counters
  are byte-identical to an untraced run (tested against
  ``benchmarks/BASELINE.json``).
* **Sink attached, registry enabled** — label resolution happened at
  construction: each event is a dict-cached child lookup plus a couple
  of integer adds.

Every instrument carries the base labels ``form`` (``SF``/``IF``),
``mode`` (the cycle policy: ``plain``/``online``/``oracle``/
``periodic``), ``suite`` and ``benchmark`` — the dimensions the
paper's Tables 2–4 break results down by.  See ``docs/METRICS.md`` for
the full catalog.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..trace.sinks import TraceSink
from .registry import MetricsRegistry, default_registry

if TYPE_CHECKING:  # pragma: no cover - avoid solver <-> metrics cycle
    from ..solver.options import SolverOptions

#: Base label names every solver instrument carries, in order.
BASE_LABELS = ("form", "mode", "suite", "benchmark")


class MetricsSink(TraceSink):
    """Fold solver events into a registry's instruments."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 form: str = "", mode: str = "", suite: str = "",
                 benchmark: str = "") -> None:
        if registry is None:
            registry = default_registry()
        self.registry = registry
        self.labels: Dict[str, str] = {
            "form": form, "mode": mode, "suite": suite,
            "benchmark": benchmark,
        }
        base = (form, mode, suite, benchmark)
        reg = registry

        def counter(name: str, help_: str, extra: Tuple[str, ...] = ()):
            return reg.counter(name, help_, BASE_LABELS + extra)

        def histogram(name: str, help_: str):
            return reg.histogram(name, help_, BASE_LABELS)

        self._edges = counter(
            "repro_solver_edges_total",
            "Attempted atomic edge additions by kind and outcome; "
            "summed over outcomes this is the paper's Work metric "
            "(Tables 2 and 3).",
            ("kind", "outcome"),
        )
        #: (kind, outcome) -> prebound counter child
        self._edge_children: Dict[Tuple[str, str], object] = {}
        self._resolutions = counter(
            "repro_solver_resolutions_total",
            "Applications of the resolution rules R.",
        ).labels(*base)
        self._clashes = counter(
            "repro_solver_clashes_total",
            "Inconsistent constraints recorded.",
        ).labels(*base)
        self._searches = counter(
            "repro_solver_searches_total",
            "Partial online cycle searches started.",
        ).labels(*base)
        self._search_hits = counter(
            "repro_solver_search_hits_total",
            "Partial searches that found a cycle (detection rate "
            "numerator; Figure 11).",
        ).labels(*base)
        self._search_visits = histogram(
            "repro_solver_search_visits",
            "Nodes visited per partial cycle search; Theorem 5.2 bounds "
            "the mean at about 2.2.",
        ).labels(*base)
        self._cycle_length = histogram(
            "repro_solver_cycle_length",
            "Length of each collapsed cycle.",
        ).labels(*base)
        self._collapses = counter(
            "repro_solver_collapses_total",
            "Detected cycles collapsed onto a witness.",
        ).labels(*base)
        self._vars_eliminated = counter(
            "repro_solver_vars_eliminated_total",
            "Variables forwarded into a witness by collapsing (the Elim "
            "column of Table 3).",
        ).labels(*base)
        self._sweeps = counter(
            "repro_solver_sweeps_total",
            "Offline SCC sweeps (periodic policy only).",
        ).labels(*base)
        self._swept_vars = counter(
            "repro_solver_swept_vars_total",
            "Variables eliminated by offline sweeps.",
        ).labels(*base)
        self._audit_failures = counter(
            "repro_solver_audit_failures_total",
            "Graph-invariant audit failures, by failed check.",
            ("check",),
        )
        self._audit_children: Dict[str, object] = {}
        self._budget_stops = counter(
            "repro_solver_budget_stops_total",
            "Guarded drains stopped early, by reason "
            "(work/deadline/edges/cancelled).",
            ("reason",),
        )
        self._budget_children: Dict[str, object] = {}
        self._phase_seconds = counter(
            "repro_solver_phase_seconds_total",
            "Wall-clock seconds spent per solver phase.",
            ("phase",),
        )
        self._phase_children: Dict[str, object] = {}
        self._base = base
        self._open_phases: List[Tuple[str, float]] = []

    @classmethod
    def for_options(cls, options: "SolverOptions",
                    registry: Optional[MetricsRegistry] = None,
                    suite: str = "",
                    benchmark: str = "") -> "MetricsSink":
        """A sink labeled from one run's solver configuration."""
        return cls(
            registry,
            form=options.form.value,
            mode=options.cycles.value,
            suite=suite,
            benchmark=benchmark,
        )

    # -- events ---------------------------------------------------------
    def edge(self, kind, src, dst, outcome):
        if not self.registry.enabled:
            return
        key = (kind, outcome)
        child = self._edge_children.get(key)
        if child is None:
            child = self._edges.labels(*self._base, kind, outcome)
            self._edge_children[key] = child
        child.value += 1.0

    def resolve(self, left, right):
        if not self.registry.enabled:
            return
        self._resolutions.value += 1.0

    def clash(self, diagnostic):
        if not self.registry.enabled:
            return
        self._clashes.value += 1.0

    def search_start(self, start, target):
        if not self.registry.enabled:
            return
        self._searches.value += 1.0

    def search_end(self, found, visits, length):
        if not self.registry.enabled:
            return
        self._search_visits.observe(visits)
        if found:
            self._search_hits.value += 1.0
            self._cycle_length.observe(length)

    def collapse(self, witness, members):
        if not self.registry.enabled:
            return
        self._collapses.value += 1.0
        eliminated = len(members) - 1
        if eliminated > 0:
            self._vars_eliminated.value += float(eliminated)

    def sweep(self, eliminated):
        if not self.registry.enabled:
            return
        self._sweeps.value += 1.0
        self._swept_vars.value += float(eliminated)

    def audit_failure(self, failure):
        if not self.registry.enabled:
            return
        check = str(getattr(failure, "check", "unknown"))
        child = self._audit_children.get(check)
        if child is None:
            child = self._audit_failures.labels(*self._base, check)
            self._audit_children[check] = child
        child.value += 1.0

    def budget_stop(self, reason, limit, value):
        if not self.registry.enabled:
            return
        child = self._budget_children.get(reason)
        if child is None:
            child = self._budget_stops.labels(*self._base, reason)
            self._budget_children[reason] = child
        child.value += 1.0

    def phase_begin(self, name):
        if not self.registry.enabled:
            return
        self._open_phases.append((name, perf_counter()))

    def phase_end(self, name):
        if not self.registry.enabled:
            return
        now = perf_counter()
        for index in range(len(self._open_phases) - 1, -1, -1):
            open_name, began = self._open_phases[index]
            if open_name == name:
                del self._open_phases[index]
                child = self._phase_children.get(name)
                if child is None:
                    child = self._phase_seconds.labels(*self._base, name)
                    self._phase_children[name] = child
                child.value += now - began
                return
        # Unmatched end (e.g. the registry was enabled mid-phase):
        # observe nothing — metrics must never take the solver down.
