"""Prometheus/OpenMetrics text exposition: rendering and validation.

:func:`render` turns a sequence of :class:`repro.metrics.instruments.
Family` objects into the Prometheus text exposition format 0.0.4
(``# HELP`` / ``# TYPE`` headers, one sample per line, histogram
children expanded into ``_bucket``/``_sum``/``_count`` series).

:func:`validate_exposition` is the self-check used by tests and the CI
``metrics-smoke`` job: it re-parses exposition text and verifies the
structural rules a real Prometheus scraper enforces — so "the endpoint
serves valid text format" is a property the repo proves, not assumes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .instruments import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    Family,
    valid_label_name,
    valid_metric_name,
)

#: Content type an HTTP endpoint should declare for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_VALID_TYPES = (COUNTER, GAUGE, HISTOGRAM, "summary", "untyped")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_block(names: Tuple[str, ...], values: Tuple[str, ...],
                 extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render(families: Iterable[Family]) -> str:
    """Render families as Prometheus text exposition (format 0.0.4)."""
    lines: List[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for values, child in family.series():
            if family.type == HISTOGRAM:
                for le, cumulative in child.cumulative():
                    block = _label_block(
                        family.labelnames, values, ("le", str(le))
                    )
                    lines.append(
                        f"{family.name}_bucket{block} {cumulative}"
                    )
                block = _label_block(
                    family.labelnames, values, ("le", "+Inf")
                )
                lines.append(f"{family.name}_bucket{block} {child.count}")
                plain = _label_block(family.labelnames, values)
                lines.append(f"{family.name}_sum{plain} {child.sum}")
                lines.append(f"{family.name}_count{plain} {child.count}")
            else:
                block = _label_block(family.labelnames, values)
                lines.append(
                    f"{family.name}{block} "
                    f"{_format_value(child.to_value())}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Validation


class ExpositionError(ValueError):
    """Exposition text violated the Prometheus text-format rules."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__(
            f"{len(errors)} exposition error(s):\n" + "\n".join(errors)
        )
        self.errors = errors


def _parse_labels(block: str, errors: List[str],
                  where: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    index = 0
    while index < len(block):
        if block[index] == ",":
            index += 1
            continue
        eq = block.find("=", index)
        if eq < 0:
            errors.append(f"{where}: malformed label block")
            return labels
        name = block[index:eq].strip()
        if not valid_label_name(name) and name != "le":
            errors.append(f"{where}: invalid label name {name!r}")
        if eq + 1 >= len(block) or block[eq + 1] != '"':
            errors.append(f"{where}: label value must be quoted")
            return labels
        index = eq + 2
        value: List[str] = []
        while index < len(block):
            char = block[index]
            if char == "\\":
                if index + 1 >= len(block):
                    errors.append(f"{where}: dangling escape")
                    return labels
                escaped = block[index + 1]
                if escaped not in ('"', "\\", "n"):
                    errors.append(
                        f"{where}: bad escape \\{escaped} in label value"
                    )
                value.append("\n" if escaped == "n" else escaped)
                index += 2
                continue
            if char == '"':
                break
            value.append(char)
            index += 1
        else:
            errors.append(f"{where}: unterminated label value")
            return labels
        labels[name] = "".join(value)
        index += 1  # past the closing quote
    return labels


def _split_sample(line: str) -> Optional[Tuple[str, str, str]]:
    """Split a sample line into (name, label_block, value_text)."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            return None
        name = line[:brace]
        block = line[brace + 1:close]
        rest = line[close + 1:].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            return None
        name, rest = parts
        block = ""
    fields = rest.split()
    if not fields or len(fields) > 2:  # optional timestamp
        return None
    return name, block, fields[0]


def _base_name(sample_name: str, histogram_names: Set[str]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            stripped = sample_name[: -len(suffix)]
            if stripped in histogram_names:
                return stripped
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Check exposition text; returns a list of errors (empty = valid).

    Enforced rules: metric/label name grammar, ``# TYPE`` declared
    before (and at most once for) each metric's samples, parseable
    sample values, histogram ``le`` buckets cumulative and capped by a
    ``+Inf`` bucket that equals ``_count``, and no samples for
    undeclared histogram components.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    helps: Set[str] = set()
    histogram_names: Set[str] = set()
    #: (series key) -> list of (le, value) for cumulativity checks
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        where = f"line {number}"
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: allowed
            kind, name = parts[1], parts[2]
            if not valid_metric_name(name):
                errors.append(f"{where}: invalid metric name {name!r}")
                continue
            if kind == "TYPE":
                declared = parts[3] if len(parts) > 3 else ""
                if declared not in _VALID_TYPES:
                    errors.append(
                        f"{where}: unknown type {declared!r} for {name}"
                    )
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = declared
                if declared == HISTOGRAM:
                    histogram_names.add(name)
            else:
                if name in helps:
                    errors.append(f"{where}: duplicate HELP for {name}")
                helps.add(name)
            continue
        split = _split_sample(line)
        if split is None:
            errors.append(f"{where}: malformed sample {line!r}")
            continue
        sample_name, block, value_text = split
        base = _base_name(sample_name, histogram_names)
        if not valid_metric_name(sample_name):
            errors.append(f"{where}: invalid metric name {sample_name!r}")
            continue
        if base not in types:
            errors.append(
                f"{where}: sample {sample_name!r} has no preceding TYPE"
            )
            continue
        labels = _parse_labels(block, errors, where)
        try:
            value = (
                math.inf if value_text == "+Inf"
                else -math.inf if value_text == "-Inf"
                else float(value_text)
            )
        except ValueError:
            errors.append(f"{where}: bad sample value {value_text!r}")
            continue
        if base in histogram_names:
            series_key = base + "|" + ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
                if k != "le"
            )
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{where}: _bucket without le label")
                    continue
                le_text = labels["le"]
                le = (
                    math.inf if le_text == "+Inf" else float(le_text)
                )
                buckets.setdefault(series_key, []).append((le, value))
            elif sample_name.endswith("_count"):
                counts[series_key] = value
    for series_key, rows in buckets.items():
        rows.sort()
        values = [value for _, value in rows]
        if values != sorted(values):
            errors.append(
                f"histogram {series_key}: bucket counts not cumulative"
            )
        if not rows or rows[-1][0] != math.inf:
            errors.append(f"histogram {series_key}: missing +Inf bucket")
        elif series_key in counts and rows[-1][1] != counts[series_key]:
            errors.append(
                f"histogram {series_key}: +Inf bucket "
                f"{rows[-1][1]:g} != _count {counts[series_key]:g}"
            )
    return errors
