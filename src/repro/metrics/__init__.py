"""Aggregated solver metrics: registry, exporters, dashboard.

Where :mod:`repro.trace` answers "what did this one run do, event by
event", ``repro.metrics`` answers "what has this *process* done so
far" — the always-on, low-overhead aggregation layer a long-running
service is monitored through:

* **Instruments** (:mod:`repro.metrics.instruments`): ``Counter``,
  ``Gauge`` and ``Histogram`` families labeled by graph form, cycle
  policy, suite and benchmark.  Histograms share bucket boundaries
  with the trace-side histograms via :mod:`repro.trace.buckets`.
* **Registry** (:mod:`repro.metrics.registry`): a process-wide
  :class:`MetricsRegistry` with Prometheus text exposition
  (:meth:`~MetricsRegistry.expose`), JSON snapshots, and periodic
  flush-to-file for batch runs.
* **Sink** (:mod:`repro.metrics.sink`): :class:`MetricsSink` adapts
  the registry onto the :class:`repro.trace.sinks.TraceSink` protocol,
  so metrics reuse the solver's existing instrumentation points and
  disabled metrics keep the one-attribute-check overhead guarantee.
* **Exporters** (:mod:`repro.metrics.exposition`,
  :mod:`repro.metrics.server`): exposition rendering + validation and
  a stdlib-only HTTP scrape endpoint
  (``python -m repro.metrics serve``).
* **Dashboard** (:mod:`repro.metrics.dashboard`): ingests
  ``benchmarks/BASELINE.json``, ``BENCH_<n>.json`` reports and metric
  snapshots into a self-contained static HTML view of the benchmark
  trajectory (``python -m repro.metrics dashboard``).

Quick use::

    from repro import solve
    from repro.metrics import MetricsRegistry, MetricsSink

    registry = MetricsRegistry()
    options = options.replace(
        sink=MetricsSink.for_options(options, registry, suite="adhoc")
    )
    solve(system, options)
    print(registry.expose())

See ``docs/METRICS.md`` for the instrument catalog and workflows.
"""

from __future__ import annotations

from .exposition import (
    CONTENT_TYPE,
    ExpositionError,
    render,
    validate_exposition,
)
from .instruments import Counter, Family, Gauge, Histogram
from .registry import (
    SNAPSHOT_SCHEMA_VERSION,
    MetricsRegistry,
    PeriodicFlusher,
    default_registry,
    reset_default_registry,
)
from .sink import BASE_LABELS, MetricsSink
from .server import serve, serve_in_thread

__all__ = [
    "BASE_LABELS",
    "CONTENT_TYPE",
    "Counter",
    "ExpositionError",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "PeriodicFlusher",
    "SNAPSHOT_SCHEMA_VERSION",
    "default_registry",
    "render",
    "reset_default_registry",
    "serve",
    "serve_in_thread",
    "validate_exposition",
]
