"""Command-line entry point: ``python -m repro.metrics``.

Typical uses::

    # Serve a scrape endpoint over one or more metric snapshots (as
    # written by `python -m repro.bench --metrics DIR` or a
    # PeriodicFlusher); loading several snapshots aggregates them.
    python -m repro.metrics serve --snapshot metrics-out/metrics.json

    # Validate a Prometheus text dump (CI scrapes the endpoint into a
    # file, then format-checks it with this).
    python -m repro.metrics check scraped.prom

    # Build the benchmark-trajectory dashboard from the committed
    # baseline plus fresh BENCH reports and metric snapshots.
    python -m repro.metrics dashboard \
        --baseline benchmarks/BASELINE.json \
        --reports BENCH_1.json BENCH_2.json \
        --snapshots metrics-out/metrics.json --out dashboard.html
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .dashboard import build_dashboard
from .exposition import validate_exposition
from .registry import MetricsRegistry, default_registry
from .server import serve


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.metrics",
        description="aggregated solver metrics: exposition endpoint, "
                    "format checker, and benchmark dashboard",
    )
    sub = parser.add_subparsers(dest="command")

    serve_cmd = sub.add_parser(
        "serve", help="expose a Prometheus /metrics endpoint",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=9464,
        help="bind port (default 9464; 0 picks a free port)",
    )
    serve_cmd.add_argument(
        "--snapshot", action="append", default=[], metavar="FILE",
        help="load this metrics snapshot JSON into the served "
             "registry (repeatable; snapshots aggregate)",
    )

    check = sub.add_parser(
        "check", help="validate Prometheus text exposition format",
    )
    check.add_argument(
        "path", help="file of exposition text ('-' for stdin)",
    )

    dashboard = sub.add_parser(
        "dashboard", help="build the benchmark-trajectory dashboard",
    )
    dashboard.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="committed baseline report "
             "(e.g. benchmarks/BASELINE.json)",
    )
    dashboard.add_argument(
        "--reports", nargs="*", metavar="PATH", default=[],
        help="BENCH_<n>.json reports to include, oldest first "
             "(schema-v2 timestamps reorder them automatically)",
    )
    dashboard.add_argument(
        "--snapshots", nargs="*", metavar="PATH", default=[],
        help="repro.metrics snapshot JSONs to summarize",
    )
    dashboard.add_argument(
        "--out", required=True, metavar="PATH",
        help="output HTML file",
    )
    dashboard.add_argument(
        "--title", default="repro benchmark trajectory",
        help="dashboard title",
    )
    dashboard.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit nonzero if any work-count regression is flagged",
    )
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.snapshot:
        import json

        registry = MetricsRegistry()
        for path in args.snapshot:
            with open(path, "r", encoding="utf-8") as handle:
                registry.load_snapshot(json.load(handle))
        print(f"loaded {len(args.snapshot)} snapshot(s)")
    else:
        registry = default_registry()
    server = serve(registry, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"serving metrics on http://{host}:{port}/metrics",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    errors = validate_exposition(text)
    if errors:
        for error in errors:
            print(f"INVALID {error}", file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"ok: valid exposition format ({samples} samples)")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    if not args.baseline and not args.reports:
        print("error: need --baseline and/or --reports",
              file=sys.stderr)
        return 2
    data = build_dashboard(
        args.baseline,
        args.reports,
        args.out,
        snapshot_paths=args.snapshots,
        title=args.title,
    )
    print(f"wrote {args.out} ({len(data.points)} report(s), "
          f"{len(data.flags)} regression flag(s))")
    for flag in data.flags:
        print(f"REGRESSION {flag}")
    for note in data.notes:
        print(f"note: {note}")
    if args.fail_on_regression and data.flags:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
