"""The benchmark-trajectory dashboard.

Ingests the committed ``benchmarks/BASELINE.json`` plus any number of
``BENCH_<n>.json`` reports (and, optionally, ``repro.metrics`` snapshot
files), orders them into a trajectory (schema-v2 reports carry
``timestamp``/``git_sha`` stamps; v1 reports fall back to file order),
computes per-experiment trends — work counts, wall time, partial-search
visits per insertion, detection rate against the paper's Theorem 5.2 /
Figure 11 expectations — flags work-count regressions versus the
baseline, and renders everything as **one self-contained static HTML
file**: inline CSS, inline SVG charts, native ``<title>`` tooltips, no
external assets and no JavaScript, so the file is committable as a CI
artifact and renders identically forever.

CLI front end: ``python -m repro.metrics dashboard``.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.baseline import load_report
from ..bench.compare import IncomparableReportsError, compare_reports
from ..bench.harness import BenchReport
from ..experiments.config import EXPERIMENT_LABELS

#: Paper expectations the trend view annotates (Theorem 5.2, Fig. 11).
EXPECTED_MEAN_VISITS = 2.2
EXPECTED_DETECTION_RATE = {"SF-Online": 0.40, "IF-Online": 0.80}

#: Fixed experiment -> categorical slot assignment (color follows the
#: entity: the mapping never changes with which experiments appear).
_SERIES_SLOT = {
    label: slot + 1 for slot, label in enumerate(EXPERIMENT_LABELS)
}


@dataclass
class TrajectoryPoint:
    """One report in the ordered trajectory."""

    label: str
    source: str
    report: BenchReport
    is_baseline: bool = False

    def sort_key(self) -> Tuple[int, str, str]:
        # Baseline anchors the trajectory; stamped reports order by
        # timestamp (ISO-8601 sorts lexicographically); unstamped v1
        # reports keep their given (file) order via the source name.
        if self.is_baseline:
            return (0, "", "")
        timestamp = getattr(self.report, "timestamp", "") or ""
        return (1, timestamp, self.source)


@dataclass
class ExperimentTrend:
    """Aggregate series for one experiment across the trajectory."""

    experiment: str
    work: List[int] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)
    visits_per_insertion: List[float] = field(default_factory=list)
    detection_rate: List[float] = field(default_factory=list)


@dataclass
class DashboardData:
    """Everything the renderer needs, precomputed."""

    points: List[TrajectoryPoint]
    trends: Dict[str, ExperimentTrend]
    flags: List[str]
    snapshot_rows: List[Tuple[str, str, float]]
    notes: List[str]


def load_trajectory(baseline_path: Optional[str],
                    report_paths: Sequence[str]) -> List[TrajectoryPoint]:
    """Load and order the baseline + reports into a trajectory."""
    points: List[TrajectoryPoint] = []
    if baseline_path:
        points.append(TrajectoryPoint(
            label="baseline", source=baseline_path,
            report=load_report(baseline_path), is_baseline=True,
        ))
    for index, path in enumerate(report_paths, start=1):
        report = load_report(path)
        sha = getattr(report, "git_sha", "") or ""
        label = sha[:9] if sha not in ("", "unknown") else f"run {index}"
        points.append(TrajectoryPoint(
            label=label, source=path, report=report,
        ))
    points.sort(key=TrajectoryPoint.sort_key)
    if not points:
        raise ValueError("dashboard needs a baseline or at least one "
                         "BENCH report")
    return points


def _aggregate(report: BenchReport, experiment: str) -> Optional[dict]:
    """Sum one experiment's counters/time across a report's benchmarks."""
    records = [
        record for record in report.records
        if record.experiment == experiment
    ]
    if not records:
        return None
    totals: Dict[str, float] = {}
    for record in records:
        for key, value in record.counters.items():
            totals[key] = totals.get(key, 0) + value
        totals["seconds"] = (
            totals.get("seconds", 0.0) + record.median_seconds
        )
    return totals


def compute_trends(
    points: Sequence[TrajectoryPoint],
) -> Dict[str, ExperimentTrend]:
    """Per-experiment aggregate series across the trajectory.

    ``visits_per_insertion`` and ``detection_rate`` are computed from
    summed counters (the ratio of sums, not the mean of ratios), which
    is the amortized quantity the paper's theorems are stated in.
    """
    labels: List[str] = []
    for point in points:
        for label in point.report.experiments:
            if label not in labels:
                labels.append(label)
    trends: Dict[str, ExperimentTrend] = {}
    for label in labels:
        trend = ExperimentTrend(experiment=label)
        for point in points:
            totals = _aggregate(point.report, label)
            if totals is None:
                trend.work.append(0)
                trend.seconds.append(0.0)
                trend.visits_per_insertion.append(0.0)
                trend.detection_rate.append(0.0)
                continue
            work = int(totals.get("work", 0))
            searches = totals.get("cycle_searches", 0)
            visits = totals.get("cycle_search_visits", 0)
            found = totals.get("cycles_found", 0)
            trend.work.append(work)
            trend.seconds.append(totals.get("seconds", 0.0))
            trend.visits_per_insertion.append(
                visits / work if work else 0.0
            )
            trend.detection_rate.append(
                found / searches if searches else 0.0
            )
        trends[label] = trend
    return trends


def flag_regressions(points: Sequence[TrajectoryPoint]) -> Tuple[
        List[str], List[str]]:
    """Work-count regressions of the latest report vs the baseline.

    Returns ``(flags, notes)`` — notes carry non-fatal conditions like
    an incomparable baseline (different suite/seed), which the
    dashboard reports instead of silently skipping the check.
    """
    flags: List[str] = []
    notes: List[str] = []
    baseline = next(
        (point for point in points if point.is_baseline), None
    )
    latest = points[-1]
    if baseline is None:
        notes.append("no baseline given: regression check skipped")
        return flags, notes
    if latest is baseline:
        notes.append("only the baseline loaded: nothing to diff")
        return flags, notes
    try:
        comparison = compare_reports(
            baseline.report, latest.report, check_time=False,
        )
    except IncomparableReportsError as error:
        notes.append(f"baseline not comparable: {error}")
        return flags, notes
    for key in comparison.missing:
        flags.append(f"{key}: present in baseline, missing from "
                     f"{latest.label}")
    for finding in comparison.regressions:
        flags.append(str(finding))
    return flags, notes


#: Snapshot counters surfaced in the dashboard's metrics section.
_SNAPSHOT_FAMILIES = (
    "repro_solver_edges_total",
    "repro_solver_collapses_total",
    "repro_solver_vars_eliminated_total",
    "repro_solver_budget_stops_total",
    "repro_solver_audit_failures_total",
    "repro_fuzz_disagreements_total",
)


def summarize_snapshots(
    snapshot_paths: Sequence[str],
) -> List[Tuple[str, str, float]]:
    """Fold metric snapshots into ``(metric, labels, value)`` rows."""
    totals: Dict[Tuple[str, str], float] = {}
    for path in snapshot_paths:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for family in payload.get("families", ()):
            name = family.get("name", "")
            if name not in _SNAPSHOT_FAMILIES:
                continue
            for row in family.get("series", ()):
                if "value" not in row:
                    continue
                labels = ",".join(
                    f"{key}={value}"
                    for key, value in sorted(row["labels"].items())
                    if value
                )
                key = (name, labels)
                totals[key] = totals.get(key, 0.0) + float(row["value"])
    return [
        (name, labels, value)
        for (name, labels), value in sorted(totals.items())
        if value
    ]


def build_dashboard_data(
    baseline_path: Optional[str],
    report_paths: Sequence[str],
    snapshot_paths: Sequence[str] = (),
) -> DashboardData:
    points = load_trajectory(baseline_path, report_paths)
    trends = compute_trends(points)
    flags, notes = flag_regressions(points)
    snapshot_rows = summarize_snapshots(snapshot_paths)
    return DashboardData(
        points=points, trends=trends, flags=flags,
        snapshot_rows=snapshot_rows, notes=notes,
    )


# ----------------------------------------------------------------------
# Rendering

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --flag: #d03b3b; --ok: #006300;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --flag: #e66767; --ok: #0ca30c;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--ink-2); font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .v { font-size: 24px; }
.tile .k { color: var(--ink-2); font-size: 12px; margin-top: 2px; }
.tile .d { font-size: 12px; margin-top: 2px; color: var(--muted); }
.charts { display: flex; flex-wrap: wrap; gap: 16px; }
.chart {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px 8px;
}
.chart h3 { font-size: 13px; margin: 0 0 2px; }
.chart .u { color: var(--muted); font-size: 11px; margin: 0 0 6px; }
.legend { display: flex; flex-wrap: wrap; gap: 10px;
  font-size: 11px; color: var(--ink-2); margin-top: 4px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 4px; vertical-align: -1px; }
table { border-collapse: collapse; font-size: 12px;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; }
th, td { padding: 5px 10px; text-align: right;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.flag { color: var(--flag); }
.okay { color: var(--ok); }
ul.flags { font-size: 13px; }
.note { color: var(--muted); font-size: 12px; }
svg text { font-family: inherit; }
"""


def _fmt(value: float) -> str:
    """Compact human number (axis ticks and tiles)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if value >= 10_000:
        return f"{value / 1_000:.3g}k"
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:.3g}"


def _nice_ceiling(top: float) -> float:
    """A round upper bound >= top for the y axis."""
    if top <= 0:
        return 1.0
    magnitude = 10 ** len(str(int(top))) / 10
    for factor in (1, 2, 2.5, 5, 10):
        if top <= factor * magnitude:
            return factor * magnitude
    return top


def _line_chart(
    title: str,
    unit: str,
    series: Sequence[Tuple[str, int, Sequence[float]]],
    x_labels: Sequence[str],
    ref_lines: Sequence[Tuple[str, float]] = (),
    width: int = 560,
    height: int = 240,
) -> str:
    """One inline-SVG line chart with legend and <title> tooltips.

    ``series`` is ``(name, categorical_slot, values)``; the y axis
    always starts at zero (every plotted quantity is a count, a time,
    or a rate), gridlines are hairlines, marks are 2px lines with 3px
    point markers carrying native tooltips.
    """
    pad_l, pad_r, pad_t, pad_b = 52, 12, 8, 26
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    top = max(
        [max(values) if values else 0.0 for _, _, values in series]
        + [ref for _, ref in ref_lines] + [0.0]
    )
    top = _nice_ceiling(top * 1.02)
    steps = max(len(x_labels) - 1, 1)

    def x_at(index: int) -> float:
        return pad_l + plot_w * (index / steps if steps else 0.5)

    def y_at(value: float) -> float:
        return pad_t + plot_h * (1 - value / top)

    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="{html.escape(title)}">'
    ]
    # gridlines + y ticks (quarters of the rounded top)
    for quarter in range(5):
        value = top * quarter / 4
        y = y_at(value)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end" font-size="10" '
            f'fill="var(--muted)">{_fmt(value)}</text>'
        )
    # baseline axis
    parts.append(
        f'<line x1="{pad_l}" y1="{y_at(0):.1f}" x2="{width - pad_r}" '
        f'y2="{y_at(0):.1f}" stroke="var(--baseline)" '
        f'stroke-width="1"/>'
    )
    # x labels
    for index, label in enumerate(x_labels):
        anchor = ("start" if index == 0
                  else "end" if index == len(x_labels) - 1
                  else "middle")
        parts.append(
            f'<text x="{x_at(index):.1f}" y="{height - 8}" '
            f'text-anchor="{anchor}" font-size="10" '
            f'fill="var(--muted)">{html.escape(label)}</text>'
        )
    # reference lines (paper expectations)
    for name, value in ref_lines:
        if value > top:
            continue
        y = y_at(value)
        parts.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
            f'y2="{y:.1f}" stroke="var(--muted)" stroke-width="1" '
            f'stroke-dasharray="4 3"/>'
        )
        parts.append(
            f'<text x="{width - pad_r}" y="{y - 4:.1f}" '
            f'text-anchor="end" font-size="10" fill="var(--muted)">'
            f'{html.escape(name)}</text>'
        )
    # series: 2px lines, 3px markers with native tooltips
    for name, slot, values in series:
        color = f"var(--series-{slot})"
        points = " ".join(
            f"{x_at(index):.1f},{y_at(value):.1f}"
            for index, value in enumerate(values)
        )
        if len(values) > 1:
            parts.append(
                f'<polyline points="{points}" fill="none" '
                f'stroke="{color}" stroke-width="2" '
                f'stroke-linejoin="round" stroke-linecap="round"/>'
            )
        for index, value in enumerate(values):
            tip = (f"{name} — {x_labels[index]}: "
                   f"{_fmt(value)}{(' ' + unit) if unit else ''}")
            parts.append(
                f'<circle cx="{x_at(index):.1f}" '
                f'cy="{y_at(value):.1f}" r="3" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f'<title>{html.escape(tip)}</title></circle>'
            )
    parts.append("</svg>")
    legend = "".join(
        f'<span><span class="sw" style="background:'
        f'var(--series-{slot})"></span>{html.escape(name)}</span>'
        for name, slot, _ in series
    )
    unit_html = (f'<p class="u">{html.escape(unit)}</p>' if unit else "")
    return (
        f'<div class="chart"><h3>{html.escape(title)}</h3>{unit_html}'
        f'{"".join(parts)}'
        f'<div class="legend">{legend}</div></div>'
    )


def _stat_tiles(data: DashboardData) -> str:
    latest = data.points[-1]
    tiles: List[str] = []

    def tile(value: str, key: str, detail: str = "") -> None:
        detail_html = f'<div class="d">{html.escape(detail)}</div>' \
            if detail else ""
        tiles.append(
            f'<div class="tile"><div class="v">{html.escape(value)}'
            f'</div><div class="k">{html.escape(key)}</div>'
            f'{detail_html}</div>'
        )

    total_work = sum(record.work for record in latest.report.records)
    total_seconds = sum(
        record.median_seconds for record in latest.report.records
    )
    tile(_fmt(total_work), "total work (latest)",
         f"suite {latest.report.suite}, all configs")
    tile(f"{total_seconds:.2f}s", "total median wall time (latest)")
    for label in ("SF-Online", "IF-Online"):
        trend = data.trends.get(label)
        if trend is None or not trend.detection_rate:
            continue
        rate = trend.detection_rate[-1]
        expected = EXPECTED_DETECTION_RATE[label]
        tile(f"{rate * 100:.0f}%", f"{label} detection rate",
             f"paper (Fig. 11): ~{expected * 100:.0f}%")
    flag_count = len(data.flags)
    tile(str(flag_count), "work regressions vs baseline",
         "latest report diffed against the committed baseline")
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _flags_section(data: DashboardData) -> str:
    parts: List[str] = ["<h2>Regression flags</h2>"]
    if data.flags:
        items = "".join(
            f'<li class="flag">▲ {html.escape(flag)}</li>'
            for flag in data.flags
        )
        parts.append(f'<ul class="flags">{items}</ul>')
    else:
        parts.append(
            '<p class="okay">✓ no work-count regressions against the '
            "baseline</p>"
        )
    for note in data.notes:
        parts.append(f'<p class="note">{html.escape(note)}</p>')
    return "".join(parts)


def _charts_section(data: DashboardData) -> str:
    x_labels = [point.label for point in data.points]
    ordered = [
        label for label in _SERIES_SLOT if label in data.trends
    ] + [
        label for label in data.trends if label not in _SERIES_SLOT
    ]

    def slot_of(label: str) -> int:
        return _SERIES_SLOT.get(label, 8)

    work_series = [
        (label, slot_of(label), data.trends[label].work)
        for label in ordered
    ]
    time_series = [
        (label, slot_of(label), data.trends[label].seconds)
        for label in ordered
    ]
    online = [
        label for label in ("SF-Online", "IF-Online")
        if label in data.trends
    ]
    visit_series = [
        (label, slot_of(label),
         data.trends[label].visits_per_insertion)
        for label in online
    ]
    rate_series = [
        (label, slot_of(label), data.trends[label].detection_rate)
        for label in online
    ]
    charts = [
        _line_chart(
            "Work per experiment", "attempted edge additions",
            work_series, x_labels,
        ),
        _line_chart(
            "Median wall time per experiment", "seconds",
            time_series, x_labels,
        ),
    ]
    if visit_series:
        charts.append(_line_chart(
            "Partial-search visits per insertion",
            "visits / unit of Work", visit_series, x_labels,
            ref_lines=[
                (f"Thm 5.2 per-search mean ~{EXPECTED_MEAN_VISITS}",
                 EXPECTED_MEAN_VISITS),
            ],
        ))
    if rate_series:
        charts.append(_line_chart(
            "Online cycle detection rate", "cycles found / searches",
            rate_series, x_labels,
            ref_lines=[
                (f"paper {label} ~{value * 100:.0f}%", value)
                for label, value in EXPECTED_DETECTION_RATE.items()
                if label in online
            ],
        ))
    return (
        "<h2>Benchmark trajectory</h2>"
        f'<div class="charts">{"".join(charts)}</div>'
    )


def _table_section(data: DashboardData) -> str:
    """The table view: every plotted number, exactly."""
    header = "".join(
        f"<th>{html.escape(point.label)}</th>" for point in data.points
    )
    rows: List[str] = []
    for label, trend in sorted(data.trends.items()):
        work_cells = "".join(f"<td>{work:,}</td>" for work in trend.work)
        time_cells = "".join(
            f"<td>{seconds:.3f}</td>" for seconds in trend.seconds
        )
        rows.append(
            f"<tr><td>{html.escape(label)} work</td>{work_cells}</tr>"
        )
        rows.append(
            f"<tr><td>{html.escape(label)} seconds</td>{time_cells}</tr>"
        )
    return (
        "<h2>Data</h2><table><thead><tr><th>series</th>"
        f"{header}</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _snapshots_section(data: DashboardData) -> str:
    if not data.snapshot_rows:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td>"
        f"<td>{html.escape(labels) or '—'}</td>"
        f"<td>{_fmt(value)}</td></tr>"
        for name, labels, value in data.snapshot_rows
    )
    return (
        "<h2>Run metrics (from snapshots)</h2>"
        "<table><thead><tr><th>metric</th><th>labels</th>"
        f"<th>value</th></tr></thead><tbody>{rows}</tbody></table>"
    )


def render_dashboard(data: DashboardData,
                     title: str = "repro benchmark trajectory") -> str:
    """The complete self-contained HTML document."""
    latest = data.points[-1]
    stamp_bits = [f"{len(data.points)} report(s)"]
    timestamp = getattr(latest.report, "timestamp", "") or ""
    if timestamp:
        stamp_bits.append(f"latest recorded {timestamp}")
    sha = getattr(latest.report, "git_sha", "") or ""
    if sha and sha != "unknown":
        stamp_bits.append(f"git {sha[:12]}")
    subtitle = (
        f"suite {latest.report.suite} · seed {latest.report.seed} · "
        + " · ".join(stamp_bits)
    )
    body = "".join([
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="sub">{html.escape(subtitle)}</p>',
        _stat_tiles(data),
        _flags_section(data),
        _charts_section(data),
        _table_section(data),
        _snapshots_section(data),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body class="viz-root">{body}</body></html>\n'
    )


def build_dashboard(
    baseline_path: Optional[str],
    report_paths: Sequence[str],
    out_path: str,
    snapshot_paths: Sequence[str] = (),
    title: str = "repro benchmark trajectory",
) -> DashboardData:
    """Load, compute, render, and write; returns the computed data."""
    data = build_dashboard_data(
        baseline_path, report_paths, snapshot_paths,
    )
    document = render_dashboard(data, title=title)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return data
