"""Experiment runner: one place that solves benchmarks under configs.

``SuiteResults`` memoizes every (benchmark, experiment) run and the
per-benchmark static statistics, so the table and figure generators can
share work.  Timing follows the paper's conventions: reported time is
the solver's closure time plus (for IF) the least-solution computation;
oracle runs charge only phase 2 (perfect *zero-cost* elimination).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..bench.measure import measure_system
from ..constraints.errors import ConstraintDiagnostic
from ..constraints.resolution import (
    SOURCE_VAR,
    VAR_SINK,
    VAR_VAR,
    decompose,
)
from ..graph.scc import SccSummary, summarize_sccs
from ..solver import Solution, solve
from ..workloads import Benchmark, suite
from .config import EXPERIMENT_LABELS, options_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace.sinks import TraceSink


@dataclass(frozen=True)
class RunRecord:
    """Measurements from solving one benchmark under one experiment."""

    benchmark: str
    experiment: str
    work: int
    final_edges: int
    closure_seconds: float
    least_solution_seconds: float
    vars_eliminated: int
    cycles_found: int
    mean_search_visits: float
    clashes: int

    @property
    def total_seconds(self) -> float:
        return self.closure_seconds + self.least_solution_seconds


@dataclass(frozen=True)
class BenchmarkStats:
    """The static, configuration-independent data of Table 1."""

    name: str
    ast_nodes: int
    lines: int
    set_vars: int
    initial_nodes: int
    initial_edges: int
    initial_scc_vars: int
    initial_scc_max: int
    final_scc_vars: int
    final_scc_max: int


def initial_graph_statistics(benchmark: Benchmark
                             ) -> Tuple[int, int, SccSummary]:
    """Nodes, edges, and SCC summary of the *initial* constraint graph.

    The initial graph is the system's constraints decomposed to atomic
    form, before any closure.
    """
    system = benchmark.program.system
    atoms: List[tuple] = []
    diagnostics: List[ConstraintDiagnostic] = []
    for left, right in system.constraints:
        decompose(left, right, atoms, diagnostics)
    var_var = set()
    source_terms = set()
    sink_terms = set()
    edge_count = 0
    for tag, a, b in atoms:
        edge_count += 1
        if tag == VAR_VAR:
            var_var.add((a.index, b.index))
        elif tag == SOURCE_VAR:
            source_terms.add(a)
        elif tag == VAR_SINK:
            sink_terms.add(b)
    nodes = system.num_vars + len(source_terms) + len(sink_terms)
    scc = summarize_sccs(range(system.num_vars), var_var)
    return nodes, edge_count, scc


class SuiteResults:
    """Runs and caches all experiments over one benchmark suite."""

    def __init__(self, benchmarks: Iterable[Benchmark], seed: int = 0,
                 repeats: int = 1,
                 sink_factory: Optional[
                     Callable[[str, str], "TraceSink"]] = None,
                 jobs: int = 1) -> None:
        if jobs != 1 and sink_factory is not None:
            raise ValueError(
                "sink_factory attaches live in-process sinks and cannot "
                "observe runs executed in worker processes; use jobs=1 "
                "when tracing"
            )
        self.benchmarks: List[Benchmark] = list(benchmarks)
        self.seed = seed
        #: best-of-N timing, like the paper's best-of-three CPU times
        self.repeats = max(1, repeats)
        #: ``run_all`` shards uncached (benchmark, experiment) pairs
        #: across this many worker processes (0 = one per core, 1 =
        #: serial).  Records are identical to serial ones except for
        #: the wall-clock fields; ``solution()`` always re-solves
        #: locally (graphs are not worth shipping over a pipe).
        self.jobs = jobs
        #: optional observability hook: called as ``(benchmark,
        #: experiment) -> TraceSink`` once per executed run, and the
        #: returned sink is attached to that run's solver options.  With
        #: ``repeats > 1`` the same sink observes every repeat, so
        #: telemetry counts scale by ``repeats`` (means are unaffected).
        #: Tracing never changes the deterministic counters.
        self.sink_factory = sink_factory
        self._records: Dict[Tuple[str, str], RunRecord] = {}
        # Solutions hold whole constraint graphs; keeping all of them
        # alive would distort timing through garbage-collector pressure
        # on large suites, so only the most recent few are retained.
        self._solutions: "OrderedDict[Tuple[str, str], Solution]" = (
            OrderedDict()
        )
        self._solution_cache_size = 8
        self._stats: Dict[str, BenchmarkStats] = {}

    @classmethod
    def for_suite(cls, which: str = "medium", seed: int = 0,
                  repeats: int = 1,
                  sink_factory: Optional[
                      Callable[[str, str], "TraceSink"]] = None,
                  jobs: int = 1) -> "SuiteResults":
        return cls(suite(which), seed=seed, repeats=repeats,
                   sink_factory=sink_factory, jobs=jobs)

    # ------------------------------------------------------------------
    def benchmark(self, name: str) -> Benchmark:
        for bench in self.benchmarks:
            if bench.name == name:
                return bench
        raise KeyError(name)

    def run(self, benchmark_name: str, experiment: str) -> RunRecord:
        """Solve (cached) one benchmark under one Table 4 experiment."""
        key = (benchmark_name, experiment)
        record = self._records.get(key)
        if record is None:
            record = self._execute(benchmark_name, experiment)
            self._records[key] = record
        return record

    def solution(self, benchmark_name: str, experiment: str) -> Solution:
        key = (benchmark_name, experiment)
        cached = self._solutions.get(key)
        if cached is not None:
            self._solutions.move_to_end(key)
            return cached
        self._records.pop(key, None)  # force a re-run to get the object
        self.run(benchmark_name, experiment)
        return self._solutions[key]

    def _execute(self, benchmark_name: str, experiment: str) -> RunRecord:
        bench = self.benchmark(benchmark_name)
        system = bench.program.system
        # One measurement path for tables/figures and the regression
        # harness alike (see repro.bench.measure); best-of-N timing,
        # like the paper's best-of-three CPU times.
        options = options_for(experiment, seed=self.seed)
        if self.sink_factory is not None:
            options = options.replace(
                sink=self.sink_factory(benchmark_name, experiment)
            )
        measured = measure_system(system, options, repeats=self.repeats)
        best = measured.solution
        self._solutions[(benchmark_name, experiment)] = best
        self._solutions.move_to_end((benchmark_name, experiment))
        while len(self._solutions) > self._solution_cache_size:
            self._solutions.popitem(last=False)
        stats = best.stats
        return RunRecord(
            benchmark=benchmark_name,
            experiment=experiment,
            work=stats.work,
            final_edges=stats.final_edges,
            closure_seconds=stats.closure_seconds,
            least_solution_seconds=stats.least_solution_seconds,
            vars_eliminated=stats.vars_eliminated,
            cycles_found=stats.cycles_found,
            mean_search_visits=stats.mean_search_visits,
            clashes=stats.clashes,
        )

    def run_all(self, experiments: Iterable[str] = EXPERIMENT_LABELS
                ) -> List[RunRecord]:
        experiments = list(experiments)
        if self.jobs != 1:
            self._run_all_parallel(experiments)
        return [
            self.run(bench.name, label)
            for bench in self.benchmarks
            for label in experiments
        ]

    def _run_all_parallel(self, experiments: List[str]) -> None:
        """Fill the record cache for every uncached pair via the pool.

        Workers rebuild benchmarks by name from the suite registry
        (:func:`repro.workloads.benchmark`), so parallel runs require
        suite benchmarks; ad-hoc :class:`Benchmark` objects fall back
        to the serial path in :meth:`run`.
        """
        from ..parallel.pool import TaskSpec, require_ok, run_tasks
        from ..parallel.tasks import suite_task
        from ..workloads.suite import FULL_SUITE

        known = {config.name for config in FULL_SUITE}
        pending = [
            (bench.name, label)
            for bench in self.benchmarks
            for label in experiments
            if (bench.name, label) not in self._records
            and bench.name in known
        ]
        if not pending:
            return
        tasks = [
            TaskSpec(
                key=f"{name}/{label}",
                payload={
                    "benchmark": name,
                    "experiment": label,
                    "seed": self.seed,
                    "repeats": self.repeats,
                },
            )
            for name, label in pending
        ]
        results = require_ok(run_tasks(suite_task, tasks, jobs=self.jobs))
        for (name, label), result in zip(pending, results):
            self._records[(name, label)] = RunRecord(**result.value)

    # ------------------------------------------------------------------
    def statistics(self, benchmark_name: str) -> BenchmarkStats:
        """Table 1 data for one benchmark (cached)."""
        stats = self._stats.get(benchmark_name)
        if stats is not None:
            return stats
        bench = self.benchmark(benchmark_name)
        nodes, edges, initial_scc = initial_graph_statistics(bench)
        # Final-graph SCCs come from a plain run with recorded edges.
        plain = solve(
            bench.program.system,
            options_for("SF-Plain", seed=self.seed, record_var_edges=True),
        )
        final_scc = plain.final_scc_summary()
        stats = BenchmarkStats(
            name=bench.name,
            ast_nodes=bench.ast_nodes,
            lines=bench.lines_of_code,
            set_vars=bench.program.system.num_vars,
            initial_nodes=nodes,
            initial_edges=edges,
            initial_scc_vars=initial_scc.vars_in_cycles,
            initial_scc_max=initial_scc.max_scc_size,
            final_scc_vars=final_scc.vars_in_cycles,
            final_scc_max=final_scc.max_scc_size,
        )
        self._stats[benchmark_name] = stats
        return stats

    def all_statistics(self) -> List[BenchmarkStats]:
        return [self.statistics(bench.name) for bench in self.benchmarks]
