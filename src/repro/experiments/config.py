"""The six experiment configurations (paper Table 4)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..solver import CyclePolicy, GraphForm, SolverOptions

#: Table 4: experiment label -> (graph form, cycle policy, description).
TABLE4: "OrderedDict[str, tuple]" = OrderedDict(
    (
        ("SF-Plain", (GraphForm.STANDARD, CyclePolicy.NONE,
                      "Standard form, no cycle elimination")),
        ("IF-Plain", (GraphForm.INDUCTIVE, CyclePolicy.NONE,
                      "Inductive form, no cycle elimination")),
        ("SF-Oracle", (GraphForm.STANDARD, CyclePolicy.ORACLE,
                       "Standard form, with full (oracle) cycle "
                       "elimination")),
        ("IF-Oracle", (GraphForm.INDUCTIVE, CyclePolicy.ORACLE,
                       "Inductive form, with full (oracle) cycle "
                       "elimination")),
        ("SF-Online", (GraphForm.STANDARD, CyclePolicy.ONLINE,
                       "Standard form, using online cycle elimination")),
        ("IF-Online", (GraphForm.INDUCTIVE, CyclePolicy.ONLINE,
                       "Inductive form, with online cycle elimination")),
    )
)

#: Experiment labels in Table 4 order.
EXPERIMENT_LABELS: List[str] = list(TABLE4.keys())


def options_for(label: str, seed: int = 0, **overrides) -> SolverOptions:
    """Build solver options for one Table 4 experiment label."""
    try:
        form, policy, _ = TABLE4[label]
    except KeyError:
        raise KeyError(
            f"unknown experiment {label!r}; choose from {EXPERIMENT_LABELS}"
        ) from None
    return SolverOptions(form=form, cycles=policy, seed=seed, **overrides)


def describe(label: str) -> str:
    return TABLE4[label][2]
