"""Reproduction of the paper's figures (7-11) as data series.

Every ``figureN`` function returns ``(name, [(x, y), ...])`` series that
a plotting front-end could draw directly; ``render_figureN`` prints the
same data as an aligned table (the benchmark harness asserts on the
*shape*: who wins, by what factor, where crossovers fall).

X axes follow the paper: program size in AST nodes for Figures 7 and
10, absolute SF-Plain execution time for Figure 9; Figures 8 and 11 are
per-benchmark.  Work-based variants are provided alongside times since
work is deterministic (machine-independent), matching how the paper
argues its claims.
"""

from __future__ import annotations

from typing import List, Tuple

from .report import format_series, format_table
from .runner import SuiteResults

Series = Tuple[str, List[Tuple[float, float]]]


def _sorted_benchmarks(results: SuiteResults):
    return sorted(results.benchmarks, key=lambda bench: bench.ast_nodes)


# ----------------------------------------------------------------------
# Figure 7: analysis time without cycle elimination vs program size
# ----------------------------------------------------------------------
def figure7(results: SuiteResults) -> List[Series]:
    sf: List[Tuple[float, float]] = []
    if_: List[Tuple[float, float]] = []
    for bench in _sorted_benchmarks(results):
        x = bench.ast_nodes
        sf.append((x, results.run(bench.name, "SF-Plain").total_seconds))
        if_.append((x, results.run(bench.name, "IF-Plain").total_seconds))
    return [("SF-Plain (s)", sf), ("IF-Plain (s)", if_)]


def render_figure7(results: SuiteResults) -> str:
    return format_series(
        "Figure 7: analysis times without cycle elimination",
        "AST nodes", figure7(results),
    )


# ----------------------------------------------------------------------
# Figure 8: online and oracle analysis times vs program size
# ----------------------------------------------------------------------
FIGURE8_EXPERIMENTS = ("IF-Oracle", "SF-Oracle", "IF-Online", "SF-Online")


def figure8(results: SuiteResults) -> List[Series]:
    series = {label: [] for label in FIGURE8_EXPERIMENTS}
    for bench in _sorted_benchmarks(results):
        x = bench.ast_nodes
        for label in FIGURE8_EXPERIMENTS:
            series[label].append(
                (x, results.run(bench.name, label).total_seconds)
            )
    return [(f"{label} (s)", series[label]) for label in FIGURE8_EXPERIMENTS]


def render_figure8(results: SuiteResults) -> str:
    return format_series(
        "Figure 8: analysis times with online and oracle cycle "
        "elimination",
        "AST nodes", figure8(results),
    )


# ----------------------------------------------------------------------
# Figure 9: speedups over the standard implementation
# ----------------------------------------------------------------------
def figure9(results: SuiteResults) -> List[Series]:
    """Speedups vs SF-Plain, plotted against SF-Plain absolute time."""
    total: List[Tuple[float, float]] = []
    online_only: List[Tuple[float, float]] = []
    points = []
    for bench in results.benchmarks:
        base = results.run(bench.name, "SF-Plain").total_seconds
        points.append((base, bench.name))
    points.sort()
    for base, name in points:
        if_online = results.run(name, "IF-Online").total_seconds
        sf_online = results.run(name, "SF-Online").total_seconds
        total.append((base, base / if_online if if_online else 0.0))
        online_only.append((base, base / sf_online if sf_online else 0.0))
    return [
        ("IF-Online over SF-Plain", total),
        ("SF-Online over SF-Plain", online_only),
    ]


def figure9_work(results: SuiteResults) -> List[Series]:
    """Deterministic variant: work ratios instead of time ratios."""
    total: List[Tuple[float, float]] = []
    online_only: List[Tuple[float, float]] = []
    for bench in _sorted_benchmarks(results):
        base = results.run(bench.name, "SF-Plain").work
        if_online = results.run(bench.name, "IF-Online").work
        sf_online = results.run(bench.name, "SF-Online").work
        total.append((bench.ast_nodes, base / if_online))
        online_only.append((bench.ast_nodes, base / sf_online))
    return [
        ("SF-Plain/IF-Online work", total),
        ("SF-Plain/SF-Online work", online_only),
    ]


def render_figure9(results: SuiteResults) -> str:
    rendered = format_series(
        "Figure 9: speedup over the standard implementation "
        "(x = SF-Plain seconds)",
        "SF-Plain (s)", figure9(results),
    )
    rendered += "\n\n" + format_series(
        "Figure 9 (work-based variant)",
        "AST nodes", figure9_work(results),
    )
    return rendered


# ----------------------------------------------------------------------
# Figure 10: IF-Online vs SF-Online
# ----------------------------------------------------------------------
def figure10(results: SuiteResults) -> List[Series]:
    time_ratio: List[Tuple[float, float]] = []
    work_ratio: List[Tuple[float, float]] = []
    for bench in _sorted_benchmarks(results):
        x = bench.ast_nodes
        sf = results.run(bench.name, "SF-Online")
        if_ = results.run(bench.name, "IF-Online")
        time_ratio.append(
            (x, sf.total_seconds / if_.total_seconds
             if if_.total_seconds else 0.0)
        )
        work_ratio.append((x, sf.work / if_.work if if_.work else 0.0))
    return [
        ("SF-Online/IF-Online time", time_ratio),
        ("SF-Online/IF-Online work", work_ratio),
    ]


def render_figure10(results: SuiteResults) -> str:
    return format_series(
        "Figure 10: speedup of IF-Online over SF-Online",
        "AST nodes", figure10(results),
    )


# ----------------------------------------------------------------------
# Figure 11: fraction of cycle variables detected online
# ----------------------------------------------------------------------
def figure11(results: SuiteResults) -> List[Tuple[str, float, float]]:
    """Per benchmark: (name, IF fraction, SF fraction).

    Fraction = variables eliminated online / variables in non-trivial
    SCCs of the final constraint graph (paper: IF ~80 %, SF ~40 %).
    """
    rows: List[Tuple[str, float, float]] = []
    for bench in _sorted_benchmarks(results):
        stats = results.statistics(bench.name)
        denominator = stats.final_scc_vars
        if denominator == 0:
            rows.append((bench.name, 0.0, 0.0))
            continue
        if_elim = results.run(bench.name, "IF-Online").vars_eliminated
        sf_elim = results.run(bench.name, "SF-Online").vars_eliminated
        rows.append(
            (bench.name, if_elim / denominator, sf_elim / denominator)
        )
    return rows


def render_figure11(results: SuiteResults) -> str:
    rows = [
        (name, f"{if_frac:.0%}", f"{sf_frac:.0%}")
        for name, if_frac, sf_frac in figure11(results)
    ]
    averages = figure11_averages(results)
    rows.append(("MEAN", f"{averages[0]:.0%}", f"{averages[1]:.0%}"))
    return format_table(
        "Figure 11: fraction of final-SCC variables eliminated online",
        ("Benchmark", "IF-Online", "SF-Online"),
        rows,
    )


def figure11_averages(results: SuiteResults) -> Tuple[float, float]:
    rows = [row for row in figure11(results) if row[1] or row[2]]
    if not rows:
        return (0.0, 0.0)
    mean_if = sum(r[1] for r in rows) / len(rows)
    mean_sf = sum(r[2] for r in rows) / len(rows)
    return (mean_if, mean_sf)
