"""Experiment harness: the six configurations of Table 4 applied to the
benchmark suite, regenerating every table and figure of the paper."""

from .config import EXPERIMENT_LABELS, TABLE4, describe, options_for
from .export import export_results, export_results_json, run_records
from .figures import (
    figure7,
    figure8,
    figure9,
    figure9_work,
    figure10,
    figure11,
    figure11_averages,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
)
from .runner import (
    BenchmarkStats,
    RunRecord,
    SuiteResults,
    initial_graph_statistics,
)
from .tables import (
    oracle_work_ratio,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
)

__all__ = [
    "BenchmarkStats",
    "export_results",
    "export_results_json",
    "run_records",
    "EXPERIMENT_LABELS",
    "RunRecord",
    "SuiteResults",
    "TABLE4",
    "describe",
    "figure10",
    "figure11",
    "figure11_averages",
    "figure7",
    "figure8",
    "figure9",
    "figure9_work",
    "initial_graph_statistics",
    "options_for",
    "oracle_work_ratio",
    "render_figure10",
    "render_figure11",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "table1",
    "table2",
    "table3",
]
