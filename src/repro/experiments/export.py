"""Machine-readable export of experiment results.

Produces a single JSON document with Table 1 statistics, every
(benchmark × experiment) run record, and the figure series — the format
downstream plotting scripts consume.  Everything is plain dict/list/
scalar so ``json.dumps`` works directly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

from .config import EXPERIMENT_LABELS
from .figures import figure7, figure8, figure9, figure9_work, figure10, \
    figure11
from .runner import SuiteResults
from .tables import oracle_work_ratio


def run_records(results: SuiteResults,
                experiments=EXPERIMENT_LABELS) -> List[Dict]:
    """All run records as dictionaries."""
    records = results.run_all(experiments)
    out = []
    for record in records:
        data = dataclasses.asdict(record)
        data["total_seconds"] = record.total_seconds
        out.append(data)
    return out


def _series_to_json(series) -> List[Dict]:
    return [
        {"name": name, "points": [list(point) for point in points]}
        for name, points in series
    ]


def export_results(results: SuiteResults) -> Dict:
    """Build the complete JSON-ready result document."""
    return {
        "suite": [bench.name for bench in results.benchmarks],
        "table1": [
            dataclasses.asdict(stats)
            for stats in results.all_statistics()
        ],
        "runs": run_records(results),
        "figures": {
            "figure7": _series_to_json(figure7(results)),
            "figure8": _series_to_json(figure8(results)),
            "figure9": _series_to_json(figure9(results)),
            "figure9_work": _series_to_json(figure9_work(results)),
            "figure10": _series_to_json(figure10(results)),
            "figure11": [
                {"benchmark": name, "if_fraction": if_frac,
                 "sf_fraction": sf_frac}
                for name, if_frac, sf_frac in figure11(results)
            ],
        },
        "aggregates": {
            "oracle_work_ratio": oracle_work_ratio(results),
        },
    }


def export_results_json(results: SuiteResults, indent: int = 2) -> str:
    """The document serialized to a JSON string."""
    return json.dumps(export_results(results), indent=indent)
