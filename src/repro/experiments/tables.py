"""Reproduction of the paper's tables.

Each ``tableN`` function returns structured rows; ``render_tableN``
produces the text the harness prints.  Layouts follow the paper:

* **Table 1** — static benchmark data (AST nodes, lines, set variables,
  initial nodes/edges, variables in SCCs and max SCC size for both the
  initial and the final graph).
* **Table 2** — Edges / Work / time for the four non-online experiments
  (SF-Plain, IF-Plain, SF-Oracle, IF-Oracle).
* **Table 3** — Edges / Work / time / variables eliminated for the two
  online experiments (SF-Online, IF-Online).
* **Table 4** — the experiment roster (definitional).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .config import TABLE4
from .report import format_table
from .runner import BenchmarkStats, RunRecord, SuiteResults

#: Experiments shown in Table 2 (paper order).
TABLE2_EXPERIMENTS = ("SF-Plain", "IF-Plain", "SF-Oracle", "IF-Oracle")
#: Experiments shown in Table 3.
TABLE3_EXPERIMENTS = ("SF-Online", "IF-Online")


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(results: SuiteResults) -> List[BenchmarkStats]:
    return results.all_statistics()


def render_table1(results: SuiteResults) -> str:
    headers = (
        "Benchmark", "AST Nodes", "Lines", "Set Vars",
        "Init Nodes", "Init Edges",
        "Init @SCC", "Init max", "Final @SCC", "Final max",
    )
    rows = [
        (
            s.name, s.ast_nodes, s.lines, s.set_vars,
            s.initial_nodes, s.initial_edges,
            s.initial_scc_vars, s.initial_scc_max,
            s.final_scc_vars, s.final_scc_max,
        )
        for s in table1(results)
    ]
    return format_table(
        "Table 1: benchmark data common to all experiments",
        headers, rows,
    )


# ----------------------------------------------------------------------
# Tables 2 and 3
# ----------------------------------------------------------------------
def _experiment_rows(
    results: SuiteResults, experiments: Sequence[str]
) -> List[Dict[str, RunRecord]]:
    rows = []
    for bench in results.benchmarks:
        rows.append(
            {label: results.run(bench.name, label) for label in experiments}
        )
    return rows


def table2(results: SuiteResults) -> List[Dict[str, RunRecord]]:
    return _experiment_rows(results, TABLE2_EXPERIMENTS)


def render_table2(results: SuiteResults) -> str:
    headers = ["Benchmark"]
    for label in TABLE2_EXPERIMENTS:
        headers += [f"{label} Edges", f"{label} Work", f"{label} s"]
    rows = []
    for bench, records in zip(results.benchmarks, table2(results)):
        row: List[object] = [bench.name]
        for label in TABLE2_EXPERIMENTS:
            record = records[label]
            row += [record.final_edges, record.work,
                    round(record.total_seconds, 3)]
        rows.append(row)
    return format_table(
        "Table 2: edges, work and time without online elimination "
        "(plain and oracle runs)",
        headers, rows,
    )


def table3(results: SuiteResults) -> List[Dict[str, RunRecord]]:
    return _experiment_rows(results, TABLE3_EXPERIMENTS)


def render_table3(results: SuiteResults) -> str:
    headers = ["Benchmark"]
    for label in TABLE3_EXPERIMENTS:
        headers += [
            f"{label} Edges", f"{label} Work", f"{label} s",
            f"{label} Elim",
        ]
    rows = []
    for bench, records in zip(results.benchmarks, table3(results)):
        row: List[object] = [bench.name]
        for label in TABLE3_EXPERIMENTS:
            record = records[label]
            row += [
                record.final_edges, record.work,
                round(record.total_seconds, 3), record.vars_eliminated,
            ]
        rows.append(row)
    return format_table(
        "Table 3: online cycle elimination experiments",
        headers, rows,
    )


# ----------------------------------------------------------------------
# Table 4
# ----------------------------------------------------------------------
def render_table4() -> str:
    rows = [(label, desc) for label, (_, _, desc) in TABLE4.items()]
    return format_table(
        "Table 4: experiments", ("Experiment", "Description"), rows
    )


# ----------------------------------------------------------------------
# Aggregate claims from Section 4 / 5
# ----------------------------------------------------------------------
def oracle_work_ratio(results: SuiteResults) -> float:
    """Mean SF-Oracle / IF-Oracle work ratio (paper: ~4.1, model: ~2.5)."""
    ratios = []
    for bench in results.benchmarks:
        sf = results.run(bench.name, "SF-Oracle").work
        if_ = results.run(bench.name, "IF-Oracle").work
        if if_:
            ratios.append(sf / if_)
    return sum(ratios) / len(ratios) if ratios else 0.0
