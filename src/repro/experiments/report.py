"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render an aligned monospace table."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if _numeric(cell)
                      else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit()


def format_series(
    title: str,
    x_label: str,
    series: Sequence[tuple],
) -> str:
    """Render figure data as a table: x plus one column per series.

    ``series`` is a sequence of ``(name, [(x, y), ...])`` pairs sharing
    the same x values.
    """
    if not series:
        return title
    headers = [x_label] + [name for name, _ in series]
    xs = [point[0] for point in series[0][1]]
    rows = []
    for index, x in enumerate(xs):
        row = [x]
        for _, points in series:
            row.append(points[index][1] if index < len(points) else "")
        rows.append(row)
    return format_table(title, headers, rows)
