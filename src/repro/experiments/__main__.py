"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments table2 --suite quick
    python -m repro.experiments all --suite medium
    python -m repro.experiments model
"""

from __future__ import annotations

import argparse
import sys

from . import (
    SuiteResults,
    export_results_json,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    oracle_work_ratio,
)
from ..model import (
    simulate_reachable,
    simulate_work,
    expected_work_if,
    expected_work_sf,
    theorem_5_1_ratio,
    theorem_5_2_bound,
)

_TARGETS = (
    "table1", "table2", "table3", "table4",
    "figure7", "figure8", "figure9", "figure10", "figure11",
    "model", "all", "json",
)


def _render_model() -> str:
    lines = ["Section 5 analytical model"]
    for n in (1000, 10000, 100000, 1000000):
        lines.append(
            f"  Theorem 5.1 ratio at n={n}: {theorem_5_1_ratio(n):.3f} "
            "(paper: -> ~2.5)"
        )
    lines.append(
        f"  Theorem 5.2 bound (k=2): {theorem_5_2_bound(2.0):.3f} "
        "(paper: ~2.2)"
    )
    sim = simulate_work(8, 5, 1 / 8, trials=200, seed=1)
    lines.append(
        f"  Monte Carlo n=8 m=5 p=1/8: SF={sim.mean_work_sf:.1f} "
        f"(formula {expected_work_sf(8, 5, 1 / 8):.1f}), "
        f"IF={sim.mean_work_if:.1f} "
        f"(formula {expected_work_if(8, 5, 1 / 8):.1f})"
    )
    reach = simulate_reachable(400, 2.0, trials=3, seed=1)
    lines.append(
        f"  Monte Carlo reachable (n=400, k=2): "
        f"{reach.mean_reachable:.2f} <= {theorem_5_2_bound(2.0):.2f}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=_TARGETS)
    parser.add_argument(
        "--suite", default="medium", choices=("quick", "medium", "full")
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="best-of-N timing (the paper used best of three)",
    )
    args = parser.parse_args(argv)

    if args.target == "json":
        results = SuiteResults.for_suite(
            args.suite, seed=args.seed, repeats=args.repeats
        )
        print(export_results_json(results))
        return 0
    if args.target == "model":
        print(_render_model())
        return 0
    if args.target == "table4":
        print(render_table4())
        return 0

    results = SuiteResults.for_suite(
        args.suite, seed=args.seed, repeats=args.repeats
    )
    renderers = {
        "table1": lambda: render_table1(results),
        "table2": lambda: render_table2(results),
        "table3": lambda: render_table3(results),
        "figure7": lambda: render_figure7(results),
        "figure8": lambda: render_figure8(results),
        "figure9": lambda: render_figure9(results),
        "figure10": lambda: render_figure10(results),
        "figure11": lambda: render_figure11(results),
    }
    if args.target == "all":
        print(render_table4())
        for name in ("table1", "table2", "table3", "figure7", "figure8",
                     "figure9", "figure10", "figure11"):
            print()
            print(renderers[name]())
        print()
        print(
            f"Mean SF-Oracle/IF-Oracle work ratio: "
            f"{oracle_work_ratio(results):.2f} (paper: ~4.1, model: ~2.5)"
        )
        print()
        print(_render_model())
        return 0
    print(renderers[args.target]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
