"""Structured errors raised by the resilience layer.

All derive from :class:`repro.errors.ReproError` so a caller can guard a
whole solve pipeline with one root exception type.  This module imports
nothing from the solver packages; the solver engine imports *it*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .audit import AuditFailure


class ResilienceError(ReproError):
    """Base class for budget / cancellation / checkpoint / audit errors."""


class BudgetExceededError(ResilienceError):
    """A :class:`~repro.resilience.budget.SolveBudget` limit was hit.

    Attributes:
        reason: which limit tripped — ``"work"``, ``"deadline"``, or
            ``"edges"``.
        limit: the configured bound.
        value: the observed quantity at the check.
        work_done: total work units processed when the run stopped.
    """

    def __init__(self, reason: str, limit: float, value: float,
                 work_done: int) -> None:
        super().__init__(
            f"solve budget exhausted: {reason} limit {limit} reached "
            f"(observed {value}, work units processed {work_done})"
        )
        self.reason = reason
        self.limit = limit
        self.value = value
        self.work_done = work_done


class SolveCancelledError(ResilienceError):
    """The run's :class:`~repro.resilience.budget.CancellationToken`
    was cancelled.

    Attributes:
        work_done: total work units processed when the run stopped.
    """

    def __init__(self, work_done: int) -> None:
        super().__init__(
            f"solve cancelled after {work_done} work units"
        )
        self.work_done = work_done


class CheckpointError(ResilienceError):
    """A checkpoint could not be captured, decoded, or restored."""


class GraphInvariantError(ResilienceError):
    """The invariant auditor found the solver state corrupted.

    Attributes:
        failures: every :class:`~repro.resilience.audit.AuditFailure`
            found by the audit pass that raised.
    """

    def __init__(self, failures: Sequence["AuditFailure"]) -> None:
        preview = "; ".join(str(f) for f in list(failures)[:3])
        more = len(failures) - min(len(failures), 3)
        if more > 0:
            preview += f"; ... and {more} more"
        super().__init__(
            f"graph invariant audit failed ({len(failures)} "
            f"failure(s)): {preview}"
        )
        self.failures = list(failures)
