"""Versioned checkpoint / resume for solver engines.

An interrupted run (budget exhaustion, cancellation, process death after
a periodic save) no longer loses all work: :func:`capture` snapshots a
:class:`~repro.solver.SolverEngine` between worklist operations, and
:func:`restore` rebuilds an engine from the snapshot against the same
system and options so :meth:`~repro.solver.SolverEngine.resume` can
finish the closure.

What a checkpoint holds (format :data:`CHECKPOINT_VERSION`):

* the pending worklist, in deque order;
* every adjacency / source / sink set, saved in iteration order;
* the union-find parent array and collapsed count;
* the full :class:`~repro.graph.stats.SolverStats` counter snapshot,
  recorded var-edge keys, periodic-sweep position, diagnostics, and the
  engine's :class:`~repro.resilience.budget.SolveStatus`;
* verification metadata — options label, variable/constraint counts,
  and the variable-order rank array.  :func:`restore` refuses (with
  :class:`~repro.resilience.errors.CheckpointError`) to resume against
  a different system, configuration, or variable order.

Determinism: a resumed run must reproduce the *exact* final counters of
an uninterrupted run (the regression tests enforce this against the
committed benchmark baseline).  Counters depend on set iteration order,
and a set's iteration order is a function of its *insertion sequence*
(rebuilding from iteration order is not a fixpoint under hash
collisions), so checkpointable engines journal every bucket insertion
(:meth:`~repro.graph.base.ConstraintGraphBase.enable_journal`, enabled
by ``SolverOptions(checkpointable=True)`` or implied by a budget /
cancellation token) and :func:`restore` replays each bucket's journal
into a fresh set — byte-for-byte the same layout the interrupted run
had.  :func:`capture` refuses engines that ran without journaling.
Trace sinks are not checkpointed — the restored engine attaches
whatever sinks the supplied options carry.

Serialization uses :mod:`pickle` (expressions carry client-chosen label
objects, which JSON cannot represent in general); treat checkpoint
bytes like any pickle — do not load them from untrusted sources.

Expression identity: the solver relies on object identity in places —
``is_zero``/``is_one`` compare constructors with ``is`` against the
module singletons, and labels may be identity-hashed client objects —
so expression nodes must never be restored as pickled *copies*.  The
checkpoint therefore interns every expression node and constructor
reachable from the constraint system (plus the 0/1 singletons) and
serializes them as *references* (pickle persistent IDs) into that
deterministic enumeration; :func:`restore` re-enumerates the target
system and resolves each reference to the target's own object.  Within
one process that returns the identical objects; across processes it
requires the system to have been rebuilt by the same deterministic
construction (which is how every workload in this repo is built).
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..constraints.expressions import ONE, Term, ZERO
from ..graph.stats import SolverStats
from .budget import SolveStatus
from .errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..constraints.system import ConstraintSystem
    from ..solver.engine import SolverEngine
    from ..solver.options import SolverOptions

#: Format version; bump on any breaking change to the payload shape.
CHECKPOINT_VERSION = 1

#: Leading magic in the byte encoding, so stray pickles are rejected.
_MAGIC = b"repro-ckpt\x00"


def _intern_table(
    system: "ConstraintSystem",
    num_constructors: Optional[int] = None,
    num_vars: Optional[int] = None,
    num_constraints: Optional[int] = None,
) -> List[object]:
    """Deterministically enumerate the system's shareable objects.

    Covers the 0/1 singletons, every registered constructor, every
    variable, and every expression node reachable from the constraints
    (pre-order, constraints in insertion order).  Everything the solver
    stores in graphs, worklists, or diagnostics is built from these
    nodes — the engine destructures expressions but never builds new
    ones — so interning this table suffices to preserve identity.

    The truncation limits matter at restore time: persistent IDs are
    *indices* into this enumeration, so a system that grew after the
    capture (``fresh_var`` between batches) would shift every
    expression-node index unless the table is rebuilt over exactly the
    capture-time prefix of constructors, variables, and constraints.
    """
    objects: List[object] = [ZERO, ONE, ZERO.constructor, ONE.constructor]
    seen = {id(obj) for obj in objects}
    constructors = list(system._constructors.values())
    if num_constructors is not None:
        constructors = constructors[:num_constructors]
    for ctor in constructors:
        if id(ctor) not in seen:
            seen.add(id(ctor))
            objects.append(ctor)
    variables = system.variables
    if num_vars is not None:
        variables = variables[:num_vars]
    for var in variables:
        if id(var) not in seen:
            seen.add(id(var))
            objects.append(var)
    constraints = system.constraints
    if num_constraints is not None:
        constraints = constraints[:num_constraints]
    for left, right in constraints:
        stack = [right, left]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            objects.append(node)
            if isinstance(node, Term):
                if id(node.constructor) not in seen:
                    seen.add(id(node.constructor))
                    objects.append(node.constructor)
                stack.extend(reversed(node.args))
    return objects


class _InternPickler(pickle.Pickler):
    """Serialize interned objects as references, everything else as-is."""

    def __init__(self, buffer, table: List[object]) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._ids = {id(obj): index for index, obj in enumerate(table)}

    def persistent_id(self, obj):  # noqa: D102 - pickle hook
        return self._ids.get(id(obj))


class _InternUnpickler(pickle.Unpickler):
    """Resolve references back to the target system's own objects."""

    def __init__(self, buffer, table: List[object]) -> None:
        super().__init__(buffer)
        self._table = table

    def persistent_load(self, pid):  # noqa: D102 - pickle hook
        try:
            return self._table[pid]
        except (IndexError, TypeError) as error:
            raise CheckpointError(
                f"checkpoint references expression #{pid!r} that the "
                f"supplied system does not contain"
            ) from error


def _dump_state(state: Dict[str, Any],
                system: "ConstraintSystem") -> bytes:
    buffer = io.BytesIO()
    _InternPickler(buffer, _intern_table(system)).dump(state)
    return buffer.getvalue()


def _load_state(
    data: bytes,
    system: "ConstraintSystem",
    num_constructors: Optional[int] = None,
    num_vars: Optional[int] = None,
    num_constraints: Optional[int] = None,
) -> Dict[str, Any]:
    table = _intern_table(
        system,
        num_constructors=num_constructors,
        num_vars=num_vars,
        num_constraints=num_constraints,
    )
    return _InternUnpickler(io.BytesIO(data), table).load()


@dataclass
class EngineCheckpoint:
    """One captured engine state, ready to serialize."""

    version: int
    payload: Dict[str, Any]

    def to_bytes(self) -> bytes:
        """Encode as self-describing bytes (magic + version + pickle)."""
        return _MAGIC + pickle.dumps(
            {"version": self.version, "payload": self.payload},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EngineCheckpoint":
        if not data.startswith(_MAGIC):
            raise CheckpointError(
                "not a repro checkpoint (magic header missing)"
            )
        try:
            decoded = pickle.loads(data[len(_MAGIC):])
        except Exception as error:
            raise CheckpointError(
                f"checkpoint payload undecodable: {error}"
            ) from error
        version = decoded.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        return cls(version=version, payload=decoded["payload"])

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "EngineCheckpoint":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())


def capture(engine: "SolverEngine") -> EngineCheckpoint:
    """Snapshot ``engine`` between worklist operations.

    Safe whenever the engine is not actively inside ``_drain`` — after a
    partial run (budget / cancellation stop), after an exception, or
    between :class:`~repro.solver.IncrementalSolver` batches.
    """
    graph = engine.graph
    uf = graph.unionfind
    stats = engine.stats
    if graph._journal_succ is None:
        raise CheckpointError(
            "engine state cannot be captured exactly: the run did not "
            "journal bucket insertions; solve with "
            "SolverOptions(checkpointable=True) (or a budget / "
            "cancellation token, which imply it)"
        )
    state: Dict[str, Any] = {
        "parent": list(uf._parent),
        "collapsed": uf._collapsed,
        # Journals, not set contents: insertion order is what lets
        # restore rebuild each set with its exact original layout.
        "succ": [list(journal) for journal in graph._journal_succ],
        "pred": [list(journal) for journal in graph._journal_pred],
        "sources": [list(journal) for journal in graph._journal_sources],
        "sinks": [list(journal) for journal in graph._journal_sinks],
        "pending": list(engine.pending),
        "var_edge_keys": sorted(engine._var_edge_keys),
        "since_sweep": engine._since_sweep,
        "stats": {
            f.name: getattr(stats, f.name) for f in fields(SolverStats)
        },
        "diagnostics": list(engine.diagnostics),
        "status": engine.status.value,
    }
    payload: Dict[str, Any] = {
        "meta": {
            "label": engine.options.label,
            "num_vars": engine.system.num_vars,
            "num_constraints": len(engine.system),
            # Constructor count and order-spec name let restore rebuild
            # the capture-time intern table and validate the order even
            # after the system has grown (fresh_var between batches).
            "num_constructors": len(engine.system._constructors),
            "order": graph.order.spec_name,
            "form": graph.form_name,
        },
        # The *materialized* rank array, not the order spec: a spec
        # like RandomOrder re-run over a grown variable count would
        # reshuffle every rank and diverge from the captured run.
        "ranks": list(graph.order.ranks),
        # Expression-bearing state is interned against the system (see
        # the module docstring) and stays opaque until restore.
        "state": _dump_state(state, engine.system),
    }
    return EngineCheckpoint(version=CHECKPOINT_VERSION, payload=payload)


def restore(
    system: "ConstraintSystem",
    options: "SolverOptions",
    checkpoint: EngineCheckpoint,
) -> "SolverEngine":
    """Rebuild an engine from ``checkpoint`` against the same inputs.

    ``system`` and ``options`` must describe the same run that was
    captured (same configuration, order spec and seed, and the same
    constraints); mismatches raise :class:`CheckpointError`.  The
    system may have *grown* since the capture — incremental use creates
    variables between batches — as long as the saved variables form a
    prefix: restore installs the checkpoint's **materialized** rank
    array over the saved prefix and extends it deterministically
    (identity ranks for late variables, exactly like
    :meth:`~repro.graph.order.VariableOrder.ensure`), instead of
    re-running the order spec over the grown count, which would
    reshuffle every rank and diverge from the captured run.  Call
    :meth:`~repro.solver.SolverEngine.resume` on the result to finish
    the run.
    """
    from ..solver.engine import SolverEngine

    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {checkpoint.version!r}"
        )
    payload = checkpoint.payload
    meta = payload["meta"]
    saved_vars = int(meta["num_vars"])
    saved_ranks = [int(rank) for rank in payload["ranks"]]
    mismatches = []
    if meta["label"] != options.label:
        mismatches.append(
            f"configuration {options.label!r} != saved {meta['label']!r}"
        )
    if system.num_vars < saved_vars:
        mismatches.append(
            f"{system.num_vars} variables < saved {saved_vars} "
            f"(checkpointed variables must form a prefix)"
        )
    if meta["num_constraints"] != len(system):
        mismatches.append(
            f"{len(system)} constraints != saved {meta['num_constraints']}"
        )
    saved_order = meta.get("order")
    if saved_order is not None and saved_order != options.order_spec().name:
        mismatches.append(
            f"variable order {options.order_spec().name!r} != saved "
            f"{saved_order!r}"
        )
    if sorted(saved_ranks) != list(range(len(saved_ranks))):
        mismatches.append(
            "saved rank array is not a permutation (corrupt checkpoint)"
        )
    saved_constructors = meta.get("num_constructors")
    if saved_constructors is None and system.num_vars != saved_vars:
        # Pre-"num_constructors" checkpoints cannot resolve expression
        # references against a grown system (the variable block shifts
        # every later intern index); such checkpoints also predate
        # growth-tolerant restore, so nothing regresses by refusing.
        mismatches.append(
            "checkpoint predates growth support and the system has "
            "grown since the capture"
        )
    if mismatches:
        raise CheckpointError(
            "checkpoint does not match the supplied system/options: "
            + "; ".join(mismatches)
        )
    engine = SolverEngine(system, options)
    state = _load_state(
        payload["state"], system,
        num_constructors=saved_constructors,
        num_vars=saved_vars,
        num_constraints=int(meta["num_constraints"]),
    )

    graph = engine.graph
    # Install the captured ranks in place — the graph aliases the list
    # (`_ranks`, `rank = ranks.__getitem__`) at construction — then
    # extend deterministically over any late-created variables.
    order = graph.order
    order.ranks[:] = saved_ranks
    order.ensure(graph.num_vars)
    uf = graph.unionfind
    # The captured graph may cover fewer variables than the restored
    # one (growth since capture); state arrays are saved-graph-sized.
    saved_graph_vars = len(state["parent"])
    # Mutate the union-find array in place: the engine and graph hold
    # direct aliases (`_uf_parent`) bound at construction.
    uf._parent[:saved_graph_vars] = state["parent"]
    uf._collapsed = state["collapsed"]
    # The restored engine must itself be checkpointable again.
    graph.enable_journal()
    for index in range(saved_graph_vars):
        graph.succ_vars[index] = _rebuild_set(state["succ"][index])
        graph.pred_vars[index] = _rebuild_set(state["pred"][index])
        graph.sources[index] = _rebuild_set(state["sources"][index])
        graph.sinks[index] = _rebuild_set(state["sinks"][index])
        graph._journal_succ[index] = list(state["succ"][index])
        graph._journal_pred[index] = list(state["pred"][index])
        graph._journal_sources[index] = list(state["sources"][index])
        graph._journal_sinks[index] = list(state["sinks"][index])
    stats = engine.stats
    for name, value in state["stats"].items():
        setattr(stats, name, value)
    engine.pending.clear()
    engine.pending.extend(state["pending"])
    engine._var_edge_keys = set(state["var_edge_keys"])
    engine._since_sweep = state["since_sweep"]
    engine.diagnostics[:] = state["diagnostics"]
    engine.status = SolveStatus(state["status"])
    return engine


def _rebuild_set(items) -> set:
    """Rebuild a set by replaying the journaled insertion sequence.

    Element-by-element (never ``set(items)``): the bucket being restored
    grew one ``add`` at a time, and replaying the same sequence from a
    fresh set reproduces its internal layout — hence iteration order —
    exactly.
    """
    rebuilt = set()
    add = rebuilt.add
    for item in items:
        add(item)
    return rebuilt
