"""Command-line entry point: ``python -m repro.resilience``.

Two subcommands::

    # Differential fuzzing (the CI fuzz-smoke job):
    python -m repro.resilience fuzz --systems 200 --seed 0

    # Audit graph invariants while solving a workload suite:
    python -m repro.resilience audit --suite quick --audit stride-1000

``fuzz`` exits nonzero if any cross-config disagreement is found (each
is shrunk and saved under ``tests/fuzz_corpus/`` by default); ``audit``
exits nonzero if any solve violates the paper's graph invariants.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..experiments.config import EXPERIMENT_LABELS
from .errors import GraphInvariantError
from .fuzz import DEFAULT_CORPUS_DIR, run_fuzz


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="solver resilience tools: differential fuzzing and "
                    "graph-invariant auditing",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz = commands.add_parser(
        "fuzz", help="differentially fuzz the six configurations "
                     "against the reference solver",
    )
    fuzz.add_argument("--systems", type=int, default=200, metavar="N",
                      help="number of random systems (default 200)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed for the system stream (default 0)")
    fuzz.add_argument(
        "--experiments", nargs="+", metavar="LABEL", default=None,
        choices=EXPERIMENT_LABELS,
        help="subset of Table-4 labels (default: all six)",
    )
    fuzz.add_argument(
        "--corpus-dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
        help=f"where shrunk reproducers are saved "
             f"(default {DEFAULT_CORPUS_DIR})",
    )
    fuzz.add_argument("--no-save", action="store_true",
                      help="report disagreements without writing files")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip ddmin shrinking of disagreements")
    fuzz.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the index range across N worker processes "
             "(0 = one per core; default 1 = serial); results and "
             "corpus files are identical to a serial run",
    )

    audit = commands.add_parser(
        "audit", help="solve a workload suite with the graph-invariant "
                      "auditor enabled",
    )
    audit.add_argument(
        "--suite", default="quick", choices=("quick", "medium", "full"),
        help="workload suite to audit (default quick)",
    )
    audit.add_argument(
        "--benchmark", default=None, metavar="NAME",
        help="restrict to one benchmark of the suite",
    )
    audit.add_argument(
        "--experiments", nargs="+", metavar="LABEL", default=None,
        choices=EXPERIMENT_LABELS,
        help="subset of Table-4 labels (default: all six)",
    )
    audit.add_argument(
        "--audit", default="final", metavar="MODE", dest="audit_mode",
        help='audit mode: "final" or "stride-N" (default final)',
    )
    audit.add_argument("--seed", type=int, default=0,
                       help="variable-order seed (default 0)")
    return parser


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from ..parallel.pool import ParallelError

    try:
        disagreements = run_fuzz(
            count=args.systems,
            seed=args.seed,
            labels=args.experiments,
            corpus_dir=None if args.no_save else args.corpus_dir,
            shrink=not args.no_shrink,
            progress=lambda line: print(line, flush=True),
            jobs=args.jobs,
        )
    except ParallelError as error:
        print(f"parallel fuzz failed: {error}", file=sys.stderr)
        return 2
    if disagreements:
        print(f"\n{len(disagreements)} disagreement(s) in "
              f"{args.systems} systems:", file=sys.stderr)
        for disagreement in disagreements:
            print(f"  {disagreement}", file=sys.stderr)
        return 1
    print(f"{args.systems} systems, all configurations agree "
          f"with the reference solver")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from ..experiments.config import options_for
    from ..solver import solve
    from ..workloads import suite

    benches = suite(args.suite)
    if args.benchmark is not None:
        benches = [b for b in benches if b.name == args.benchmark]
        if not benches:
            print(f"error: no benchmark {args.benchmark!r} in suite "
                  f"{args.suite!r}", file=sys.stderr)
            return 2
    labels = args.experiments or EXPERIMENT_LABELS
    failed = 0
    for bench in benches:
        system = bench.program.system
        for label in labels:
            options = options_for(
                label, seed=args.seed, audit=args.audit_mode
            )
            try:
                solution = solve(system, options)
            except GraphInvariantError as error:
                failed += 1
                print(f"{bench.name:<14} {label:<10} FAILED: {error}",
                      file=sys.stderr)
                continue
            print(f"{bench.name:<14} {label:<10} ok "
                  f"(work={solution.stats.work}, "
                  f"audit={args.audit_mode})")
    if failed:
        print(f"\n{failed} audit failure(s)", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_audit(args)


if __name__ == "__main__":
    sys.exit(main())
