"""The graph-invariant auditor.

Validates the structural invariants the paper's algorithms rely on:

* **Union-find well-formedness** — parent indices in range and the
  forwarding forest acyclic (paper Section 2.5's witness forwarding).
* **Representative-only state** — a collapsed (non-representative)
  variable must hold no sources, sinks, or adjacency: ``_absorb``
  re-emits and clears them, so anything left behind means lost
  constraints.
* **Inductive-form edge placement** (Section 2.4 / the Section 4
  invariant) — every stored variable-variable edge lives at its
  *higher*-``o()`` endpoint: each raw neighbour recorded at a
  representative ``x`` must resolve to a variable ranked strictly below
  ``x`` (or to ``x`` itself — a stale self loop left by a collapse).
* **Standard-form shape** — SF stores all variable edges as successor
  edges; a non-empty predecessor set means a representation mix-up.

The auditor is read-only and duck-typed over
:class:`~repro.graph.base.ConstraintGraphBase` (it imports no graph
module), so it can also audit checkpoint-restored or hand-built graphs.
Run it through ``SolverOptions(audit=...)`` — ``"off"``, ``"final"``
(after closure), or ``"stride-N"`` (every N processed operations, plus
final) — or call :func:`audit_graph` directly.  Failures are emitted as
``audit.failure`` events through any attached trace sink before the
engine raises :class:`~repro.resilience.errors.GraphInvariantError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .errors import ResilienceError

#: Audit check identifiers (the ``check`` field of a failure).
CHECK_UF_RANGE = "unionfind-range"
CHECK_UF_CYCLE = "unionfind-cycle"
CHECK_NONREP_STATE = "nonrep-state"
CHECK_IF_PLACEMENT = "inductive-placement"
CHECK_SF_SHAPE = "standard-shape"


@dataclass(frozen=True)
class AuditFailure:
    """One violated invariant.

    Attributes:
        check: which invariant failed (one of the ``CHECK_*`` tags).
        subject: the variable index the failure is anchored at.
        detail: human-readable description of the violation.
    """

    check: str
    subject: int
    detail: str

    def __str__(self) -> str:
        return f"{self.check}@v{self.subject}: {self.detail}"


@dataclass(frozen=True)
class AuditPolicy:
    """When the engine audits: parsed from ``off | final | stride-N``."""

    final: bool = False
    stride: Optional[int] = None

    @classmethod
    def parse(cls, spec: Optional[str]) -> "AuditPolicy":
        if spec is None or spec == "off":
            return cls(final=False, stride=None)
        if spec == "final":
            return cls(final=True, stride=None)
        if spec.startswith("stride-"):
            try:
                stride = int(spec[len("stride-"):])
            except ValueError:
                stride = 0
            if stride > 0:
                # A stride policy also audits once more after closure so
                # the tail below one stride is never unchecked.
                return cls(final=True, stride=stride)
        raise ResilienceError(
            f"bad audit mode {spec!r}; expected 'off', 'final', or "
            f"'stride-N' with positive N"
        )

    @property
    def enabled(self) -> bool:
        return self.final or self.stride is not None


def _audit_unionfind(graph, failures: List[AuditFailure]) -> bool:
    """Check the forwarding forest; returns False when it is unusable."""
    parent = graph.unionfind._parent
    size = len(parent)
    ok = True
    for element, p in enumerate(parent):
        if not 0 <= p < size:
            failures.append(AuditFailure(
                CHECK_UF_RANGE, element,
                f"parent pointer {p} outside [0, {size})",
            ))
            ok = False
    if not ok:
        return False
    # Acyclicity: walk each chain, memoizing nodes proven to reach a
    # root (state 2).  State 1 marks the current walk, so re-meeting a
    # state-1 node means the forwarding pointers loop.
    state = bytearray(size)
    for element in range(size):
        if state[element]:
            continue
        path = []
        node = element
        while state[node] == 0 and parent[node] != node:
            state[node] = 1
            path.append(node)
            node = parent[node]
            if state[node] == 1:
                failures.append(AuditFailure(
                    CHECK_UF_CYCLE, node,
                    "forwarding pointers form a cycle "
                    f"(reached v{node} twice)",
                ))
                ok = False
                break
        for visited in path:
            state[visited] = 2
        state[node] = 2
    return ok


def audit_graph(graph) -> List[AuditFailure]:
    """Validate every invariant of ``graph``; return all failures.

    Read-only.  An empty list means the graph is well-formed.
    """
    failures: List[AuditFailure] = []
    uf_ok = _audit_unionfind(graph, failures)
    if not uf_ok:
        # find() could loop forever on a cyclic forest; the remaining
        # checks depend on it, so stop at the union-find verdict.
        return failures

    num_vars = graph.num_vars
    parent = graph.unionfind._parent
    find = graph.unionfind.find
    rank = graph.rank
    inductive = graph.form_name == "inductive"
    standard = graph.form_name == "standard"

    for var in range(num_vars):
        is_rep = parent[var] == var
        if not is_rep:
            for label, bucket in (
                ("sources", graph.sources[var]),
                ("sinks", graph.sinks[var]),
                ("successor edges", graph.succ_vars[var]),
                ("predecessor edges", graph.pred_vars[var]),
            ):
                if bucket:
                    failures.append(AuditFailure(
                        CHECK_NONREP_STATE, var,
                        f"collapsed variable still holds {len(bucket)} "
                        f"{label} (forwarded to v{find(var)})",
                    ))
            continue
        if standard and graph.pred_vars[var]:
            failures.append(AuditFailure(
                CHECK_SF_SHAPE, var,
                f"standard form stores no predecessor edges, found "
                f"{len(graph.pred_vars[var])}",
            ))
        if inductive:
            own_rank = rank(var)
            for kind, bucket in (
                ("succ", graph.succ_vars[var]),
                ("pred", graph.pred_vars[var]),
            ):
                for raw in bucket:
                    neighbour = find(raw)
                    if neighbour == var:
                        continue  # stale self loop left by a collapse
                    if rank(neighbour) >= own_rank:
                        failures.append(AuditFailure(
                            CHECK_IF_PLACEMENT, var,
                            f"{kind} edge to v{raw} (rep v{neighbour}, "
                            f"rank {rank(neighbour)}) stored at v{var} "
                            f"(rank {own_rank}); inductive form keeps "
                            f"each edge at its higher-o() endpoint",
                        ))
    return failures
