"""Resilience layer: budgets, cancellation, checkpoints, audits, fuzzing.

This package makes long or adversarial solver runs survivable:

* :mod:`repro.resilience.budget` — :class:`SolveBudget` /
  :class:`CancellationToken` bounds checked inside the closure loop;
* :mod:`repro.resilience.checkpoint` — versioned engine snapshots so an
  interrupted run resumes with identical counters;
* :mod:`repro.resilience.audit` — structural invariant validation of
  the constraint graph (inductive-form placement, union-find shape);
* :mod:`repro.resilience.fuzz` — a differential fuzzer cross-checking
  all six Table-4 configurations against the reference solver.

``checkpoint`` and ``fuzz`` import the solver package, which itself
imports this package's budget/audit modules; to keep that dependency
acyclic they are loaded lazily via module ``__getattr__``.
"""

from __future__ import annotations

from .audit import (
    AuditFailure,
    AuditPolicy,
    audit_graph,
)
from .budget import (
    CancellationToken,
    SolveBudget,
    SolveStatus,
    edge_estimate,
)
from .errors import (
    BudgetExceededError,
    CheckpointError,
    GraphInvariantError,
    ResilienceError,
    SolveCancelledError,
)

__all__ = [
    "AuditFailure",
    "AuditPolicy",
    "audit_graph",
    "CancellationToken",
    "SolveBudget",
    "SolveStatus",
    "edge_estimate",
    "BudgetExceededError",
    "CheckpointError",
    "GraphInvariantError",
    "ResilienceError",
    "SolveCancelledError",
    # lazy (solver-dependent):
    "EngineCheckpoint",
    "CHECKPOINT_VERSION",
    "capture",
    "restore",
    "run_fuzz",
    "FuzzDisagreement",
]

_LAZY = {
    "EngineCheckpoint": "checkpoint",
    "CHECKPOINT_VERSION": "checkpoint",
    "capture": "checkpoint",
    "restore": "checkpoint",
    "run_fuzz": "fuzz",
    "FuzzDisagreement": "fuzz",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
