"""Work budgets, cooperative cancellation, and solve statuses.

The incremental-cycle-detection literature treats *bounded work per
insertion* as the defining contract of an online algorithm.  This module
gives our solver the operational counterpart: a :class:`SolveBudget`
bounds a whole run (work units, wall clock, stored-edge estimate), and a
:class:`CancellationToken` lets another thread (or a signal handler)
stop a run cooperatively.  Both are checked by the engine on a
configurable stride (``SolverOptions.check_stride``) inside the worklist
drain, so a pathological or adversarial system can no longer spin the
closure loop forever.

On exhaustion the engine either raises
:class:`~repro.resilience.errors.BudgetExceededError` /
:class:`~repro.resilience.errors.SolveCancelledError`, or — under
``SolverOptions(on_budget="partial")`` — returns a partial
:class:`~repro.solver.Solution` whose :attr:`~repro.solver.Solution.status`
is :data:`SolveStatus.BUDGET_EXHAUSTED` or :data:`SolveStatus.CANCELLED`.
Partial least-solution queries are **sound lower bounds**: every term
reported genuinely belongs to the least solution (closure only ever adds
facts implied by the input), but terms may be missing.

This module deliberately imports nothing from the solver packages, so
``repro.solver`` can depend on it without cycles.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Optional


class SolveStatus(enum.Enum):
    """How a solver run ended."""

    #: closure ran to a fixed point; the least solution is exact
    COMPLETE = "complete"
    #: closure ran to a fixed point but inconsistencies were recorded
    INCONSISTENT = "inconsistent"
    #: a :class:`SolveBudget` limit stopped the run; results are
    #: sound lower bounds
    BUDGET_EXHAUSTED = "budget-exhausted"
    #: a :class:`CancellationToken` stopped the run; results are
    #: sound lower bounds
    CANCELLED = "cancelled"

    @property
    def is_partial(self) -> bool:
        """Whether the graph may not be fully closed."""
        return self in (SolveStatus.BUDGET_EXHAUSTED, SolveStatus.CANCELLED)


def edge_estimate(stats) -> int:
    """Upper estimate of edges stored so far, from the run counters.

    Every processed atomic operation that is neither redundant nor a
    self edge stores (at most) one edge, so ``work - redundant -
    self_edges`` bounds the live edge count from above — cycle collapses
    can only remove edges below the estimate.  Used for
    :attr:`SolveBudget.max_edges` because an exact count would require
    walking every adjacency set at every check.
    """
    return stats.work - stats.redundant - stats.self_edges


@dataclass(frozen=True)
class SolveBudget:
    """Bounds on one solver run; ``None`` fields are unbounded.

    Every limit is measured *per run segment* — from the moment closure
    starts — so a resumed or checkpoint-restored engine gets a fresh
    allowance each time.  (Cumulative limits would make ``resume()``
    under an exhausted budget a no-op forever; segment limits keep every
    individual drain bounded while letting the caller decide how many
    segments to spend.)

    Attributes:
        max_work: cap on work units processed this segment
            (``SolverStats.work`` is the paper's cost metric).
        deadline_seconds: wall-clock allowance for the segment.
        max_edges: cap on the growth of the stored-edge estimate
            (:func:`edge_estimate`) this segment — a cheap memory proxy:
            every stored edge costs a set entry, so bounding edges
            bounds the graph's memory growth.
    """

    max_work: Optional[int] = None
    deadline_seconds: Optional[float] = None
    max_edges: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_work", "deadline_seconds", "max_edges"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"SolveBudget.{name} must be positive, "
                                 f"got {value!r}")

    @property
    def bounded(self) -> bool:
        return (self.max_work is not None
                or self.deadline_seconds is not None
                or self.max_edges is not None)

    def exceeded(self, work: int, edges: int, elapsed_seconds: float
                 ) -> Optional[tuple]:
        """Return ``(reason, limit, value)`` if any limit is hit.

        ``work`` and ``edges`` are the quantities accumulated *this
        segment* (the engine subtracts the counters it restored or
        resumed from); ``elapsed_seconds`` is measured from the
        segment's closure start.
        """
        if self.max_work is not None and work >= self.max_work:
            return ("work", self.max_work, work)
        if (self.deadline_seconds is not None
                and elapsed_seconds >= self.deadline_seconds):
            return ("deadline", self.deadline_seconds, elapsed_seconds)
        if self.max_edges is not None and edges >= self.max_edges:
            return ("edges", self.max_edges, edges)
        return None


class CancellationToken:
    """Cooperative, thread-safe cancellation flag.

    Hand the same token to ``SolverOptions.cancellation`` and to
    whatever may want to stop the run (another thread, a signal
    handler, a timeout watchdog); call :meth:`cancel` there.  The engine
    polls :attr:`cancelled` on its check stride and stops at the next
    operation boundary, so the graph is always left in a consistent
    state.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, safe from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        """Clear the flag so the token can be reused for another run."""
        self._event.clear()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"CancellationToken({state})"
