"""Differential fuzzing of the solver configurations.

Every Table-4 configuration — both graph forms, with and without cycle
elimination, plus the two-phase oracle — must compute the *same* least
solution and the same consistency verdict for any constraint system;
they differ only in how much work they spend (that is the point of the
paper).  The naive reference solver (:func:`repro.solver.solve_reference`)
computes the same answers by brute-force saturation.  This module
exploits that redundancy: generate seeded random systems
(:func:`repro.workloads.generator.random_system`), solve each under all
six configurations plus the reference, and cross-check

* **least solutions** — every variable's solution under every
  configuration equals the reference's;
* **consistency verdicts** — a configuration reports diagnostics iff
  the reference does;
* **collapse equivalence** — variables a configuration collapsed into
  one component must have equal reference least solutions (collapsing
  is only sound for variables on a common cycle).

Any disagreement is shrunk (ddmin over the constraint list, then greedy
single removals to 1-minimality) and saved as a JSON reproducer under
``tests/fuzz_corpus/`` so the failure outlives the fuzzing process and
becomes a regression test input.

Entry points: :func:`run_fuzz` (library), ``python -m repro.resilience
fuzz`` (CLI, used by the CI ``fuzz-smoke`` job).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..constraints.constructors import ONE_CONSTRUCTOR, ZERO_CONSTRUCTOR
from ..constraints.expressions import ONE, SetExpression, Term, Var, ZERO
from ..constraints.system import ConstraintSystem
from ..constraints.variance import Variance
from ..experiments.config import EXPERIMENT_LABELS, options_for
from ..solver import solve, solve_reference
from ..workloads.generator import RandomSystemConfig, random_system
from .errors import ResilienceError

#: Reproducer file format version.
CORPUS_FORMAT = 1

#: Default directory disagreement reproducers are saved under.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


@dataclass
class FuzzDisagreement:
    """One cross-config disagreement, shrunk and saved."""

    #: seed of the generated system that disagreed
    seed: int
    #: experiment label that disagreed with the reference
    label: str
    #: "verdict" | "least-solution" | "collapse"
    kind: str
    #: human-readable description of the mismatch
    detail: str
    #: constraint count of the (shrunk) reproducer
    constraints: int
    #: where the reproducer was written (None if saving was disabled)
    path: Optional[str] = None

    def __str__(self) -> str:
        where = f" -> {self.path}" if self.path else ""
        return (
            f"seed {self.seed}: {self.label} {self.kind}: {self.detail} "
            f"({self.constraints} constraints){where}"
        )


def check_system(
    system: ConstraintSystem,
    labels: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Optional[Tuple[str, str, str]]:
    """Solve under every configuration and cross-check against reference.

    Returns ``None`` on agreement, else ``(label, kind, detail)`` for
    the first disagreement found.  ``seed`` is the variable-order seed
    passed to each configuration (the *system* is fixed; the order seed
    only changes how much work each run does, never its answers).
    """
    reference = solve_reference(system)
    reference_ok = not reference.diagnostics
    for label in labels or EXPERIMENT_LABELS:
        solution = solve(system, options_for(label, seed=seed))
        if solution.ok != reference_ok:
            return (
                label,
                "verdict",
                f"{'consistent' if solution.ok else 'inconsistent'} but "
                f"reference says "
                f"{'consistent' if reference_ok else 'inconsistent'}",
            )
        for var in system.variables:
            got = solution.least_solution(var)
            want = reference.least_solution(var)
            if got != want:
                missing = sorted(map(str, want - got))
                extra = sorted(map(str, got - want))
                return (
                    label,
                    "least-solution",
                    f"LS({var}) missing={missing} extra={extra}",
                )
        components: Dict[int, List[Var]] = {}
        for var in system.variables:
            components.setdefault(solution.representative(var), []).append(var)
        for members in components.values():
            base = reference.least_solution(members[0])
            for other in members[1:]:
                if reference.least_solution(other) != base:
                    return (
                        label,
                        "collapse",
                        f"{members[0]} and {other} collapsed together but "
                        f"have different reference least solutions",
                    )
    return None


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def subsystem(
    system: ConstraintSystem,
    indices: Sequence[int],
    name: Optional[str] = None,
) -> ConstraintSystem:
    """Copy ``system`` keeping only the constraints at ``indices``.

    All variables and constructors are kept (so variable indices — and
    with them the seeded variable order — are stable under shrinking);
    expressions are rebuilt against the copy because ``Var`` objects are
    owned by their system of origin.
    """
    copy = ConstraintSystem(name or f"{system.name}-shrunk")
    for ctor in system._constructors.values():
        if ctor is not ZERO_CONSTRUCTOR and ctor is not ONE_CONSTRUCTOR:
            copy.constructor(ctor.name, ctor.signature)
    fresh = [copy.fresh_var(var.name) for var in system.variables]

    def rebuild(expr: SetExpression) -> SetExpression:
        if isinstance(expr, Var):
            return fresh[expr.index]
        if expr is ZERO or expr is ONE:
            return expr
        return copy.term(
            expr.constructor.name,
            tuple(rebuild(arg) for arg in expr.args),
            expr.label,
        )

    constraints = system.constraints
    for index in indices:
        left, right = constraints[index]
        copy.add(rebuild(left), rebuild(right))
    return copy


def shrink_constraints(
    system: ConstraintSystem,
    failing: Callable[[ConstraintSystem], bool],
) -> ConstraintSystem:
    """Shrink ``system`` to a 1-minimal subset still satisfying ``failing``.

    ddmin-style chunk removal (halving chunk sizes) followed by the
    implicit chunk-size-1 pass, which guarantees no single constraint
    can be removed from the result.
    """
    keep = list(range(len(system.constraints)))
    chunk = max(1, len(keep) // 2)
    while True:
        index = 0
        while index < len(keep):
            trial = keep[:index] + keep[index + chunk:]
            if trial and failing(subsystem(system, trial)):
                keep = trial
            else:
                index += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return subsystem(system, keep)


# ----------------------------------------------------------------------
# JSON reproducers
# ----------------------------------------------------------------------
def _expr_to_json(expr: SetExpression) -> object:
    if isinstance(expr, Var):
        return {"var": expr.index}
    if expr is ZERO:
        return {"zero": True}
    if expr is ONE:
        return {"one": True}
    label = expr.label
    if label is not None and not isinstance(label, str):
        label = str(label)
    return {
        "term": expr.constructor.name,
        "args": [_expr_to_json(arg) for arg in expr.args],
        "label": label,
    }


def system_to_json(system: ConstraintSystem) -> dict:
    """Serialize a system to the corpus JSON shape."""
    constructors = [
        {"name": ctor.name,
         "signature": [variance.value for variance in ctor.signature]}
        for ctor in system._constructors.values()
        if ctor is not ZERO_CONSTRUCTOR and ctor is not ONE_CONSTRUCTOR
    ]
    return {
        "name": system.name,
        "variables": [var.name for var in system.variables],
        "constructors": constructors,
        "constraints": [
            [_expr_to_json(left), _expr_to_json(right)]
            for left, right in system.constraints
        ],
    }


def system_from_json(payload: dict) -> ConstraintSystem:
    """Rebuild a system from :func:`system_to_json` output."""
    system = ConstraintSystem(payload.get("name", "corpus"))
    for entry in payload["constructors"]:
        system.constructor(
            entry["name"],
            tuple(Variance(mark) for mark in entry["signature"]),
        )
    variables = [system.fresh_var(name) for name in payload["variables"]]

    def build(node: object) -> SetExpression:
        if not isinstance(node, dict):
            raise ResilienceError(f"bad corpus expression {node!r}")
        if "var" in node:
            return variables[node["var"]]
        if node.get("zero"):
            return ZERO
        if node.get("one"):
            return ONE
        return system.term(
            node["term"],
            tuple(build(arg) for arg in node["args"]),
            node.get("label"),
        )

    for left, right in payload["constraints"]:
        system.add(build(left), build(right))
    return system


def save_reproducer(
    directory: str, disagreement: FuzzDisagreement,
    system: ConstraintSystem,
) -> str:
    """Write one shrunk reproducer; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"disagreement-seed{disagreement.seed}.json"
    )
    document = {
        "format": CORPUS_FORMAT,
        "seed": disagreement.seed,
        "label": disagreement.label,
        "kind": disagreement.kind,
        "detail": disagreement.detail,
        "system": system_to_json(system),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_reproducer(path: str) -> Tuple[ConstraintSystem, dict]:
    """Load a corpus file; returns ``(system, metadata)``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("format")
    if version != CORPUS_FORMAT:
        raise ResilienceError(
            f"unsupported corpus format {version!r} in {path} "
            f"(this build reads {CORPUS_FORMAT})"
        )
    return system_from_json(document["system"]), document


# ----------------------------------------------------------------------
# The fuzzing loop
# ----------------------------------------------------------------------
#: System-shape profiles the fuzzer rotates through.  The "flow"
#: profile has no sinks, so its systems are always consistent and the
#: differential signal is purely least-solution propagation and cycle
#: collapsing; "mixed" and "clash" add sinks, structural constraints,
#: and 0/1 extremes, so resolution and diagnostics are exercised too.
PROFILES: Dict[str, dict] = {
    "flow": dict(sinks=0, structural=0, extremes=0.0, feedback=0.4),
    "mixed": dict(),
    "clash": dict(structural=10, extremes=0.15),
}


def _config_for(index: int, seed: int,
                rng: random.Random) -> RandomSystemConfig:
    shape = dict(
        seed=seed,
        variables=rng.randrange(6, 40),
        atoms=rng.randrange(2, 8),
        var_var=rng.randrange(8, 60),
        sources=rng.randrange(4, 20),
        sinks=rng.randrange(4, 16),
        max_depth=rng.randrange(1, 4),
    )
    shape.update(list(PROFILES.values())[index % len(PROFILES)])
    return RandomSystemConfig(**shape)


def _count_disagreement(label: str, kind: str) -> None:
    """Bump the process-wide fuzz-disagreement counter.

    Every confirmed differential failure is a defensibly rare event
    worth surfacing on a dashboard, so it lands in the default
    :mod:`repro.metrics` registry regardless of whether this process
    wired up an explicit one.  No-op overhead when metrics are
    disabled: only reached on an actual disagreement.
    """
    from ..metrics import default_registry

    default_registry().counter(
        "repro_fuzz_disagreements_total",
        "Differential-fuzz disagreements found, by divergent "
        "experiment label and failure kind.",
        ("label", "kind"),
    ).labels(label, kind).inc()


def run_fuzz(
    count: int = 200,
    seed: int = 0,
    labels: Optional[Sequence[str]] = None,
    corpus_dir: Optional[str] = DEFAULT_CORPUS_DIR,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[FuzzDisagreement]:
    """Fuzz ``count`` seeded systems; returns all disagreements found.

    Deterministic in ``seed``: system ``i`` is generated from
    ``seed * 1_000_003 + i`` with a shape drawn from a ``seed``-keyed
    stream, so any reported disagreement reproduces from its seed alone.
    Disagreements are shrunk (unless ``shrink=False``) and saved under
    ``corpus_dir`` (unless ``None``).

    ``jobs != 1`` shards the index range across a
    :mod:`repro.parallel` worker pool (``jobs <= 0`` = one worker per
    core).  Workers only *check* their contiguous index shard (each
    re-derives the full shape stream so shapes do not depend on the
    shard layout) and ship disagreements back as corpus JSON; this
    parent process merges them in index order, writes every reproducer,
    and bumps the metrics counter — so the returned list, the corpus
    directory, and the default registry end up exactly as a serial run
    leaves them.
    """
    if jobs != 1:
        return _run_fuzz_parallel(
            count=count, seed=seed, labels=labels,
            corpus_dir=corpus_dir, shrink=shrink, progress=progress,
            jobs=jobs,
        )
    rng = random.Random(seed)
    disagreements: List[FuzzDisagreement] = []
    for index in range(count):
        system_seed = seed * 1_000_003 + index
        config = _config_for(index, system_seed, rng)
        system = random_system(config)
        found = check_system(system, labels=labels)
        if found is None:
            if progress is not None and (index + 1) % 50 == 0:
                progress(f"{index + 1}/{count} systems agree")
            continue
        reproducer = system
        if shrink:
            reproducer = shrink_constraints(
                system,
                lambda sub: check_system(sub, labels=labels) is not None,
            )
            found = check_system(reproducer, labels=labels) or found
        label, kind, detail = found
        _count_disagreement(label, kind)
        disagreement = FuzzDisagreement(
            seed=system_seed,
            label=label,
            kind=kind,
            detail=detail,
            constraints=len(reproducer),
        )
        if corpus_dir is not None:
            disagreement.path = save_reproducer(
                corpus_dir, disagreement, reproducer
            )
        disagreements.append(disagreement)
        if progress is not None:
            progress(f"DISAGREEMENT {disagreement}")
    return disagreements


def _run_fuzz_parallel(
    count: int,
    seed: int,
    labels: Optional[Sequence[str]],
    corpus_dir: Optional[str],
    shrink: bool,
    progress: Optional[Callable[[str], None]],
    jobs: int,
) -> List[FuzzDisagreement]:
    """The ``jobs != 1`` fuzz path: contiguous index shards per task."""
    from ..parallel.pool import TaskSpec, default_jobs, require_ok, run_tasks
    from ..parallel.tasks import fuzz_task, shard_ranges

    if jobs <= 0:
        jobs = default_jobs()
    # A few shards per worker keeps the pool busy when one shard hits
    # an expensive shrink; shards stay contiguous so merge order is
    # index order.
    ranges = shard_ranges(count, jobs * 4)
    tasks = [
        TaskSpec(
            key=f"fuzz[{start}:{stop}]",
            payload={
                "count": count,
                "seed": seed,
                "labels": list(labels) if labels else None,
                "start": start,
                "stop": stop,
                "shrink": shrink,
            },
        )
        for start, stop in ranges
    ]

    checked = 0

    def report_progress(result) -> None:
        nonlocal checked
        if progress is None or not result.ok:
            return
        checked += result.value["checked"]
        progress(f"{checked}/{count} systems checked")

    results = require_ok(run_tasks(
        fuzz_task, tasks, jobs=jobs, progress=report_progress,
    ))
    disagreements: List[FuzzDisagreement] = []
    merged = [
        entry
        for result in results
        for entry in result.value["disagreements"]
    ]
    merged.sort(key=lambda entry: entry["index"])
    for entry in merged:
        _count_disagreement(entry["label"], entry["kind"])
        disagreement = FuzzDisagreement(
            seed=entry["seed"],
            label=entry["label"],
            kind=entry["kind"],
            detail=entry["detail"],
            constraints=entry["constraints"],
        )
        if corpus_dir is not None:
            disagreement.path = save_reproducer(
                corpus_dir, disagreement, system_from_json(entry["system"])
            )
        disagreements.append(disagreement)
        if progress is not None:
            progress(f"DISAGREEMENT {disagreement}")
    return disagreements
