"""Constraint-graph representations and cycle machinery.

The two solved forms of the paper — standard form (Section 2.3) and
inductive form (Section 2.4) — plus the partial online cycle detection
of Section 2.5, union-find forwarding, variable orders, and offline SCC
utilities.
"""

from .base import (
    ConstraintGraphBase,
    OP_RESOLVE,
    OP_SINK,
    OP_SOURCE,
    OP_VAR_VAR,
    Op,
)
from .cycles import SearchMode, find_chain_path
from .inductive import InductiveGraph
from .order import (
    CreationOrder,
    OrderSpec,
    RandomOrder,
    ReverseCreationOrder,
    VariableOrder,
)
from .scc import (
    SccSummary,
    strongly_connected_components,
    summarize_sccs,
    witness_map,
)
from .standard import StandardGraph
from .stats import SolverStats
from .unionfind import UnionFind

__all__ = [
    "ConstraintGraphBase",
    "CreationOrder",
    "InductiveGraph",
    "OP_RESOLVE",
    "OP_SINK",
    "OP_SOURCE",
    "OP_VAR_VAR",
    "Op",
    "OrderSpec",
    "RandomOrder",
    "ReverseCreationOrder",
    "SccSummary",
    "SearchMode",
    "SolverStats",
    "StandardGraph",
    "UnionFind",
    "VariableOrder",
    "find_chain_path",
    "strongly_connected_components",
    "summarize_sccs",
    "witness_map",
]
