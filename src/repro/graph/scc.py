"""Strongly connected components (iterative Tarjan).

Used offline only: for the benchmark statistics of Table 1 (how many
variables sit in non-trivial SCCs of the initial and final constraint
graphs) and to build the witness map of the oracle experiments.  The
online algorithm never calls this — that is the whole point of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Set, Tuple


def strongly_connected_components(
    vertices: Iterable[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> List[List[Hashable]]:
    """Return the SCCs of the directed graph, iteratively (no recursion).

    Components are returned in reverse topological order (Tarjan's
    natural output order); vertices missing from ``vertices`` but
    mentioned by ``edges`` are included automatically.
    """
    adjacency: Dict[Hashable, List[Hashable]] = {}
    for vertex in vertices:
        adjacency.setdefault(vertex, [])
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])

    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []
    counter = 0

    for root in adjacency:
        if root in index_of:
            continue
        # Explicit DFS stack of (vertex, iterator position).
        work: List[Tuple[Hashable, int]] = [(root, 0)]
        while work:
            vertex, child_pos = work.pop()
            if child_pos == 0:
                index_of[vertex] = counter
                lowlink[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack.add(vertex)
            children = adjacency[vertex]
            recursed = False
            for position in range(child_pos, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((vertex, position + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index_of[child])
            if recursed:
                continue
            if lowlink[vertex] == index_of[vertex]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return components


@dataclass(frozen=True)
class SccSummary:
    """Aggregate SCC statistics for a constraint graph (Table 1 columns)."""

    #: number of variables that sit in a non-trivial (size >= 2) SCC
    vars_in_cycles: int
    #: size of the largest SCC
    max_scc_size: int
    #: number of non-trivial SCCs
    nontrivial_sccs: int


def summarize_sccs(
    vertices: Iterable[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> SccSummary:
    """Compute the Table 1 SCC summary for a var-var constraint graph."""
    components = strongly_connected_components(vertices, edges)
    vars_in_cycles = 0
    max_size = 0
    nontrivial = 0
    for component in components:
        size = len(component)
        max_size = max(max_size, size)
        if size >= 2:
            vars_in_cycles += size
            nontrivial += 1
    return SccSummary(vars_in_cycles, max_size, nontrivial)


def witness_map(
    vertices: Iterable[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> Dict[Hashable, Hashable]:
    """Map every vertex of a non-trivial SCC to its component witness.

    The witness is the smallest member (stable and deterministic).  Only
    vertices that actually need forwarding appear in the result.
    """
    mapping: Dict[Hashable, Hashable] = {}
    for component in strongly_connected_components(vertices, edges):
        if len(component) < 2:
            continue
        witness = min(component)
        for member in component:
            if member != witness:
                mapping[member] = witness
    return mapping
