"""Partial online cycle detection (paper Figure 3).

The search is a depth-first walk that differs from ordinary DFS in one
way: it only steps to vertices *lower* in the variable order ``o(.)``
than the current vertex.  This restriction is what makes the search
cheap (Theorem 5.2: ~2.2 nodes visited on average for sparse graphs) at
the price of detecting only some cycles.

For inductive form the restriction is already implied by the edge
representation; for standard form it is essential — without it every
edge insertion would trigger a full DFS, which is impractical
(Section 2.5).  The paper also mentions an *increasing chains* variant
for SF with a higher detection rate but a much higher cost; we expose it
as :data:`SearchMode.INCREASING` for the ablation benchmark.
"""

from __future__ import annotations

import enum
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
)

from .stats import SolverStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace ← graph)
    from ..trace.sinks import TraceSink


class SearchMode(enum.Enum):
    """Direction of the rank restriction during the chain search."""

    #: follow only edges to lower-ranked vertices (the paper's algorithm)
    DECREASING = "decreasing"
    #: follow only edges to higher-ranked vertices (SF ablation, Section 4)
    INCREASING = "increasing"


def find_chain_path(
    adjacency: Sequence[Set[int]],
    find: Callable[[int], int],
    rank: Callable[[int], int],
    start: int,
    target: int,
    mode: SearchMode,
    stats: SolverStats,
    max_visits: Optional[int] = None,
    sink: Optional["TraceSink"] = None,
) -> Optional[List[int]]:
    """Search for a chain from ``start`` to ``target``.

    ``adjacency[v]`` holds raw (possibly stale) variable indices; every
    neighbour is resolved through ``find`` before use.  A neighbour ``w``
    is followed only when its rank relates to the current vertex's rank
    according to ``mode``.  Returns the path ``[start, ..., target]``
    (representatives, each vertex once) or ``None`` when no chain was
    found within the optional visit budget.

    When a trace ``sink`` is attached the search reports
    ``search.start``, one ``search.visit`` per popped node, and a
    closing ``search.end`` carrying the visit count and (on a hit) the
    cycle length; with ``sink=None`` the instrumentation is a local
    ``None`` check per visit.
    """
    stats.cycle_searches += 1
    if sink is not None:
        sink.search_start(start, target)
    if start == target:
        # A self-constraint; nothing to collapse beyond the vertex itself.
        if sink is not None:
            sink.search_end(True, 0, 1)
        return [start]
    decreasing = mode is SearchMode.DECREASING
    visited: Set[int] = {start}
    visited_add = visited.add
    parent: Dict[int, int] = {}
    stack: List[int] = [start]
    stack_pop = stack.pop
    stack_append = stack.append
    visits = 0
    while stack:
        current = stack_pop()
        visits += 1
        if sink is not None:
            sink.search_visit(current)
        if max_visits is not None and visits > max_visits:
            break
        current_rank = rank(current)
        for raw in adjacency[current]:
            neighbour = find(raw)
            if neighbour in visited or neighbour == current:
                continue
            neighbour_rank = rank(neighbour)
            if decreasing:
                if neighbour_rank >= current_rank:
                    continue
            else:
                if neighbour_rank <= current_rank:
                    continue
            visited_add(neighbour)
            parent[neighbour] = current
            if neighbour == target:
                stats.cycle_search_visits += visits
                path = _reconstruct(parent, start, target)
                if sink is not None:
                    sink.search_end(True, visits, len(path))
                return path
            stack_append(neighbour)
    stats.cycle_search_visits += visits
    if sink is not None:
        sink.search_end(False, visits, 0)
    return None


def _reconstruct(parent: Dict[int, int], start: int, target: int) -> List[int]:
    """Walk parent pointers back from ``target`` and return start..target."""
    path = [target]
    node = target
    while node != start:
        node = parent[node]
        path.append(node)
    path.reverse()
    return path
