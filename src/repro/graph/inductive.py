"""Inductive form (IF) — paper Section 2.4.

A variable-variable constraint ``X <= Y`` is stored according to the
total order ``o(.)``:

* ``o(X) > o(Y)``: successor edge ``Y in succ(X)``;
* ``o(X) < o(Y)``: predecessor edge ``X in pred(Y)``.

Either way the edge lives at the *higher*-ordered endpoint, which is
what makes the graph "inductive".  The closure rule pairs the
predecessors of a variable (sources **or** variables) with its
successors (sinks **or** variables):

    L ...-> X -> R   =>   L <= R

so — unlike SF — closure adds transitive variable-variable edges.  The
least solution is *not* explicit; it is computed afterwards by equation
(1) of the paper, sweeping variables in increasing order.

Online cycle elimination (Figure 3): inserting a successor edge
``X -> Y`` searches the predecessor chains of ``X`` for ``Y``;
inserting a predecessor edge searches the successor chains.  The
decreasing-rank restriction is implied by the representation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from ..constraints.expressions import Term
from .base import (
    ConstraintGraphBase,
    OP_RESOLVE,
    OP_SINK,
    OP_SOURCE,
    OP_VAR_VAR,
)
from .cycles import SearchMode


class InductiveGraph(ConstraintGraphBase):
    """Constraint graph in inductive form."""

    form_name = "inductive"

    def add_var_var(self, left: int, right: int) -> None:
        """Process ``X <= Y``, routing the edge by the variable order.

        The bodies of ``_add_successor`` / ``_add_predecessor`` are
        inlined here: this method runs once per ``vv`` worklist
        operation — by far the most frequent operation under IF, whose
        closure adds transitive var-var edges — and the extra method
        call plus repeated `find` frames were measurable in profiles.
        """
        stats = self.stats
        stats.work += 1
        sink = self.sink
        parent = self._uf_parent
        if parent[left] != left:
            left = self.find(left)
        if parent[right] != right:
            right = self.find(right)
        if left == right:
            stats.self_edges += 1
            if sink is not None:
                sink.edge("vv", left, right, "self")
            return
        ranks = self._ranks
        if ranks[left] > ranks[right]:
            # Successor edge stored at `left`.
            bucket = self.succ_vars[left]
            if right in bucket:
                stats.redundant += 1
                if sink is not None:
                    sink.edge("vv", left, right, "redundant")
                return
            if self.online_cycles:
                # A predecessor chain right -> ... -> left plus the new
                # edge left -> right closes a cycle.
                if self._search_and_collapse(
                    self.pred_vars, left, right, SearchMode.DECREASING
                ):
                    if sink is not None:
                        sink.edge("vv", left, right, "cycle")
                    return
            bucket.add(right)
            if self._journal_succ is not None:
                self._journal_succ[left].append(right)
            if sink is not None:
                sink.edge("vv", left, right, "added")
            emit = self.emit
            for pred in self.pred_vars[left]:
                emit((OP_VAR_VAR, pred, right))
            for term in self.sources[left]:
                emit((OP_SOURCE, term, right))
        else:
            # Predecessor edge stored at `right`.
            bucket = self.pred_vars[right]
            if left in bucket:
                stats.redundant += 1
                if sink is not None:
                    sink.edge("vv", left, right, "redundant")
                return
            if self.online_cycles:
                # A successor chain right -> ... -> left plus the new
                # edge closes a cycle.
                if self._search_and_collapse(
                    self.succ_vars, right, left, SearchMode.DECREASING
                ):
                    if sink is not None:
                        sink.edge("vv", left, right, "cycle")
                    return
            bucket.add(left)
            if self._journal_pred is not None:
                self._journal_pred[right].append(left)
            if sink is not None:
                sink.edge("vv", left, right, "added")
            emit = self.emit
            for succ in self.succ_vars[right]:
                emit((OP_VAR_VAR, left, succ))
            for term in self.sinks[right]:
                emit((OP_SINK, left, term))

    def add_source(self, term: Term, var_index: int) -> None:
        """Process ``c(...) <= X`` (sources sit in predecessor position)."""
        stats = self.stats
        stats.work += 1
        trace_sink = self.sink
        if self._uf_parent[var_index] != var_index:
            var_index = self.find(var_index)
        bucket = self.sources[var_index]
        # Single-probe redundancy check (see StandardGraph.add_source).
        size = len(bucket)
        bucket.add(term)
        if len(bucket) == size:
            stats.redundant += 1
            if trace_sink is not None:
                trace_sink.edge("sv", term, var_index, "redundant")
            return
        if self._journal_sources is not None:
            self._journal_sources[var_index].append(term)
        if trace_sink is not None:
            trace_sink.edge("sv", term, var_index, "added")
        emit = self.emit
        for succ in self.succ_vars[var_index]:
            emit((OP_SOURCE, term, succ))
        for sink in self.sinks[var_index]:
            emit((OP_RESOLVE, term, sink))

    def add_sink(self, var_index: int, term: Term) -> None:
        """Process ``X <= c(...)`` (sinks sit in successor position)."""
        stats = self.stats
        stats.work += 1
        trace_sink = self.sink
        if self._uf_parent[var_index] != var_index:
            var_index = self.find(var_index)
        bucket = self.sinks[var_index]
        size = len(bucket)
        bucket.add(term)
        if len(bucket) == size:
            stats.redundant += 1
            if trace_sink is not None:
                trace_sink.edge("vs", var_index, term, "redundant")
            return
        if self._journal_sinks is not None:
            self._journal_sinks[var_index].append(term)
        if trace_sink is not None:
            trace_sink.edge("vs", var_index, term, "added")
        emit = self.emit
        for pred in self.pred_vars[var_index]:
            emit((OP_SINK, pred, term))
        for source in self.sources[var_index]:
            emit((OP_RESOLVE, source, term))

    # ------------------------------------------------------------------
    # Least solution — equation (1) of the paper.
    # ------------------------------------------------------------------
    def compute_least_solution(self) -> Dict[int, FrozenSet[Term]]:
        """Compute ``LS`` for every representative variable.

        ``LS(Y) = sources(Y) ∪ ⋃ { LS(X) | X in pred(Y) }`` evaluated in
        increasing order of ``o(.)`` — every variable predecessor has a
        strictly smaller rank, so a single sweep suffices.
        """
        reps: List[int] = [
            rep for rep in self.unionfind.representatives()
            if rep < self.num_vars
        ]
        reps.sort(key=self.rank)
        solution: Dict[int, FrozenSet[Term]] = {}
        for rep in reps:
            preds = self.canonical_predecessors(rep)
            if not preds:
                solution[rep] = frozenset(self.sources[rep])
                continue
            merged = set(self.sources[rep])
            for pred in preds:
                merged.update(solution[pred])
            solution[rep] = frozenset(merged)
        return solution
