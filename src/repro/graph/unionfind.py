"""Union-find with caller-chosen witnesses.

Collapsing a cycle redirects every variable on the cycle to a *witness*
variable through forwarding pointers (paper Section 2.5).  Unlike
union-by-rank, the solver must control which element becomes the
representative (the lowest variable in the order ``o(.)``, to preserve
inductive form), so :meth:`UnionFind.union_into` takes the witness
explicitly.  Path compression keeps finds amortized near-constant.
"""

from __future__ import annotations

from typing import Iterator, List


class UnionFind:
    """Disjoint sets over the integers ``0..n-1`` with explicit witnesses."""

    __slots__ = ("_parent", "_collapsed")

    def __init__(self, size: int = 0) -> None:
        self._parent: List[int] = list(range(size))
        #: number of elements that have been merged away (non-representatives)
        self._collapsed = 0

    def __len__(self) -> int:
        return len(self._parent)

    def grow(self, new_size: int) -> None:
        """Extend the universe to ``new_size`` elements (monotone)."""
        current = len(self._parent)
        if new_size > current:
            self._parent.extend(range(current, new_size))

    def find(self, element: int) -> int:
        """Return the representative of ``element`` with path compression."""
        parent = self._parent
        root = parent[element]
        if root == element:
            # Fast path: most finds hit a representative directly.
            return root
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union_into(self, witness: int, absorbed: int) -> bool:
        """Merge the set of ``absorbed`` into the set of ``witness``.

        Both arguments may be non-representatives; their roots are merged.
        Returns ``False`` if they were already in the same set.
        """
        witness_root = self.find(witness)
        absorbed_root = self.find(absorbed)
        if witness_root == absorbed_root:
            return False
        self._parent[absorbed_root] = witness_root
        self._collapsed += 1
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def is_representative(self, element: int) -> bool:
        return self._parent[element] == element

    @property
    def collapsed_count(self) -> int:
        """How many elements have been forwarded into another set."""
        return self._collapsed

    def representatives(self) -> Iterator[int]:
        """Iterate over all current representatives in index order."""
        for element, parent in enumerate(self._parent):
            if element == parent:
                yield element
