"""Standard form (SF) — paper Section 2.3.

All variable-variable constraints are successor edges; sources live in
predecessor position, sinks in successor position.  The closure rule

    L ...-> X -> R   =>   L <= R      (L always a source term)

propagates source terms forward to every reachable variable, so the
final graph contains the least solution explicitly: ``LS(X)`` is exactly
the source set of ``X``.

Online cycle elimination for SF (Section 2.5): when adding a successor
edge ``X -> Y``, search along successor edges *from Y* for a successor
chain back to ``X``, following only edges that point to lower-indexed
variables.  The paper's "increasing chains" ablation flips that
restriction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..constraints.expressions import Term
from .base import (
    ConstraintGraphBase,
    OP_RESOLVE,
    OP_SOURCE,
)


class StandardGraph(ConstraintGraphBase):
    """Constraint graph in standard form."""

    form_name = "standard"

    def add_var_var(self, left: int, right: int) -> None:
        """Process the atomic constraint ``X <= Y`` (a successor edge)."""
        stats = self.stats
        stats.work += 1
        sink = self.sink
        parent = self._uf_parent
        find = self.find
        if parent[left] != left:
            left = find(left)
        if parent[right] != right:
            right = find(right)
        if left == right:
            stats.self_edges += 1
            if sink is not None:
                sink.edge("vv", left, right, "self")
            return
        bucket = self.succ_vars[left]
        if right in bucket:
            stats.redundant += 1
            if sink is not None:
                sink.edge("vv", left, right, "redundant")
            return
        if self.online_cycles:
            # Search for a successor chain right -> ... -> left; together
            # with the new edge left -> right it forms a cycle.
            collapsed = self._search_and_collapse(
                self.succ_vars, right, left, self.search_mode
            )
            if collapsed:
                # left and right are now the same vertex; the new edge
                # would be a self loop.
                left = find(left)
                right = find(right)
                if left == right:
                    if sink is not None:
                        sink.edge("vv", left, right, "cycle")
                    return
                bucket = self.succ_vars[left]
        bucket.add(right)
        if self._journal_succ is not None:
            self._journal_succ[left].append(right)
        if sink is not None:
            sink.edge("vv", left, right, "added")
        emit = self.emit
        for term in self.sources[left]:
            emit((OP_SOURCE, term, right))

    def add_source(self, term: Term, var_index: int) -> None:
        """Process ``c(...) <= X``: record and propagate forward."""
        stats = self.stats
        stats.work += 1
        trace_sink = self.sink
        if self._uf_parent[var_index] != var_index:
            var_index = self.find(var_index)
        bucket = self.sources[var_index]
        # Single-probe redundancy check: `add` reports a duplicate
        # through an unchanged size, sparing the separate `in` lookup.
        size = len(bucket)
        bucket.add(term)
        if len(bucket) == size:
            stats.redundant += 1
            if trace_sink is not None:
                trace_sink.edge("sv", term, var_index, "redundant")
            return
        if self._journal_sources is not None:
            self._journal_sources[var_index].append(term)
        if trace_sink is not None:
            trace_sink.edge("sv", term, var_index, "added")
        emit = self.emit
        for succ in self.succ_vars[var_index]:
            emit((OP_SOURCE, term, succ))
        for sink in self.sinks[var_index]:
            emit((OP_RESOLVE, term, sink))

    def add_sink(self, var_index: int, term: Term) -> None:
        """Process ``X <= c(...)``: record and resolve against sources."""
        stats = self.stats
        stats.work += 1
        trace_sink = self.sink
        if self._uf_parent[var_index] != var_index:
            var_index = self.find(var_index)
        bucket = self.sinks[var_index]
        size = len(bucket)
        bucket.add(term)
        if len(bucket) == size:
            stats.redundant += 1
            if trace_sink is not None:
                trace_sink.edge("vs", var_index, term, "redundant")
            return
        if self._journal_sinks is not None:
            self._journal_sinks[var_index].append(term)
        if trace_sink is not None:
            trace_sink.edge("vs", var_index, term, "added")
        emit = self.emit
        for source in self.sources[var_index]:
            emit((OP_RESOLVE, source, term))

    # ------------------------------------------------------------------
    # Least solution: explicit in SF.
    # ------------------------------------------------------------------
    def least_solution_of(self, var_index: int) -> frozenset:
        return frozenset(self.sources[self.find(var_index)])

    def compute_least_solution(self) -> Dict[int, FrozenSet[Term]]:
        """``LS`` for every representative — explicit in standard form.

        Canonicalized through ``find``: source terms are accumulated
        from *every* variable's bucket onto its representative, not
        read off ``sources[rep]`` alone, so the result is correct even
        if a collapse has absorbed a source-carrying vertex whose
        bucket migration is still pending on the worklist (``_absorb``
        re-emits absorbed sources as worklist operations rather than
        moving them synchronously).  Pure read — no counters or
        journals are touched.
        """
        find = self.find
        sources = self.sources
        merged: Dict[int, set] = {
            rep: set()
            for rep in self.unionfind.representatives()
            if rep < self.num_vars
        }
        for index in range(self.num_vars):
            bucket = sources[index]
            if bucket:
                merged[find(index)].update(bucket)
        return {
            rep: frozenset(terms) for rep, terms in merged.items()
        }
