"""Shared machinery of the two constraint-graph representations.

Both standard form and inductive form keep, per variable:

* ``sources`` — source terms known to flow into the variable,
* ``sinks`` — sink terms the variable flows into,
* ``succ_vars`` / ``pred_vars`` — variable-variable adjacency (SF uses
  only successor lists; IF splits edges by the order ``o(.)``).

Adjacency sets store raw integer variable ids.  Collapsed variables are
forwarded through a union-find; stale ids in adjacency sets are resolved
lazily via ``find`` whenever they are read.  Propagation never mutates
the graph directly — it *emits* atomic operations onto the engine's
worklist, which keeps the closure incremental and makes the Work metric
(one unit per processed operation) well defined.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..constraints.expressions import Term
from .cycles import SearchMode, find_chain_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace ← graph)
    from ..trace.sinks import TraceSink
from .order import VariableOrder
from .stats import SolverStats
from .unionfind import UnionFind

#: Operation tags understood by the solver engine's worklist.
OP_VAR_VAR = "vv"
OP_SOURCE = "sv"
OP_SINK = "vs"
OP_RESOLVE = "rr"

#: A worklist operation: (tag, payload, payload).
Op = Tuple[str, object, object]


class ConstraintGraphBase:
    """State and behaviour common to SF and IF graphs."""

    #: set by subclasses; used in reports
    form_name = "base"

    def __init__(
        self,
        num_vars: int,
        order: VariableOrder,
        stats: SolverStats,
        emit: Callable[[Op], None],
        online_cycles: bool = False,
        search_mode: SearchMode = SearchMode.DECREASING,
        max_search_visits: Optional[int] = None,
        sink: Optional["TraceSink"] = None,
    ) -> None:
        self.num_vars = num_vars
        self.order = order
        self.stats = stats
        self.emit = emit
        self.online_cycles = online_cycles
        self.search_mode = search_mode
        self.max_search_visits = max_search_visits
        self.sink = sink
        self.unionfind = UnionFind(num_vars)
        # Hot-path bindings: `find` and `rank` are called several times
        # per worklist operation, so shadow the convenience methods below
        # with direct bound callables (one call frame less per lookup).
        # `_uf_parent` and `_ranks` alias the underlying arrays so the
        # add_* fast paths can test "is already a representative" and
        # compare ranks with plain list indexing instead of a call.  All
        # of these stay valid across `grow` because UnionFind and
        # VariableOrder extend their backing lists in place.
        self.find = self.unionfind.find
        self.rank = order.ranks.__getitem__
        self._uf_parent = self.unionfind._parent
        self._ranks = order.ranks
        self.succ_vars: List[Set[int]] = [set() for _ in range(num_vars)]
        self.pred_vars: List[Set[int]] = [set() for _ in range(num_vars)]
        self.sources: List[Set[Term]] = [set() for _ in range(num_vars)]
        self.sinks: List[Set[Term]] = [set() for _ in range(num_vars)]
        # Insertion journals (checkpoint support): parallel per-variable
        # lists recording each bucket's successful insertions in order.
        # A set's iteration order — which the solver's Work counts depend
        # on — is a function of its insertion sequence, so reproducing a
        # set exactly after a checkpoint requires replaying that
        # sequence, not just the final contents.  ``None`` (the default)
        # disables journaling; the cost when enabled is one list append
        # per *stored* edge, nothing per redundant attempt.
        self._journal_succ: Optional[List[List[int]]] = None
        self._journal_pred: Optional[List[List[int]]] = None
        self._journal_sources: Optional[List[List[Term]]] = None
        self._journal_sinks: Optional[List[List[Term]]] = None

    def enable_journal(self) -> None:
        """Start recording bucket insertion order (for checkpoints).

        Must be called before any constraint is processed — journals
        begun mid-run would miss earlier insertions.
        """
        if self._journal_succ is not None:
            return
        if any(self.succ_vars) or any(self.pred_vars) \
                or any(self.sources) or any(self.sinks):
            raise ValueError(
                "enable_journal must be called on a pristine graph"
            )
        count = self.num_vars
        self._journal_succ = [[] for _ in range(count)]
        self._journal_pred = [[] for _ in range(count)]
        self._journal_sources = [[] for _ in range(count)]
        self._journal_sinks = [[] for _ in range(count)]

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def find(self, var_index: int) -> int:  # shadowed in __init__
        return self.unionfind.find(var_index)

    def rank(self, var_index: int) -> int:  # shadowed in __init__
        return self.order.ranks[var_index]

    def grow(self, num_vars: int) -> None:
        """Admit late-created variables (used by incremental clients)."""
        if num_vars <= self.num_vars:
            return
        self.order.ensure(num_vars)
        self.unionfind.grow(num_vars)
        for collection in (
            self.succ_vars,
            self.pred_vars,
            self.sources,
            self.sinks,
        ):
            while len(collection) < num_vars:
                collection.append(set())
        for journal in (
            self._journal_succ,
            self._journal_pred,
            self._journal_sources,
            self._journal_sinks,
        ):
            if journal is not None:
                while len(journal) < num_vars:
                    journal.append([])
        self.num_vars = num_vars

    def alias(self, var_index: int, witness_index: int) -> None:
        """Pre-collapse a variable onto a witness (oracle experiments).

        Must be called before any constraint touching ``var_index`` is
        processed; no constraint migration is performed.
        """
        self.unionfind.union_into(witness_index, var_index)

    # ------------------------------------------------------------------
    # Representation hooks (implemented by SF / IF)
    # ------------------------------------------------------------------
    def add_var_var(self, left: int, right: int) -> None:
        raise NotImplementedError

    def add_source(self, term: Term, var_index: int) -> None:
        raise NotImplementedError

    def add_sink(self, var_index: int, term: Term) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cycle collapse (shared by both forms)
    # ------------------------------------------------------------------
    def collapse_path(self, path: Sequence[int]) -> int:
        """Collapse the distinct representatives on ``path``.

        The witness is the lowest vertex in the order ``o(.)`` (this
        preserves inductive form, Section 2.5).  Every absorbed vertex's
        constraints are re-emitted against the witness through the normal
        insertion path, so the closure remains correct without a special
        cross-product step.  Returns the witness id.
        """
        nodes = []
        seen = set()
        for raw in path:
            node = self.find(raw)
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        witness = min(nodes, key=self.rank)
        self.stats.cycles_found += 1
        if self.sink is not None and len(nodes) > 1:
            self.sink.collapse(witness, tuple(nodes))
        for node in nodes:
            if node != witness:
                self._absorb(node, witness)
        return witness

    def _absorb(self, absorbed: int, witness: int) -> None:
        """Forward ``absorbed`` into ``witness`` and re-emit its edges."""
        self.unionfind.union_into(witness, absorbed)
        self.stats.vars_eliminated += 1
        emit = self.emit
        for term in self.sources[absorbed]:
            emit((OP_SOURCE, term, witness))
        for term in self.sinks[absorbed]:
            emit((OP_SINK, witness, term))
        for succ in self.succ_vars[absorbed]:
            emit((OP_VAR_VAR, witness, succ))
        for pred in self.pred_vars[absorbed]:
            emit((OP_VAR_VAR, pred, witness))
        self.sources[absorbed] = set()
        self.sinks[absorbed] = set()
        self.succ_vars[absorbed] = set()
        self.pred_vars[absorbed] = set()
        if self._journal_succ is not None:
            self._journal_succ[absorbed] = []
            self._journal_pred[absorbed] = []
            self._journal_sources[absorbed] = []
            self._journal_sinks[absorbed] = []

    def collapse_all_sccs(self) -> int:
        """Collapse every non-trivial SCC of the current var-var graph.

        This is the *periodic simplification* baseline from the paper's
        introduction (cf. [FA96, FF97, MW97]): a full offline pass,
        run every so often, as opposed to the partial online search.
        Returns the number of variables eliminated by this sweep.
        """
        from .scc import strongly_connected_components

        vertices = [
            rep for rep in self.unionfind.representatives()
            if rep < self.num_vars
        ]
        edges = []
        for rep in vertices:
            for succ in self.canonical_successors(rep):
                edges.append((rep, succ))
            for pred in self.canonical_predecessors(rep):
                edges.append((pred, rep))
        eliminated_before = self.stats.vars_eliminated
        for component in strongly_connected_components(vertices, edges):
            if len(component) >= 2:
                self.collapse_path(component)
        return self.stats.vars_eliminated - eliminated_before

    def _search_and_collapse(
        self,
        adjacency: Sequence[Set[int]],
        start: int,
        target: int,
        mode: SearchMode,
    ) -> bool:
        """Run the partial chain search; collapse and report any cycle."""
        path = find_chain_path(
            adjacency,
            self.find,
            self.rank,
            start,
            target,
            mode,
            self.stats,
            self.max_search_visits,
            self.sink,
        )
        if path is None:
            return False
        self.collapse_path(path)
        return True

    # ------------------------------------------------------------------
    # Final-graph accounting
    # ------------------------------------------------------------------
    def canonical_successors(self, var_index: int) -> Set[int]:
        """Deduplicated, find-resolved successor set (no self loops)."""
        rep = self.find(var_index)
        out = {self.find(raw) for raw in self.succ_vars[rep]}
        out.discard(rep)
        return out

    def canonical_predecessors(self, var_index: int) -> Set[int]:
        rep = self.find(var_index)
        out = {self.find(raw) for raw in self.pred_vars[rep]}
        out.discard(rep)
        return out

    def finalize_statistics(self) -> None:
        """Fill the final edge counts into the stats object."""
        var_var = 0
        source_edges = 0
        sink_edges = 0
        for rep in self.unionfind.representatives():
            if rep >= self.num_vars:
                continue
            var_var += len(self.canonical_successors(rep))
            var_var += len(self.canonical_predecessors(rep))
            source_edges += len(self.sources[rep])
            sink_edges += len(self.sinks[rep])
        self.stats.finalize_edges(var_var, source_edges, sink_edges)

    def representatives(self) -> List[int]:
        return [rep for rep in self.unionfind.representatives()]

    def compute_least_solution(self):
        """``LS`` for every representative; implemented per graph form.

        Standard form reads it off the explicit source buckets
        (canonicalized through ``find``); inductive form evaluates
        equation (1) in rank order.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not compute least solutions"
        )
