"""Counters reported by the solver.

``work`` is the paper's **Work** column (Tables 2 and 3): the total
number of *attempted* atomic edge additions, including redundant
re-additions of edges already present (all of Section 5 is stated in
this quantity).  The other reported columns map onto this container as

* **Edges** (Tables 2 and 3) — :attr:`final_edges`,
* **s** (Tables 2 and 3, the time column) — :attr:`total_seconds`,
* **Elim** (Table 3) — :attr:`vars_eliminated`.

The cycle-search counters back Theorem 5.2's claim that the partial
search visits a small constant number of nodes on average
(:attr:`mean_search_visits` ≈ 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass(slots=True)
class SolverStats:
    """Mutable statistics accumulated during one solver run.

    Declared with ``slots=True``: the counters are incremented on every
    worklist operation, and slot access keeps those increments off the
    instance-dict path.
    """

    #: attempted atomic edge additions (incl. redundant); the Work
    #: column of Tables 2 and 3
    work: int = 0
    #: additions that found the edge already present
    redundant: int = 0
    #: additions dropped because source and target had been collapsed
    self_edges: int = 0
    #: applications of the resolution rules R (source-meets-sink events)
    resolutions: int = 0
    #: inconsistent constraints discovered (constructor clashes etc.)
    clashes: int = 0

    #: online cycle detection: searches started / nodes visited / cycles hit
    cycle_searches: int = 0
    cycle_search_visits: int = 0
    cycles_found: int = 0
    #: variables eliminated by collapsing (forwarded into a witness);
    #: the Elim column of Table 3
    vars_eliminated: int = 0
    #: full offline SCC sweeps performed (periodic policy only)
    periodic_sweeps: int = 0

    #: wall-clock seconds for closure and for least-solution computation
    closure_seconds: float = 0.0
    least_solution_seconds: float = 0.0

    #: final (deduplicated) edge counts, filled in after closure
    final_var_var_edges: int = 0
    final_source_edges: int = 0
    final_sink_edges: int = 0

    def finalize_edges(self, var_var: int, source: int, sink: int) -> None:
        self.final_var_var_edges = var_var
        self.final_source_edges = source
        self.final_sink_edges = sink

    @property
    def final_edges(self) -> int:
        """Total distinct edges in the final graph (the Edges column of
        Tables 2 and 3)."""
        return (
            self.final_var_var_edges
            + self.final_source_edges
            + self.final_sink_edges
        )

    @property
    def total_seconds(self) -> float:
        """Closure plus least-solution time — the ``s`` (time) column of
        Tables 2 and 3 (the paper's IF convention)."""
        return self.closure_seconds + self.least_solution_seconds

    @property
    def mean_search_visits(self) -> float:
        """Average nodes visited per cycle search (Theorem 5.2's quantity)."""
        if self.cycle_searches == 0:
            return 0.0
        return self.cycle_search_visits / self.cycle_searches

    @property
    def detection_rate(self) -> float:
        """Fraction of partial searches that found a cycle.

        This is the per-*search* hit rate, observable from one run's
        counters alone.  It is distinct from Figure 11's per-*variable*
        detection fraction (variables eliminated online over variables
        in final-graph SCCs), which needs the final SCC denominator —
        see :func:`repro.experiments.figures.figure11` and the
        ``python -m repro.trace`` report for that quantity.
        """
        if self.cycle_searches == 0:
            return 0.0
        return self.cycles_found / self.cycle_searches

    @property
    def visits_per_insertion(self) -> float:
        """Cycle-search nodes visited per unit of Work.

        Theorem 5.2 bounds the *per-search* visit count
        (:attr:`mean_search_visits` ≈ 2.2); this amortizes the same
        numerator over every attempted atomic edge addition (the Work
        column of Tables 2 and 3) instead, so it reads as "how much
        cycle-detection overhead does one insertion carry".  Plain and
        Oracle configurations search nothing, so it is exactly 0 there.
        """
        if self.work == 0:
            return 0.0
        return self.cycle_search_visits / self.work

    @property
    def collapse_ratio(self) -> float:
        """Mean variables eliminated per detected cycle.

        Numerator is Table 3's Elim column (:attr:`vars_eliminated`);
        denominator is the number of partial searches that hit
        (:attr:`cycles_found`).  A ratio above 1 means detected cycles
        collapse more than one variable each — the amplification behind
        Figure 11's per-variable detection fractions exceeding the
        per-search hit rate.
        """
        if self.cycles_found == 0:
            return 0.0
        return self.vars_eliminated / self.cycles_found

    #: ``as_dict`` keys that are derived properties, not stored fields.
    DERIVED_KEYS = (
        "final_edges",
        "total_seconds",
        "mean_search_visits",
        "detection_rate",
        "visits_per_insertion",
        "collapse_ratio",
    )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by the experiment report writers.

        Contains every stored counter plus the derived properties named
        in :data:`DERIVED_KEYS`; :meth:`from_dict` inverts it exactly
        (derived keys are recomputed, so the pair round-trips).
        """
        return {
            "work": self.work,
            "redundant": self.redundant,
            "self_edges": self.self_edges,
            "resolutions": self.resolutions,
            "clashes": self.clashes,
            "cycle_searches": self.cycle_searches,
            "cycle_search_visits": self.cycle_search_visits,
            "cycles_found": self.cycles_found,
            "vars_eliminated": self.vars_eliminated,
            "periodic_sweeps": self.periodic_sweeps,
            "final_edges": self.final_edges,
            "final_var_var_edges": self.final_var_var_edges,
            "final_source_edges": self.final_source_edges,
            "final_sink_edges": self.final_sink_edges,
            "closure_seconds": self.closure_seconds,
            "least_solution_seconds": self.least_solution_seconds,
            "total_seconds": self.total_seconds,
            "mean_search_visits": self.mean_search_visits,
            "detection_rate": self.detection_rate,
            "visits_per_insertion": self.visits_per_insertion,
            "collapse_ratio": self.collapse_ratio,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "SolverStats":
        """Rebuild stats from :meth:`as_dict` output.

        Derived keys are ignored (they are recomputed on access), and
        unknown keys raise so schema drift fails loudly.
        """
        field_names = {f.name for f in fields(cls)}
        unknown = set(payload) - field_names - set(cls.DERIVED_KEYS)
        if unknown:
            raise KeyError(
                f"unknown SolverStats keys: {sorted(unknown)}"
            )
        stats = cls()
        for name in field_names:
            if name in payload:
                setattr(stats, name, payload[name])
        return stats
