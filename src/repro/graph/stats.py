"""Counters reported by the solver.

``work`` is the paper's Work column: the total number of *attempted*
atomic edge additions, including redundant re-additions of edges already
present (Tables 2 and 3 and all of Section 5 are stated in this
quantity).  The cycle-search counters back Theorem 5.2's claim that the
partial search visits a small constant number of nodes on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(slots=True)
class SolverStats:
    """Mutable statistics accumulated during one solver run.

    Declared with ``slots=True``: the counters are incremented on every
    worklist operation, and slot access keeps those increments off the
    instance-dict path.
    """

    #: attempted atomic edge additions (incl. redundant); the Work metric
    work: int = 0
    #: additions that found the edge already present
    redundant: int = 0
    #: additions dropped because source and target had been collapsed
    self_edges: int = 0
    #: applications of the resolution rules R (source-meets-sink events)
    resolutions: int = 0
    #: inconsistent constraints discovered (constructor clashes etc.)
    clashes: int = 0

    #: online cycle detection: searches started / nodes visited / cycles hit
    cycle_searches: int = 0
    cycle_search_visits: int = 0
    cycles_found: int = 0
    #: variables eliminated by collapsing (forwarded into a witness)
    vars_eliminated: int = 0
    #: full offline SCC sweeps performed (periodic policy only)
    periodic_sweeps: int = 0

    #: wall-clock seconds for closure and for least-solution computation
    closure_seconds: float = 0.0
    least_solution_seconds: float = 0.0

    #: final (deduplicated) edge counts, filled in after closure
    final_var_var_edges: int = 0
    final_source_edges: int = 0
    final_sink_edges: int = 0

    def finalize_edges(self, var_var: int, source: int, sink: int) -> None:
        self.final_var_var_edges = var_var
        self.final_source_edges = source
        self.final_sink_edges = sink

    @property
    def final_edges(self) -> int:
        """Total distinct edges in the final graph (paper's Edges column)."""
        return (
            self.final_var_var_edges
            + self.final_source_edges
            + self.final_sink_edges
        )

    @property
    def total_seconds(self) -> float:
        """Closure plus least-solution time (the paper's IF convention)."""
        return self.closure_seconds + self.least_solution_seconds

    @property
    def mean_search_visits(self) -> float:
        """Average nodes visited per cycle search (Theorem 5.2's quantity)."""
        if self.cycle_searches == 0:
            return 0.0
        return self.cycle_search_visits / self.cycle_searches

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view used by the experiment report writers."""
        return {
            "work": self.work,
            "redundant": self.redundant,
            "self_edges": self.self_edges,
            "resolutions": self.resolutions,
            "clashes": self.clashes,
            "cycle_searches": self.cycle_searches,
            "cycle_search_visits": self.cycle_search_visits,
            "cycles_found": self.cycles_found,
            "vars_eliminated": self.vars_eliminated,
            "periodic_sweeps": self.periodic_sweeps,
            "final_edges": self.final_edges,
            "final_var_var_edges": self.final_var_var_edges,
            "final_source_edges": self.final_source_edges,
            "final_sink_edges": self.final_sink_edges,
            "closure_seconds": self.closure_seconds,
            "least_solution_seconds": self.least_solution_seconds,
            "total_seconds": self.total_seconds,
            "mean_search_visits": self.mean_search_visits,
        }
