"""Variable orders ``o(.)`` for inductive form and partial cycle search.

The paper assumes a *random* total order on variables and reports that
random performs as well as or better than any other order tried
(Section 2.4).  We provide random, creation, and reverse-creation orders
so the ablation benchmark can compare them.

An order is materialized as a rank array: ``rank[i]`` is ``o(X_i)``,
a permutation of ``0..n-1``.  Ranks are extended deterministically if a
variable is created after materialization (new variables get the next
highest ranks), which keeps incremental use well-defined.
"""

from __future__ import annotations

import random
from typing import List, Protocol


class OrderSpec(Protocol):
    """Factory turning a variable count into a rank array."""

    name: str

    def ranks(self, num_vars: int) -> List[int]:
        """Return ``rank[i] = o(X_i)``, a permutation of ``0..n-1``."""


class RandomOrder:
    """A uniformly random order, deterministic in the seed (the default)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"random(seed={seed})"

    def ranks(self, num_vars: int) -> List[int]:
        positions = list(range(num_vars))
        random.Random(self.seed).shuffle(positions)
        # positions[r] = which variable has rank r; invert to rank-by-var.
        ranks = [0] * num_vars
        for rank, var_index in enumerate(positions):
            ranks[var_index] = rank
        return ranks


class CreationOrder:
    """Variables are ordered by creation index (o(X_i) = i)."""

    name = "creation"

    def ranks(self, num_vars: int) -> List[int]:
        return list(range(num_vars))


class ReverseCreationOrder:
    """Variables are ordered by reversed creation index."""

    name = "reverse-creation"

    def ranks(self, num_vars: int) -> List[int]:
        return list(range(num_vars - 1, -1, -1))


class VariableOrder:
    """A materialized order supporting growth for late-created variables."""

    __slots__ = ("ranks", "spec_name")

    def __init__(self, spec: OrderSpec, num_vars: int) -> None:
        self.ranks: List[int] = spec.ranks(num_vars)
        self.spec_name = spec.name

    def rank(self, var_index: int) -> int:
        self.ensure(var_index + 1)
        return self.ranks[var_index]

    def ensure(self, num_vars: int) -> None:
        """Extend the rank array so indices below ``num_vars`` are valid."""
        while len(self.ranks) < num_vars:
            self.ranks.append(len(self.ranks))

    def __len__(self) -> int:
        return len(self.ranks)
