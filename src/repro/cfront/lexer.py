"""A hand-written lexer for the C subset.

Handles identifiers/keywords, integer, float, character and string
constants (with the usual escapes), both comment styles, and skips
preprocessor directives (the frontend consumes already-preprocessed or
directive-free source, like the paper's benchmarks).
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError
from .tokens import (
    CHAR_CONST,
    EOF,
    FLOAT_CONST,
    IDENT,
    INT_CONST,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATORS,
    STRING_CONST,
    Token,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")


class Lexer:
    """Single-pass lexer over a source string."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def tokens(self) -> List[Token]:
        """Lex the whole input, appending a single EOF token."""
        out = list(self._iter_tokens())
        out.append(Token(EOF, "", self.line, self.column))
        return out

    # ------------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        source = self.source
        length = len(source)
        while self.pos < length:
            char = source[self.pos]
            if char in " \t\r":
                self._advance(1)
                continue
            if char == "\n":
                self._newline()
                continue
            if char == "#":
                self._skip_directive()
                continue
            if char == "/" and self.pos + 1 < length:
                after = source[self.pos + 1]
                if after == "/":
                    self._skip_line_comment()
                    continue
                if after == "*":
                    self._skip_block_comment()
                    continue
            if char in _IDENT_START:
                yield self._lex_ident()
                continue
            if char in _DIGITS or (
                char == "."
                and self.pos + 1 < length
                and source[self.pos + 1] in _DIGITS
            ):
                yield self._lex_number()
                continue
            if char == '"':
                yield self._lex_string()
                continue
            if char == "'":
                yield self._lex_char()
                continue
            punct = self._match_punct()
            if punct is not None:
                yield punct
                continue
            raise LexError(
                f"unexpected character {char!r}", self.line, self.column
            )

    # ------------------------------------------------------------------
    # Movement helpers
    # ------------------------------------------------------------------
    def _advance(self, count: int) -> None:
        self.pos += count
        self.column += count

    def _newline(self) -> None:
        self.pos += 1
        self.line += 1
        self.column = 1

    def _skip_directive(self) -> None:
        """Skip a preprocessor line, honouring backslash continuations."""
        source = self.source
        length = len(source)
        while self.pos < length:
            if source[self.pos] == "\n":
                if self.pos > 0 and source[self.pos - 1] == "\\":
                    self._newline()
                    continue
                self._newline()
                return
            self.pos += 1
            self.column += 1

    def _skip_line_comment(self) -> None:
        source = self.source
        length = len(source)
        while self.pos < length and source[self.pos] != "\n":
            self.pos += 1

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        self._advance(2)
        source = self.source
        length = len(source)
        while self.pos < length:
            char = source[self.pos]
            if (char == "*" and self.pos + 1 < length
                    and source[self.pos + 1] == "/"):
                self._advance(2)
                return
            if char == "\n":
                self._newline()
            else:
                self._advance(1)
        raise LexError("unterminated block comment", start_line, start_col)

    # ------------------------------------------------------------------
    # Token classes
    # ------------------------------------------------------------------
    def _lex_ident(self) -> Token:
        start = self.pos
        line, column = self.line, self.column
        source = self.source
        length = len(source)
        while self.pos < length and source[self.pos] in _IDENT_CONT:
            self._advance(1)
        text = source[start : self.pos]
        kind = KEYWORD if text in KEYWORDS else IDENT
        return Token(kind, text, line, column)

    def _lex_number(self) -> Token:
        start = self.pos
        line, column = self.line, self.column
        source = self.source
        length = len(source)
        is_float = False
        if source[self.pos] == "0" and self.pos + 1 < length and source[
            self.pos + 1
        ] in "xX":
            self._advance(2)
            while self.pos < length and source[self.pos] in _HEX_DIGITS:
                self._advance(1)
        else:
            while self.pos < length and source[self.pos] in _DIGITS:
                self._advance(1)
            if self.pos < length and source[self.pos] == ".":
                is_float = True
                self._advance(1)
                while self.pos < length and source[self.pos] in _DIGITS:
                    self._advance(1)
            if self.pos < length and source[self.pos] in "eE":
                is_float = True
                self._advance(1)
                if self.pos < length and source[self.pos] in "+-":
                    self._advance(1)
                while self.pos < length and source[self.pos] in _DIGITS:
                    self._advance(1)
        # Integer / float suffixes.
        while self.pos < length and source[self.pos] in "uUlLfF":
            if source[self.pos] in "fF":
                is_float = True
            self._advance(1)
        text = source[start : self.pos]
        kind = FLOAT_CONST if is_float else INT_CONST
        return Token(kind, text, line, column)

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance(1)
        source = self.source
        length = len(source)
        while self.pos < length:
            char = source[self.pos]
            if char == "\\":
                self._advance(2)
                continue
            if char == '"':
                self._advance(1)
                return Token(
                    STRING_CONST, source[start : self.pos], line, column
                )
            if char == "\n":
                break
            self._advance(1)
        raise LexError("unterminated string literal", line, column)

    def _lex_char(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance(1)
        source = self.source
        length = len(source)
        while self.pos < length:
            char = source[self.pos]
            if char == "\\":
                self._advance(2)
                continue
            if char == "'":
                self._advance(1)
                return Token(
                    CHAR_CONST, source[start : self.pos], line, column
                )
            if char == "\n":
                break
            self._advance(1)
        raise LexError("unterminated character literal", line, column)

    def _match_punct(self) -> Token:
        source = self.source
        for punct in PUNCTUATORS:
            if source.startswith(punct, self.pos):
                token = Token(PUNCT, punct, self.line, self.column)
                self._advance(len(punct))
                return token
        return None


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
