"""A minimal C type representation.

Andersen's analysis is type-directed only in a few places (function
decay, whether an expression is a function call through a pointer), so
the type layer is deliberately small: enough structure to answer
"is this a pointer / array / function / struct?" after typedef
resolution, without sizes or qualifiers beyond what's parsed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class CType:
    """Abstract base for all C types."""

    __slots__ = ()

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, Pointer)

    @property
    def is_array(self) -> bool:
        return isinstance(self, Array)

    @property
    def is_function(self) -> bool:
        return isinstance(self, Function)

    def decayed(self) -> "CType":
        """Array-to-pointer and function-to-pointer decay."""
        if isinstance(self, Array):
            return Pointer(self.element)
        if isinstance(self, Function):
            return Pointer(self)
        return self


@dataclass(frozen=True)
class Void(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class Scalar(CType):
    """Any arithmetic type; ``name`` is the normalized spelling."""

    name: str = "int"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Pointer(CType):
    target: CType

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class Array(CType):
    element: CType
    size: Optional[int] = None

    def __str__(self) -> str:
        inner = "" if self.size is None else str(self.size)
        return f"{self.element}[{inner}]"


@dataclass(frozen=True)
class Function(CType):
    returns: CType
    params: Tuple[CType, ...] = ()
    variadic: bool = False

    def __str__(self) -> str:
        params = ",".join(str(p) for p in self.params)
        dots = ",..." if self.variadic else ""
        return f"{self.returns}({params}{dots})"


@dataclass(frozen=True)
class Record(CType):
    """A struct or union; fields may be absent for opaque references."""

    kind: str  # "struct" or "union"
    tag: str
    #: field name -> type; None for a forward/opaque reference
    fields: Optional[Tuple[Tuple[str, CType], ...]] = None

    def __str__(self) -> str:
        return f"{self.kind} {self.tag}"

    def field_type(self, name: str) -> Optional[CType]:
        if self.fields is None:
            return None
        for field_name, field_ty in self.fields:
            if field_name == name:
                return field_ty
        return None


@dataclass(frozen=True)
class EnumType(CType):
    tag: str

    def __str__(self) -> str:
        return f"enum {self.tag}"


#: Singletons for the common cases.
VOID = Void()
INT = Scalar("int")
CHAR = Scalar("char")
DOUBLE = Scalar("double")


class TypeEnvironment:
    """Typedef and record-tag tables built up during parsing."""

    def __init__(self) -> None:
        self.typedefs: Dict[str, CType] = {}
        self.records: Dict[str, Record] = {}

    def is_typedef_name(self, name: str) -> bool:
        return name in self.typedefs

    def resolve(self, ctype: CType) -> CType:
        """Resolve typedef names and opaque record tags one level deep."""
        if isinstance(ctype, Record) and ctype.fields is None:
            return self.records.get(f"{ctype.kind} {ctype.tag}", ctype)
        return ctype
