"""Token definitions for the C frontend."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
KEYWORD = "keyword"
INT_CONST = "int"
FLOAT_CONST = "float"
CHAR_CONST = "char"
STRING_CONST = "string"
PUNCT = "punct"
EOF = "eof"

#: C89 keywords plus the few C99 ones our benchmarks use.
KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if int long register return short signed sizeof static
    struct switch typedef union unsigned void volatile while inline
    """.split()
)

#: Multi-character punctuators, longest first so the lexer can greedily
#: match (e.g. ``>>=`` before ``>>`` before ``>``).
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        """Whether this token is the punctuator ``text``."""
        return self.kind == PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Whether this token is the keyword ``text``."""
        return self.kind == KEYWORD and self.text == text

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.column}"
