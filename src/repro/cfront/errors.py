"""Frontend diagnostics."""

from __future__ import annotations

from ..errors import ReproError


class CFrontError(ReproError):
    """Base class for lexer/parser errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(CFrontError):
    """Malformed input at the character level."""


class ParseError(CFrontError):
    """Unexpected token sequence."""
