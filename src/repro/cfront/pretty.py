"""AST -> C source pretty-printer.

Used by tests (parse/print round trips) and for debugging generated
workloads.  Output is valid C for every AST the parser produces; it is
not a formatter, just a faithful serializer.
"""

from __future__ import annotations

from typing import List

from . import ast
from .types import Array, CType, Function, Pointer


def type_to_str(ctype: CType, declarator: str = "") -> str:
    """Render ``ctype`` around ``declarator`` using C's inside-out syntax."""
    if isinstance(ctype, Pointer):
        inner = f"*{declarator}"
        if isinstance(ctype.target, (Array, Function)):
            inner = f"({inner})"
        return type_to_str(ctype.target, inner)
    if isinstance(ctype, Array):
        size = "" if ctype.size is None else str(ctype.size)
        return type_to_str(ctype.element, f"{declarator}[{size}]")
    if isinstance(ctype, Function):
        params = ", ".join(type_to_str(p) for p in ctype.params)
        if ctype.variadic:
            params = f"{params}, ..." if params else "..."
        if not params:
            params = "void"
        return type_to_str(ctype.returns, f"{declarator}({params})")
    base = str(ctype)
    return f"{base} {declarator}".rstrip()


class PrettyPrinter:
    """Stateful printer with indentation tracking."""

    def __init__(self, indent: str = "    ") -> None:
        self.indent_unit = indent
        self.lines: List[str] = []
        self.depth = 0

    # ------------------------------------------------------------------
    def print_unit(self, unit: ast.TranslationUnit) -> str:
        """Serialize a whole translation unit to C source text."""
        for item in unit.items:
            self._top_level(item)
        return "\n".join(self.lines) + "\n"

    # ------------------------------------------------------------------
    def _emit(self, text: str) -> None:
        self.lines.append(f"{self.indent_unit * self.depth}{text}")

    def _top_level(self, item: ast.Node) -> None:
        if isinstance(item, ast.FunctionDef):
            self._function(item)
        elif isinstance(item, ast.Decl):
            self._emit(self._decl_text(item) + ";")
        elif isinstance(item, ast.RecordDef):
            self._record(item)
        elif isinstance(item, ast.EnumDef):
            body = ", ".join(item.enumerators)
            self._emit(f"enum {item.tag} {{ {body} }};")
        else:
            raise TypeError(f"unexpected top-level node {item!r}")

    def _record(self, record: ast.RecordDef) -> None:
        self._emit(f"{record.kind} {record.tag} {{")
        self.depth += 1
        for member in record.members:
            self._emit(type_to_str(member.type, member.name) + ";")
        self.depth -= 1
        self._emit("};")

    def _function(self, function: ast.FunctionDef) -> None:
        assert isinstance(function.type, Function)
        params = ", ".join(
            type_to_str(p.type, p.name) for p in function.params
        )
        if not params:
            params = "void"
        header = type_to_str(
            function.type.returns, f"{function.name}({params})"
        )
        self._emit(header)
        self._compound(function.body)

    def _decl_text(self, decl: ast.Decl) -> str:
        prefix = f"{decl.storage} " if decl.storage else ""
        text = prefix + type_to_str(decl.type, decl.name)
        if decl.init is not None:
            text += f" = {self._init_text(decl.init)}"
        return text

    def _init_text(self, init: ast.Node) -> str:
        if isinstance(init, ast.InitList):
            inner = ", ".join(self._init_text(i) for i in init.items)
            return f"{{ {inner} }}"
        return self.expr(init)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statement(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.Compound):
            self._compound(stmt)
        elif isinstance(stmt, ast.Decl):
            self._emit(self._decl_text(stmt) + ";")
        elif isinstance(stmt, ast.RecordDef):
            self._record(stmt)
        elif isinstance(stmt, ast.EnumDef):
            body = ", ".join(stmt.enumerators)
            self._emit(f"enum {stmt.tag} {{ {body} }};")
        elif isinstance(stmt, ast.ExprStmt):
            self._emit((self.expr(stmt.expr) if stmt.expr else "") + ";")
        elif isinstance(stmt, ast.If):
            self._emit(f"if ({self.expr(stmt.condition)})")
            self._block_or_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self._emit("else")
                self._block_or_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.While):
            self._emit(f"while ({self.expr(stmt.condition)})")
            self._block_or_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._emit("do")
            self._block_or_stmt(stmt.body)
            self._emit(f"while ({self.expr(stmt.condition)});")
        elif isinstance(stmt, ast.For):
            init = ""
            if isinstance(stmt.init, ast.Compound):
                # Declaration in for-init: print inline without braces.
                init = "; ".join(
                    self._decl_text(d)
                    for d in stmt.init.items
                    if isinstance(d, ast.Decl)
                )
            elif stmt.init is not None:
                init = self.expr(stmt.init)
            condition = self.expr(stmt.condition) if stmt.condition else ""
            step = self.expr(stmt.step) if stmt.step else ""
            self._emit(f"for ({init}; {condition}; {step})")
            self._block_or_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {self.expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self._emit("break;")
        elif isinstance(stmt, ast.Continue):
            self._emit("continue;")
        elif isinstance(stmt, ast.Switch):
            self._emit(f"switch ({self.expr(stmt.condition)})")
            self._block_or_stmt(stmt.body)
        elif isinstance(stmt, ast.Label):
            self._emit(f"{stmt.name}:")
            self._block_or_stmt(stmt.body)
        elif isinstance(stmt, ast.Goto):
            self._emit(f"goto {stmt.name};")
        elif isinstance(stmt, ast.Case):
            label = (
                "default:" if stmt.value is None
                else f"case {self.expr(stmt.value)}:"
            )
            self._emit(label)
            self._block_or_stmt(stmt.body)
        else:
            raise TypeError(f"unexpected statement {stmt!r}")

    def _compound(self, block: ast.Compound) -> None:
        self._emit("{")
        self.depth += 1
        for item in block.items:
            self._statement(item)
        self.depth -= 1
        self._emit("}")

    def _block_or_stmt(self, stmt: ast.Node) -> None:
        if isinstance(stmt, ast.Compound):
            self._compound(stmt)
        else:
            self.depth += 1
            self._statement(stmt)
            self.depth -= 1

    # ------------------------------------------------------------------
    # Expressions (fully parenthesized to sidestep precedence questions)
    # ------------------------------------------------------------------
    def expr(self, node: ast.Expr) -> str:
        """Serialize one expression (fully parenthesized)."""
        if isinstance(node, ast.Ident):
            return node.name
        if isinstance(node, (ast.IntLit, ast.FloatLit, ast.CharLit,
                             ast.StringLit)):
            return node.text
        if isinstance(node, ast.Unary):
            return f"({node.op}{self.expr(node.operand)})"
        if isinstance(node, ast.Postfix):
            return f"({self.expr(node.operand)}{node.op})"
        if isinstance(node, ast.Binary):
            left, right = self.expr(node.left), self.expr(node.right)
            return f"({left} {node.op} {right})"
        if isinstance(node, ast.Assign):
            return (
                f"{self.expr(node.target)} {node.op} {self.expr(node.value)}"
            )
        if isinstance(node, ast.Conditional):
            return (
                f"({self.expr(node.condition)} ? "
                f"{self.expr(node.then_value)} : "
                f"{self.expr(node.else_value)})"
            )
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{self.expr(node.function)}({args})"
        if isinstance(node, ast.Index):
            return f"{self.expr(node.base)}[{self.expr(node.index)}]"
        if isinstance(node, ast.Member):
            op = "->" if node.arrow else "."
            return f"{self.expr(node.base)}{op}{node.name}"
        if isinstance(node, ast.Cast):
            target = type_to_str(node.target_type)
            return f"(({target}){self.expr(node.operand)})"
        if isinstance(node, ast.SizeOf):
            if node.operand is not None:
                return f"sizeof({self.expr(node.operand)})"
            return f"sizeof({type_to_str(node.type_operand)})"
        if isinstance(node, ast.Comma):
            return f"({self.expr(node.left)}, {self.expr(node.right)})"
        raise TypeError(f"unexpected expression {node!r}")


def pretty_print(unit: ast.TranslationUnit) -> str:
    """Serialize a translation unit back to C source."""
    return PrettyPrinter().print_unit(unit)
