"""Recursive-descent parser for the C subset.

Covers the constructs the points-to benchmarks exercise: full declarator
syntax (pointers, arrays, function declarators, parenthesized
declarators for function pointers), structs/unions/enums, typedefs,
all C89 statements, and the full expression grammar with casts,
``sizeof``, and assignment operators.

The parser maintains a typedef table because C's grammar needs it to
tell declarations from expressions (the classic ``T * x;`` ambiguity).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import (
    CHAR_CONST,
    EOF,
    FLOAT_CONST,
    IDENT,
    INT_CONST,
    KEYWORD,
    PUNCT,
    STRING_CONST,
    Token,
)
from .types import (
    Array,
    CType,
    EnumType,
    Function,
    INT,
    Pointer,
    Record,
    Scalar,
    TypeEnvironment,
    VOID,
)

_TYPE_KEYWORDS = frozenset(
    "void char short int long float double signed unsigned "
    "struct union enum const volatile".split()
)
_STORAGE_KEYWORDS = frozenset(
    "typedef static extern auto register inline".split()
)

_ASSIGN_OPS = frozenset(
    ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")
)

#: binary operator precedence (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """One-file C parser producing a
    :class:`repro.cfront.ast.TranslationUnit`."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename
        self.env = TypeEnvironment()
        self._anon_counter = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != EOF:
            self.pos += 1
        return token

    def _accept(self, text: str) -> Optional[Token]:
        token = self._peek()
        if token.kind in (PUNCT, KEYWORD) and token.text == text:
            return self._next()
        return None

    def _expect(self, text: str) -> Token:
        token = self._accept(text)
        if token is None:
            actual = self._peek()
            raise ParseError(
                f"expected {text!r}, found {actual.text!r}",
                actual.line,
                actual.column,
            )
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> ast.TranslationUnit:
        """Parse the whole input as a translation unit."""
        items: List[ast.Node] = []
        while self._peek().kind != EOF:
            items.extend(self._external_declaration())
        return ast.TranslationUnit(items, self.filename)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _starts_type(self, token: Token) -> bool:
        if token.kind == KEYWORD and (
            token.text in _TYPE_KEYWORDS or token.text in _STORAGE_KEYWORDS
        ):
            return True
        return token.kind == IDENT and self.env.is_typedef_name(token.text)

    def _external_declaration(self) -> List[ast.Node]:
        storage, base_type, tag_defs = self._declaration_specifiers()
        items: List[ast.Node] = list(tag_defs)
        if self._accept(";"):
            # Pure tag declaration: "struct s { ... };"
            return items
        name, full_type = self._declarator(base_type)
        if isinstance(full_type, Function) and self._peek().is_punct("{"):
            items.append(self._function_definition(name, full_type))
            return items
        items.extend(
            self._init_declarators(name, full_type, base_type, storage)
        )
        self._expect(";")
        return items

    def _init_declarators(
        self,
        first_name: str,
        first_type: CType,
        base_type: CType,
        storage: Optional[str],
    ) -> List[ast.Node]:
        """Finish a declaration after the first declarator was parsed."""
        decls: List[ast.Node] = []
        name, full_type = first_name, first_type
        while True:
            init = None
            if self._accept("="):
                init = self._initializer()
            if storage == "typedef":
                self.env.typedefs[name] = full_type
            decls.append(ast.Decl(name, full_type, init, storage))
            if not self._accept(","):
                break
            name, full_type = self._declarator(base_type)
        return decls

    def _declaration(self) -> List[ast.Node]:
        """A block-scope declaration (ends with ';')."""
        storage, base_type, tag_defs = self._declaration_specifiers()
        items: List[ast.Node] = list(tag_defs)
        if self._accept(";"):
            return items
        name, full_type = self._declarator(base_type)
        items.extend(
            self._init_declarators(name, full_type, base_type, storage)
        )
        self._expect(";")
        return items

    def _declaration_specifiers(
        self,
    ) -> Tuple[Optional[str], CType, List[ast.Node]]:
        """Parse storage class + type specifiers.

        Returns (storage, base type, tag definitions encountered) where
        tag definitions are RecordDef/EnumDef nodes for struct bodies
        defined inline.
        """
        storage: Optional[str] = None
        scalar_words: List[str] = []
        base: Optional[CType] = None
        tag_defs: List[ast.Node] = []
        while True:
            token = self._peek()
            if token.kind == KEYWORD and token.text in _STORAGE_KEYWORDS:
                self._next()
                if token.text in ("typedef", "static", "extern"):
                    storage = token.text
                continue
            if token.kind == KEYWORD and token.text in ("const", "volatile"):
                self._next()
                continue
            if token.kind == KEYWORD and token.text in ("struct", "union"):
                record, definition = self._record_specifier(token.text)
                base = record
                if definition is not None:
                    tag_defs.append(definition)
                continue
            if token.is_keyword("enum"):
                enum_type, definition = self._enum_specifier()
                base = enum_type
                if definition is not None:
                    tag_defs.append(definition)
                continue
            if token.kind == KEYWORD and token.text in (
                "void", "char", "short", "int", "long",
                "float", "double", "signed", "unsigned",
            ):
                self._next()
                scalar_words.append(token.text)
                continue
            if (
                token.kind == IDENT
                and base is None
                and not scalar_words
                and self.env.is_typedef_name(token.text)
            ):
                self._next()
                base = self.env.typedefs[token.text]
                continue
            break
        if base is None:
            if not scalar_words:
                raise self._error("expected type specifier")
            base = self._scalar_from_words(scalar_words)
        elif scalar_words:
            raise self._error("conflicting type specifiers")
        return storage, base, tag_defs

    @staticmethod
    def _scalar_from_words(words: List[str]) -> CType:
        if words == ["void"]:
            return VOID
        normalized = " ".join(words)
        return Scalar(normalized)

    def _record_specifier(
        self, kind: str
    ) -> Tuple[Record, Optional[ast.RecordDef]]:
        self._next()  # struct / union
        tag_token = self._peek()
        if tag_token.kind == IDENT:
            self._next()
            tag = tag_token.text
        else:
            self._anon_counter += 1
            tag = f"__anon{self._anon_counter}"
        if not self._accept("{"):
            # Opaque reference; resolve via the tag table when possible.
            known = self.env.records.get(f"{kind} {tag}")
            return (known if known is not None else Record(kind, tag)), None
        members: List[ast.Decl] = []
        while not self._accept("}"):
            members.extend(self._member_declaration())
        record = Record(
            kind,
            tag,
            tuple((decl.name, decl.type) for decl in members),
        )
        self.env.records[f"{kind} {tag}"] = record
        return record, ast.RecordDef(kind, tag, members)

    def _member_declaration(self) -> List[ast.Decl]:
        _, base_type, _ = self._declaration_specifiers()
        decls: List[ast.Decl] = []
        if self._accept(";"):
            return decls
        while True:
            name, full_type = self._declarator(base_type)
            if self._accept(":"):
                self._conditional_expression()  # bit-field width, ignored
            decls.append(ast.Decl(name, full_type))
            if not self._accept(","):
                break
        self._expect(";")
        return decls

    def _enum_specifier(self) -> Tuple[EnumType, Optional[ast.EnumDef]]:
        self._next()  # enum
        tag_token = self._peek()
        if tag_token.kind == IDENT:
            self._next()
            tag = tag_token.text
        else:
            self._anon_counter += 1
            tag = f"__anon{self._anon_counter}"
        if not self._accept("{"):
            return EnumType(tag), None
        enumerators: List[str] = []
        while not self._accept("}"):
            name_token = self._next()
            if name_token.kind != IDENT:
                raise self._error("expected enumerator name")
            enumerators.append(name_token.text)
            if self._accept("="):
                self._conditional_expression()
            if not self._accept(","):
                self._expect("}")
                break
        return EnumType(tag), ast.EnumDef(tag, enumerators)

    # ------------------------------------------------------------------
    # Declarators
    # ------------------------------------------------------------------
    def _declarator(self, base: CType) -> Tuple[str, CType]:
        name, builder = self._declarator_builder()
        return name, builder(base)

    def _declarator_builder(self) -> Tuple[str, Callable[[CType], CType]]:
        pointers = 0
        while self._accept("*"):
            while self._peek().kind == KEYWORD and self._peek().text in (
                "const",
                "volatile",
            ):
                self._next()
            pointers += 1
        name, direct = self._direct_declarator_builder()

        def build(base: CType) -> CType:
            for _ in range(pointers):
                base = Pointer(base)
            return direct(base)

        return name, build

    def _direct_declarator_builder(
        self,
    ) -> Tuple[str, Callable[[CType], CType]]:
        token = self._peek()
        inner: Callable[[CType], CType]
        name = ""
        if token.is_punct("(") and self._paren_is_declarator():
            self._next()
            name, inner = self._declarator_builder()
            self._expect(")")
        elif token.kind == IDENT:
            self._next()
            name = token.text
            inner = lambda base: base  # noqa: E731 - tiny identity
        else:
            inner = lambda base: base  # noqa: E731 - abstract declarator

        suffixes: List[Callable[[CType], CType]] = []
        while True:
            if self._accept("["):
                size: Optional[int] = None
                if not self._peek().is_punct("]"):
                    size_expr = self._conditional_expression()
                    if isinstance(size_expr, ast.IntLit):
                        try:
                            size = int(size_expr.text, 0)
                        except ValueError:
                            size = None
                self._expect("]")
                suffixes.append(
                    lambda base, size=size: Array(base, size)
                )
                continue
            if self._peek().is_punct("("):
                self._next()
                params, variadic = self._parameter_list()
                suffixes.append(
                    lambda base, params=params, variadic=variadic: Function(
                        base, tuple(p.type for p in params), variadic
                    )
                )
                self._last_params = params
                continue
            break

        def build(base: CType) -> CType:
            for suffix in reversed(suffixes):
                base = suffix(base)
            return inner(base)

        return name, build

    def _paren_is_declarator(self) -> bool:
        """After seeing '(', decide declarator-paren vs parameter list."""
        after = self._peek(1)
        if after.is_punct("*") or after.is_punct("("):
            return True
        return after.kind == IDENT and not self.env.is_typedef_name(after.text)

    def _parameter_list(self) -> Tuple[List[ast.ParamDecl], bool]:
        params: List[ast.ParamDecl] = []
        variadic = False
        if self._accept(")"):
            return params, variadic
        # Special case: (void)
        if (
            self._peek().is_keyword("void")
            and self._peek(1).is_punct(")")
        ):
            self._next()
            self._expect(")")
            return params, variadic
        while True:
            if self._accept("..."):
                variadic = True
                break
            if self._starts_type(self._peek()):
                _, base_type, _ = self._declaration_specifiers()
                name, full_type = self._declarator(base_type)
            else:
                # K&R-style unnamed/untyped parameter; default to int.
                token = self._next()
                if token.kind != IDENT:
                    raise ParseError(
                        f"expected parameter, found {token.text!r}",
                        token.line,
                        token.column,
                    )
                name, full_type = token.text, INT
            params.append(ast.ParamDecl(name, full_type.decayed()))
            if not self._accept(","):
                break
        self._expect(")")
        return params, variadic

    def _type_name(self) -> CType:
        """A type-name: specifiers plus an abstract declarator."""
        _, base_type, _ = self._declaration_specifiers()
        _, full_type = self._declarator(base_type)
        return full_type

    # ------------------------------------------------------------------
    # Function definitions
    # ------------------------------------------------------------------
    def _function_definition(
        self, name: str, function_type: Function
    ) -> ast.FunctionDef:
        params = [
            ast.ParamDecl(p.name, p.type)
            for p in getattr(self, "_last_params", [])
        ]
        body = self._compound_statement()
        return ast.FunctionDef(name, function_type, params, body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._compound_statement()
        if token.is_keyword("if"):
            return self._if_statement()
        if token.is_keyword("while"):
            return self._while_statement()
        if token.is_keyword("do"):
            return self._do_statement()
        if token.is_keyword("for"):
            return self._for_statement()
        if token.is_keyword("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._expression()
            self._expect(";")
            return ast.Return(value)
        if token.is_keyword("break"):
            self._next()
            self._expect(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self._next()
            self._expect(";")
            return ast.Continue()
        if token.is_keyword("switch"):
            self._next()
            self._expect("(")
            condition = self._expression()
            self._expect(")")
            return ast.Switch(condition, self._statement())
        if token.is_keyword("case"):
            self._next()
            value = self._conditional_expression()
            self._expect(":")
            return ast.Case(value, self._statement())
        if token.is_keyword("default"):
            self._next()
            self._expect(":")
            return ast.Case(None, self._statement())
        if token.is_keyword("goto"):
            self._next()
            target = self._next()
            if target.kind != IDENT:
                raise ParseError(
                    "goto needs a label", target.line, target.column
                )
            self._expect(";")
            return ast.Goto(target.text)
        if token.is_punct(";"):
            self._next()
            return ast.ExprStmt(None)
        if (
            token.kind == IDENT
            and self._peek(1).is_punct(":")
            and not self.env.is_typedef_name(token.text)
        ):
            self._next()
            self._next()
            return ast.Label(token.text, self._statement())
        expr = self._expression()
        self._expect(";")
        return ast.ExprStmt(expr)

    def _compound_statement(self) -> ast.Compound:
        self._expect("{")
        items: List[ast.Node] = []
        while not self._accept("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated block")
            if self._starts_type(self._peek()):
                items.extend(self._declaration())
            else:
                items.append(self._statement())
        return ast.Compound(items)

    def _if_statement(self) -> ast.If:
        self._next()
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        then_branch = self._statement()
        else_branch = None
        if self._accept("else"):
            else_branch = self._statement()
        return ast.If(condition, then_branch, else_branch)

    def _while_statement(self) -> ast.While:
        self._next()
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        return ast.While(condition, self._statement())

    def _do_statement(self) -> ast.DoWhile:
        self._next()
        body = self._statement()
        self._expect("while")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(body, condition)

    def _for_statement(self) -> ast.For:
        self._next()
        self._expect("(")
        init: Optional[ast.Node] = None
        if not self._peek().is_punct(";"):
            if self._starts_type(self._peek()):
                decls = self._declaration()  # consumes ';'
                init = ast.Compound(decls)
            else:
                init = self._expression()
                self._expect(";")
        else:
            self._expect(";")
        condition = None
        if not self._peek().is_punct(";"):
            condition = self._expression()
        self._expect(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self._expression()
        self._expect(")")
        return ast.For(init, condition, step, self._statement())

    # ------------------------------------------------------------------
    # Initializers
    # ------------------------------------------------------------------
    def _initializer(self) -> ast.Node:
        if self._accept("{"):
            items: List[ast.Node] = []
            while not self._accept("}"):
                items.append(self._initializer())
                if not self._accept(","):
                    self._expect("}")
                    break
            return ast.InitList(items)
        return self._assignment_expression()

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self) -> ast.Expr:
        expr = self._assignment_expression()
        while self._accept(","):
            expr = ast.Comma(expr, self._assignment_expression())
        return expr

    def _assignment_expression(self) -> ast.Expr:
        left = self._conditional_expression()
        token = self._peek()
        if token.kind == PUNCT and token.text in _ASSIGN_OPS:
            self._next()
            right = self._assignment_expression()
            return ast.Assign(token.text, left, right)
        return left

    def _conditional_expression(self) -> ast.Expr:
        condition = self._binary_expression(0)
        if self._accept("?"):
            then_value = self._expression()
            self._expect(":")
            else_value = self._conditional_expression()
            return ast.Conditional(condition, then_value, else_value)
        return condition

    def _binary_expression(self, min_precedence: int) -> ast.Expr:
        left = self._cast_expression()
        while True:
            token = self._peek()
            precedence = (
                _BINARY_PRECEDENCE.get(token.text)
                if token.kind == PUNCT
                else None
            )
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._binary_expression(precedence + 1)
            left = ast.Binary(token.text, left, right)

    def _cast_expression(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("(") and self._starts_type(self._peek(1)):
            self._next()
            target_type = self._type_name()
            self._expect(")")
            # "(T){...}" compound literals are out of scope; a cast
            # always applies to a cast-expression.
            return ast.Cast(target_type, self._cast_expression())
        return self._unary_expression()

    def _unary_expression(self) -> ast.Expr:
        token = self._peek()
        if token.kind == PUNCT and token.text in (
            "*", "&", "-", "+", "!", "~",
        ):
            self._next()
            return ast.Unary(token.text, self._cast_expression())
        if token.kind == PUNCT and token.text in ("++", "--"):
            self._next()
            return ast.Unary(token.text, self._unary_expression())
        if token.is_keyword("sizeof"):
            self._next()
            if self._peek().is_punct("(") and self._starts_type(self._peek(1)):
                self._next()
                target_type = self._type_name()
                self._expect(")")
                return ast.SizeOf(None, target_type)
            return ast.SizeOf(self._unary_expression(), None)
        return self._postfix_expression()

    def _postfix_expression(self) -> ast.Expr:
        expr = self._primary_expression()
        while True:
            token = self._peek()
            if token.is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self._assignment_expression())
                    while self._accept(","):
                        args.append(self._assignment_expression())
                self._expect(")")
                expr = ast.Call(expr, args)
            elif token.is_punct("["):
                self._next()
                index = self._expression()
                self._expect("]")
                expr = ast.Index(expr, index)
            elif token.is_punct("."):
                self._next()
                name = self._next()
                expr = ast.Member(expr, name.text, arrow=False)
            elif token.is_punct("->"):
                self._next()
                name = self._next()
                expr = ast.Member(expr, name.text, arrow=True)
            elif token.kind == PUNCT and token.text in ("++", "--"):
                self._next()
                expr = ast.Postfix(token.text, expr)
            else:
                return expr

    def _primary_expression(self) -> ast.Expr:
        token = self._next()
        if token.kind == IDENT:
            return ast.Ident(token.text)
        if token.kind == INT_CONST:
            return ast.IntLit(token.text)
        if token.kind == FLOAT_CONST:
            return ast.FloatLit(token.text)
        if token.kind == CHAR_CONST:
            return ast.CharLit(token.text)
        if token.kind == STRING_CONST:
            text = token.text
            # Adjacent string literals concatenate.
            while self._peek().kind == STRING_CONST:
                text += self._next().text
            return ast.StringLit(text)
        if token.is_punct("("):
            expr = self._expression()
            self._expect(")")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse(source: str, filename: str = "<input>") -> ast.TranslationUnit:
    """Parse C source text into an AST."""
    return Parser(source, filename).parse()
