"""A from-scratch frontend for the C subset the benchmarks use.

Provides lexing (:mod:`repro.cfront.lexer`), parsing
(:mod:`repro.cfront.parser`), a small type layer
(:mod:`repro.cfront.types`), and a pretty-printer
(:mod:`repro.cfront.pretty`).  The AST node-count method implements the
"AST Nodes" program-size metric of paper Table 1.
"""

from . import ast, types
from .errors import CFrontError, LexError, ParseError
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .pretty import pretty_print, type_to_str

__all__ = [
    "CFrontError",
    "Lexer",
    "LexError",
    "ParseError",
    "Parser",
    "ast",
    "parse",
    "pretty_print",
    "tokenize",
    "type_to_str",
    "types",
]
