"""Abstract syntax tree for the C subset.

Nodes are plain dataclasses.  ``Node.count_nodes`` implements the
"AST Nodes" size metric of paper Table 1 (every expression, statement,
declaration, and definition node counts as one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import CType


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Node", ...]:
        """Direct child nodes (used by generic traversals)."""
        return ()

    def count_nodes(self) -> int:
        """Total number of AST nodes in this subtree (iterative)."""
        total = 0
        stack: List[Node] = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children())
        return total


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr(Node):
    __slots__ = ()


@dataclass
class Ident(Expr):
    name: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class IntLit(Expr):
    text: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class FloatLit(Expr):
    text: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class CharLit(Expr):
    text: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class StringLit(Expr):
    text: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class Unary(Expr):
    """Prefix unary: one of ``* & - + ! ~ ++ --``."""

    op: str
    operand: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


@dataclass
class Postfix(Expr):
    """Postfix ``++`` or ``--``."""

    op: str
    operand: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


@dataclass
class Assign(Expr):
    """``lhs op rhs`` where op is ``=`` or a compound assignment."""

    op: str
    target: Expr
    value: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.target, self.value)


@dataclass
class Conditional(Expr):
    condition: Expr
    then_value: Expr
    else_value: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.condition, self.then_value, self.else_value)


@dataclass
class Call(Expr):
    function: Expr
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return (self.function, *self.args)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.base, self.index)


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr
    name: str
    arrow: bool

    def children(self) -> Tuple[Node, ...]:
        return (self.base,)


@dataclass
class Cast(Expr):
    target_type: CType
    operand: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


@dataclass
class SizeOf(Expr):
    """``sizeof expr`` or ``sizeof(type)`` (operand is None for types)."""

    operand: Optional[Expr] = None
    type_operand: Optional[CType] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,) if self.operand is not None else ()


@dataclass
class Comma(Expr):
    left: Expr
    right: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt(Node):
    __slots__ = ()


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,) if self.expr is not None else ()


@dataclass
class Compound(Stmt):
    items: List[Node] = field(default_factory=list)  # Stmt or Decl

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.items)


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None

    def children(self) -> Tuple[Node, ...]:
        kids = [self.condition, self.then_branch]
        if self.else_branch is not None:
            kids.append(self.else_branch)
        return tuple(kids)


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt

    def children(self) -> Tuple[Node, ...]:
        return (self.condition, self.body)


@dataclass
class DoWhile(Stmt):
    body: Stmt
    condition: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.body, self.condition)


@dataclass
class For(Stmt):
    init: Optional[Node]  # ExprStmt-like Expr, or Decl
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt

    def children(self) -> Tuple[Node, ...]:
        kids = [k for k in (self.init, self.condition, self.step) if k]
        kids.append(self.body)
        return tuple(kids)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.value,) if self.value is not None else ()


@dataclass
class Break(Stmt):
    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class Continue(Stmt):
    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class Label(Stmt):
    """``name: stmt`` — a goto target."""

    name: str
    body: "Stmt"

    def children(self) -> Tuple[Node, ...]:
        return (self.body,)


@dataclass
class Goto(Stmt):
    name: str

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class Switch(Stmt):
    condition: Expr
    body: Stmt

    def children(self) -> Tuple[Node, ...]:
        return (self.condition, self.body)


@dataclass
class Case(Stmt):
    """``case expr:`` or ``default:`` (value None) with trailing stmt."""

    value: Optional[Expr]
    body: Stmt

    def children(self) -> Tuple[Node, ...]:
        kids = [] if self.value is None else [self.value]
        kids.append(self.body)
        return tuple(kids)


# ----------------------------------------------------------------------
# Declarations and definitions
# ----------------------------------------------------------------------
@dataclass
class Decl(Node):
    """One declarator: ``type name [= init]``.

    ``storage`` carries ``typedef/static/extern`` when present.
    """

    name: str
    type: CType
    init: Optional[Node] = None  # Expr or InitList
    storage: Optional[str] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.init,) if self.init is not None else ()


@dataclass
class InitList(Node):
    """A braced initializer ``{ a, b, ... }``."""

    items: List[Node] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.items)


@dataclass
class ParamDecl(Node):
    name: str  # may be "" for abstract declarators
    type: CType

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class FunctionDef(Node):
    name: str
    type: CType  # a types.Function
    params: List[ParamDecl] = field(default_factory=list)
    body: Compound = field(default_factory=Compound)

    def children(self) -> Tuple[Node, ...]:
        return (*self.params, self.body)


@dataclass
class RecordDef(Node):
    """A struct/union definition appearing at file or block scope."""

    kind: str
    tag: str
    members: List[Decl] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.members)


@dataclass
class EnumDef(Node):
    tag: str
    enumerators: List[str] = field(default_factory=list)

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass
class TranslationUnit(Node):
    """A whole source file."""

    items: List[Node] = field(default_factory=list)
    filename: str = "<input>"

    def children(self) -> Tuple[Node, ...]:
        return tuple(self.items)

    def functions(self) -> List[FunctionDef]:
        return [item for item in self.items if isinstance(item, FunctionDef)]
