"""A deterministic multiprocessing worker pool.

The paper's evaluation is embarrassingly parallel: every (system,
configuration) pair is an independent solve.  :func:`run_tasks` shards
such tasks across processes while keeping the properties the rest of
the repo depends on:

* **Determinism.**  Results are returned in *task submission order*,
  never completion order, so a parallel run assembles the exact same
  report a serial loop would.  ``PYTHONHASHSEED`` is pinned to ``0``
  for child interpreters unless the environment already pins it —
  work counts of the Online configurations are exact cross-process
  oracles only under a pinned hash seed (see :mod:`repro.bench`).
* **Crash isolation.**  Each in-flight task runs in its own process;
  a worker dying (segfault, OOM-kill) cannot poison a shared pool.
  Crashes and per-task timeouts are retried up to ``retries`` times
  and then reported as a failed :class:`TaskResult` *with a cause* —
  the pool never hangs on a dead child.
* **Deterministic failures fail fast.**  A worker that raises a Python
  exception reports the traceback and is *not* retried: the same
  inputs would raise again, so retrying only burns CPU.

Workers communicate over a per-task ``Pipe``; the parent multiplexes
pipes and process sentinels through :func:`multiprocessing.connection.wait`,
so a result message and a silent death are both wake-up events.

This module is deliberately generic — the bench / fuzz / suite worker
functions live in :mod:`repro.parallel.tasks`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ReproError

#: Grace period between ``terminate()`` and ``kill()`` on timeout.
_TERMINATE_GRACE_SECONDS = 2.0

#: How long one ``connection.wait`` multiplex blocks at most.
_WAIT_SECONDS = 0.1


class ParallelError(ReproError):
    """A parallel run could not produce a complete result set."""


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` (auto): one per available core."""
    return os.cpu_count() or 1


def default_start_method() -> str:
    """``fork`` where available (fast, inherits the pinned hash seed),
    else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a key (for reporting), a picklable payload,
    and an optional per-task wall-clock timeout in seconds."""

    key: str
    payload: Any = None
    timeout: Optional[float] = None


@dataclass
class TaskResult:
    """Outcome of one task, in submission order.

    ``kind`` is ``None`` on success, else one of ``"exception"`` (the
    worker raised — deterministic, not retried), ``"crash"`` (the
    worker process died without reporting), or ``"timeout"`` (the task
    or the whole run exceeded its deadline); crash and timeout failures
    are only reported after ``retries`` re-runs.
    """

    key: str
    value: Any = None
    error: Optional[str] = None
    kind: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _child_main(worker, payload, conn) -> None:
    """Child entry point: run the worker, report over the pipe.

    Any raised exception is *reported* (with its traceback) rather than
    allowed to kill the child noisily — the parent distinguishes a
    deterministic failure from a crash by whether a report arrived.
    """
    try:
        value = worker(payload)
    except BaseException:
        conn.send(("exception", traceback.format_exc()))
    else:
        conn.send(("ok", value))
    finally:
        conn.close()


class _Running:
    """Book-keeping for one in-flight task."""

    __slots__ = ("index", "attempt", "process", "conn", "started",
                 "deadline")

    def __init__(self, index, attempt, process, conn, started, deadline):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline


def _pin_hash_seed() -> None:
    """Pin ``PYTHONHASHSEED=0`` for child interpreters.

    Work counts of the Online configurations hash-partition sets, so a
    spawn-started child with a random hash seed would disagree with the
    parent.  Setting the variable here only affects interpreters
    started afterwards; fork children inherit the parent's (already
    initialized) hash state either way.
    """
    if os.environ.get("PYTHONHASHSEED") is None:
        os.environ["PYTHONHASHSEED"] = "0"


def run_tasks(
    worker: Callable[[Any], Any],
    tasks: Sequence[TaskSpec],
    jobs: Optional[int] = None,
    retries: int = 1,
    progress: Optional[Callable[[TaskResult], None]] = None,
    start_method: Optional[str] = None,
    overall_timeout: Optional[float] = None,
    pin_hash_seed: bool = True,
) -> List[TaskResult]:
    """Run every task through ``worker`` across ``jobs`` processes.

    Returns one :class:`TaskResult` per task **in submission order**.
    ``worker`` must be a picklable top-level callable taking the task
    payload and returning a picklable value.  ``progress`` is called
    once per *final* task outcome, in completion order.

    Failure semantics: worker exceptions fail immediately (kind
    ``"exception"``); crashes and per-task timeouts are re-run up to
    ``retries`` times before failing (kinds ``"crash"`` /
    ``"timeout"``).  ``overall_timeout`` bounds the whole call; on
    expiry all running children are killed and every unfinished task
    fails with kind ``"timeout"``.  The call itself never raises for
    task failures — callers inspect the results.
    """
    tasks = list(tasks)
    if jobs is None or jobs <= 0:
        jobs = default_jobs()
    if pin_hash_seed:
        _pin_hash_seed()
    ctx = multiprocessing.get_context(start_method or default_start_method())
    results: List[Optional[TaskResult]] = [None] * len(tasks)
    queue: deque = deque((index, 1) for index in range(len(tasks)))
    running: Dict[int, _Running] = {}
    overall_deadline = (
        None if overall_timeout is None
        else time.monotonic() + overall_timeout
    )

    def finish(result: TaskResult) -> None:
        results[result.index_] = result  # type: ignore[attr-defined]
        if progress is not None:
            progress(result)

    def launch(index: int, attempt: int) -> None:
        spec = tasks[index]
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(worker, spec.payload, child_conn),
            name=f"repro-parallel-{spec.key}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = None if spec.timeout is None else now + spec.timeout
        running[index] = _Running(
            index, attempt, process, parent_conn, now, deadline
        )

    def reap(entry: _Running) -> None:
        entry.process.join(timeout=_TERMINATE_GRACE_SECONDS)
        if entry.process.is_alive():  # pragma: no cover - defensive
            entry.process.kill()
            entry.process.join()
        entry.conn.close()
        del running[entry.index]

    def settle(entry: _Running, *, error=None, kind=None, value=None,
               retry_allowed: bool = True) -> None:
        spec = tasks[entry.index]
        elapsed = time.monotonic() - entry.started
        retryable = retry_allowed and kind in ("crash", "timeout")
        reap(entry)
        if error is not None and retryable and entry.attempt <= retries:
            queue.append((entry.index, entry.attempt + 1))
            return
        result = TaskResult(
            key=spec.key, value=value, error=error, kind=kind,
            attempts=entry.attempt, seconds=elapsed,
        )
        result.index_ = entry.index  # type: ignore[attr-defined]
        finish(result)

    def kill_everything(reason: str) -> None:
        for entry in list(running.values()):
            entry.process.terminate()
            settle(entry, error=reason, kind="timeout",
                   retry_allowed=False)
        while queue:
            index, attempt = queue.popleft()
            result = TaskResult(
                key=tasks[index].key, error=reason, kind="timeout",
                attempts=attempt, seconds=0.0,
            )
            result.index_ = index  # type: ignore[attr-defined]
            finish(result)

    while queue or running:
        if overall_deadline is not None and \
                time.monotonic() > overall_deadline:
            kill_everything(
                f"timeout: run exceeded its {overall_timeout:.0f}s "
                f"overall deadline"
            )
            break
        while queue and len(running) < jobs:
            index, attempt = queue.popleft()
            launch(index, attempt)
        if not running:
            continue
        waitables = []
        for entry in running.values():
            waitables.append(entry.conn)
            waitables.append(entry.process.sentinel)
        wait_for = _WAIT_SECONDS
        if overall_deadline is not None:
            wait_for = min(
                wait_for, max(0.0, overall_deadline - time.monotonic())
            )
        multiprocessing.connection.wait(waitables, timeout=wait_for)
        now = time.monotonic()
        for entry in list(running.values()):
            message = None
            if entry.conn.poll(0):
                try:
                    message = entry.conn.recv()
                except EOFError:
                    message = None
            if message is not None:
                status, body = message
                if status == "ok":
                    settle(entry, value=body)
                else:
                    settle(
                        entry,
                        error=f"worker raised:\n{body}",
                        kind="exception",
                    )
            elif entry.deadline is not None and now > entry.deadline:
                entry.process.terminate()
                settle(
                    entry,
                    error=(
                        f"timeout: task exceeded its "
                        f"{tasks[entry.index].timeout:.0f}s deadline "
                        f"(attempt {entry.attempt})"
                    ),
                    kind="timeout",
                )
            elif not entry.process.is_alive():
                settle(
                    entry,
                    error=(
                        f"worker crashed with exit code "
                        f"{entry.process.exitcode} "
                        f"(attempt {entry.attempt})"
                    ),
                    kind="crash",
                )
    # Strip the private index marker before handing results out.
    final: List[TaskResult] = []
    for index, result in enumerate(results):
        assert result is not None, f"task {tasks[index].key} unaccounted"
        if hasattr(result, "index_"):
            del result.index_  # type: ignore[attr-defined]
        final.append(result)
    return final


def require_ok(results: Sequence[TaskResult]) -> List[TaskResult]:
    """Return ``results`` if all succeeded, else raise :class:`ParallelError`
    naming every failed task and its cause."""
    failed = [result for result in results if not result.ok]
    if failed:
        details = "; ".join(
            f"{result.key} [{result.kind}, attempt {result.attempts}]: "
            f"{result.error}"
            for result in failed
        )
        raise ParallelError(
            f"{len(failed)} of {len(results)} parallel tasks failed: "
            f"{details}"
        )
    return list(results)
