"""Sharded parallel execution of (system, configuration) tasks.

The evaluation workload — every benchmark under every Table-4
configuration, every fuzzed system under every configuration — is
embarrassingly parallel, and this package shards it across processes
without giving up the repo's determinism contract: parallel reports are
byte-identical to serial ones modulo wall-clock fields, because results
are merged in task submission order and every child runs under a
pinned ``PYTHONHASHSEED``.

Entry points: ``python -m repro.bench --jobs N``, ``python -m
repro.resilience fuzz --jobs N``,
``SuiteResults(..., jobs=N)``; the generic pool is
:func:`~repro.parallel.pool.run_tasks`.  See ``docs/PARALLEL.md``.
"""

from .merge import MergeError, merge_jsonl_traces, merge_metrics_snapshots
from .pool import (
    ParallelError,
    TaskResult,
    TaskSpec,
    default_jobs,
    default_start_method,
    require_ok,
    run_tasks,
)

__all__ = [
    "MergeError",
    "ParallelError",
    "TaskResult",
    "TaskSpec",
    "default_jobs",
    "default_start_method",
    "merge_jsonl_traces",
    "merge_metrics_snapshots",
    "require_ok",
    "run_tasks",
]
