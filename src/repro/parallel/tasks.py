"""Top-level worker functions for :func:`repro.parallel.pool.run_tasks`.

Workers must be importable module-level callables (the ``spawn`` start
method pickles them by reference) and must rebuild their inputs from
small picklable payloads: a worker re-derives its benchmark from the
suite registry (:func:`repro.workloads.benchmark`) and its fuzz systems
from the seed stream, rather than receiving megabytes of constraint
system over the pipe.  Everything a worker returns is a plain
dict/list/tuple structure the parent merges deterministically.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from ..experiments.config import options_for
from ..resilience.budget import SolveBudget
from ..resilience.errors import BudgetExceededError


def bench_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Measure one (benchmark, experiment) pair; the bench worker.

    Payload keys: ``benchmark`` (a :data:`repro.workloads.FULL_SUITE`
    name), ``experiment`` (Table-4 label), ``seed``, ``repeats``,
    ``suite`` (label metadata only), ``trace`` / ``metrics`` (bools —
    attach a :class:`~repro.trace.histogram.HistogramSink` /
    :class:`~repro.metrics.sink.MetricsSink` and return their
    serialized state), ``budget_seconds`` (optional per-solve
    :class:`~repro.resilience.budget.SolveBudget` deadline).

    Returns ``{"status": "ok", "counters", "wall_times", "telemetry",
    "metrics"}`` — the exact ingredients of one serial
    :class:`~repro.bench.harness.BenchRecord` — or ``{"status":
    "timeout", "detail"}`` when the budget expires mid-solve.
    """
    from ..bench.measure import measure_system
    from ..workloads import benchmark

    bench = benchmark(payload["benchmark"])
    system = bench.program.system
    label = payload["experiment"]
    options = options_for(label, seed=payload["seed"])
    budget_seconds = payload.get("budget_seconds")
    if budget_seconds is not None:
        options = options.replace(
            budget=SolveBudget(deadline_seconds=budget_seconds)
        )
    sink = None
    if payload.get("trace"):
        from ..trace.histogram import HistogramSink

        sink = HistogramSink(label=f"{bench.name}/{label}")
    registry = None
    if payload.get("metrics"):
        from ..metrics.registry import MetricsRegistry
        from ..metrics.sink import MetricsSink
        from ..trace.sinks import combine

        registry = MetricsRegistry()
        metrics_sink = MetricsSink.for_options(
            options,
            registry=registry,
            suite=payload.get("suite", ""),
            benchmark=bench.name,
        )
        options = options.replace(sink=combine(sink, metrics_sink))
    elif sink is not None:
        options = options.replace(sink=sink)
    try:
        measured = measure_system(
            system, options, repeats=payload["repeats"]
        )
    except BudgetExceededError as error:
        return {"status": "timeout", "detail": str(error)}
    result: Dict[str, Any] = {
        "status": "ok",
        "counters": measured.counters,
        "wall_times": measured.wall_times,
        "telemetry": None,
        "metrics": None,
    }
    if sink is not None:
        result["telemetry"] = {
            "summary": sink.summary(),
            "spans": [tuple(span) for span in sink.spans],
        }
    if registry is not None:
        result["metrics"] = registry.snapshot()
    return result


def suite_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Measure one pair for :class:`~repro.experiments.SuiteResults`.

    Returns the :class:`~repro.experiments.runner.RunRecord` field dict
    (solutions stay in the worker: whole constraint graphs are not
    worth shipping over a pipe, and ``SuiteResults.solution`` re-solves
    locally on demand).
    """
    from ..bench.measure import measure_system
    from ..workloads import benchmark

    bench = benchmark(payload["benchmark"])
    options = options_for(payload["experiment"], seed=payload["seed"])
    measured = measure_system(
        bench.program.system, options, repeats=payload["repeats"]
    )
    stats = measured.solution.stats
    return {
        "benchmark": payload["benchmark"],
        "experiment": payload["experiment"],
        "work": stats.work,
        "final_edges": stats.final_edges,
        "closure_seconds": stats.closure_seconds,
        "least_solution_seconds": stats.least_solution_seconds,
        "vars_eliminated": stats.vars_eliminated,
        "cycles_found": stats.cycles_found,
        "mean_search_visits": stats.mean_search_visits,
        "clashes": stats.clashes,
    }


def fuzz_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Differentially check one contiguous index shard; the fuzz worker.

    Payload keys: ``count`` / ``seed`` (the *whole run's* parameters —
    the shape stream is keyed by ``seed`` and consumed in index order,
    so every worker re-derives the full stream and only *checks* the
    indices in ``[start, stop)``), ``labels``, ``shrink``.

    Returns ``{"checked": n, "disagreements": [...]}`` where each
    disagreement carries its (shrunk) reproducer as corpus JSON; the
    parent owns corpus writing and metrics counting so files and
    counters are produced exactly once, in index order.
    """
    from ..workloads.generator import random_system
    from ..resilience.fuzz import (
        _config_for,
        check_system,
        shrink_constraints,
        system_to_json,
    )

    count = payload["count"]
    seed = payload["seed"]
    labels = payload.get("labels")
    start, stop = payload["start"], payload["stop"]
    rng = random.Random(seed)
    checked = 0
    found: List[Dict[str, Any]] = []
    for index in range(count):
        system_seed = seed * 1_000_003 + index
        config = _config_for(index, system_seed, rng)
        if not (start <= index < stop):
            continue
        checked += 1
        system = random_system(config)
        disagreement = check_system(system, labels=labels)
        if disagreement is None:
            continue
        reproducer = system
        if payload.get("shrink", True):
            reproducer = shrink_constraints(
                system,
                lambda sub: check_system(sub, labels=labels) is not None,
            )
            disagreement = (
                check_system(reproducer, labels=labels) or disagreement
            )
        label, kind, detail = disagreement
        found.append({
            "index": index,
            "seed": system_seed,
            "label": label,
            "kind": kind,
            "detail": detail,
            "constraints": len(reproducer),
            "system": system_to_json(reproducer),
        })
    return {"checked": checked, "disagreements": found}


def shard_ranges(count: int, shards: int) -> List[tuple]:
    """Split ``range(count)`` into at most ``shards`` contiguous
    ``(start, stop)`` ranges of near-equal size (never empty)."""
    shards = max(1, min(shards, count)) if count else 0
    ranges: List[tuple] = []
    base, extra = divmod(count, shards) if shards else (0, 0)
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
