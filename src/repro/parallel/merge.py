"""Deterministic merging of per-worker observability artifacts.

Parallel runs produce one metrics snapshot and one JSONL trace stream
*per worker*; these helpers fold them back into the single artifacts a
serial run would have written, always in **task submission order** so
the merged output is reproducible regardless of which worker finished
first.

* Metrics merge rides the registry's existing accumulate-on-load path:
  :meth:`~repro.metrics.registry.MetricsRegistry.load_snapshot` sums
  counter values and histogram buckets and overwrites gauges, so
  loading every worker snapshot into one fresh registry *is* the merge.
* JSONL traces are event streams whose per-run internal order matters
  (a ``span_begin`` precedes its ``span_end``); concatenating whole
  per-task streams in task order preserves that while producing one
  ordered stream for ``repro.trace convert``.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from ..errors import ReproError


class MergeError(ReproError):
    """A per-worker artifact could not be merged."""


def merge_metrics_snapshots(snapshots: Iterable[dict], registry=None):
    """Fold worker snapshots into one registry (accumulate-on-load).

    ``registry`` defaults to a fresh
    :class:`~repro.metrics.registry.MetricsRegistry`; pass an existing
    one to accumulate on top of prior state.  Returns the registry.
    """
    if registry is None:
        from ..metrics.registry import MetricsRegistry

        registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            registry.load_snapshot(snapshot)
    return registry


def merge_jsonl_traces(
    paths: Sequence[str],
    out_path: str,
    schema_line: bool = True,
) -> int:
    """Concatenate per-worker JSONL trace files into one ordered stream.

    ``paths`` must already be in task submission order.  Every line is
    parsed (a torn line raises :class:`MergeError` naming the file and
    line number — a corrupt merge input must not produce a silently
    truncated merged stream); duplicate schema header lines (``{"ev":
    "meta", "schema": 1}``, the first line
    :class:`~repro.trace.sinks.JsonlSink` writes) are collapsed into
    the single leading one when ``schema_line`` is true.  Returns the
    number of event lines written.
    """
    events: List[str] = []
    header: Optional[str] = None
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as error:
                    raise MergeError(
                        f"{path}:{number}: not a JSON record: {error}"
                    ) from error
                if schema_line and isinstance(record, dict) \
                        and record.get("ev") == "meta" \
                        and "schema" in record:
                    if header is None:
                        header = line
                    continue
                events.append(line)
    with open(out_path, "w", encoding="utf-8") as handle:
        if header is not None:
            handle.write(header + "\n")
        for line in events:
            handle.write(line + "\n")
    return len(events)
