"""The root of the package's exception hierarchy.

Every error deliberately raised by this package — frontend diagnostics,
constraint-system errors, and the resilience layer's budget / checkpoint
/ audit failures — derives from :class:`ReproError`, so embedding
callers can guard a whole solve pipeline with one ``except ReproError``
without also swallowing genuine programming errors (``TypeError``,
``AttributeError``, ...).

This module must stay import-free of every other ``repro`` module: it is
imported by the leaf ``errors`` modules of the subpackages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""
