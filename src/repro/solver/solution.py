"""Solved constraint systems.

A :class:`Solution` bundles the least solution, the final graph, the
statistics of the run, and any inconsistency diagnostics.  It is
immutable from the caller's perspective; all queries are read-only.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..constraints.errors import (
    ConstraintDiagnostic,
    InconsistentConstraintError,
)
from ..constraints.expressions import Term, Var
from ..graph.base import ConstraintGraphBase
from ..graph.scc import SccSummary, summarize_sccs
from ..graph.stats import SolverStats
from ..resilience.budget import SolveStatus
from .options import SolverOptions


class Solution:
    """The result of solving a constraint system.

    :attr:`status` records how the run ended.  For a partial status
    (:attr:`SolveStatus.is_partial` — budget exhausted or cancelled) the
    graph may not be fully closed, and every query degrades to a *sound
    lower bound*: :meth:`least_solution` returns a subset of the true
    least solution (closure only derives facts implied by the input, so
    nothing reported can be wrong — but facts may be missing), and
    :meth:`same_component` may answer ``False`` for variables a complete
    run would have collapsed (``True`` answers remain correct).
    Diagnostics recorded so far are genuine inconsistencies, but absence
    of diagnostics on a partial run proves nothing.
    """

    def __init__(
        self,
        options: SolverOptions,
        graph: ConstraintGraphBase,
        least: Dict[int, FrozenSet[Term]],
        stats: SolverStats,
        diagnostics: List[ConstraintDiagnostic],
        var_edges: Optional[Set[Tuple[int, int]]] = None,
        num_vars: int = 0,
        status: SolveStatus = SolveStatus.COMPLETE,
    ) -> None:
        self.options = options
        self.graph = graph
        self._least = least
        self.stats = stats
        self.diagnostics = diagnostics
        #: how the run ended (see the class docstring for the partial
        #: soundness contract)
        self.status = status
        #: processed var-var constraints over original variable ids
        #: (present only when options.record_var_edges was set)
        self.var_edges = var_edges
        self.num_vars = num_vars
        #: filled by the oracle driver: the phase-1 (plain) solution
        self.oracle_phase1: Optional["Solution"] = None
        #: number of variables pre-collapsed by the oracle witness map
        self.oracle_witnessed: int = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def least_solution(self, var: Var) -> FrozenSet[Term]:
        """The least solution of ``var``: a set of source terms."""
        rep = self.graph.find(var.index)
        return self._least.get(rep, frozenset())

    def least_solution_by_index(self, index: int) -> FrozenSet[Term]:
        rep = self.graph.find(index)
        return self._least.get(rep, frozenset())

    def representative(self, var: Var) -> int:
        """The witness index ``var`` was collapsed onto (itself if none)."""
        return self.graph.find(var.index)

    def same_component(self, a: Var, b: Var) -> bool:
        """Whether two variables were collapsed together."""
        return self.graph.find(a.index) == self.graph.find(b.index)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def is_partial(self) -> bool:
        """Whether the run stopped before reaching a fixed point."""
        return self.status.is_partial

    def raise_on_errors(self) -> None:
        """Raise on the first recorded inconsistency, if any."""
        if self.diagnostics:
            raise InconsistentConstraintError(self.diagnostics[0])

    # ------------------------------------------------------------------
    # Final-graph SCC statistics (Table 1 / Figure 11 denominators)
    # ------------------------------------------------------------------
    def final_scc_summary(self) -> SccSummary:
        """SCC summary of the processed var-var constraint graph.

        Requires the run to have recorded var-var edges
        (``options.record_var_edges``); meaningful for plain runs, where
        variable ids are never collapsed.
        """
        if self.var_edges is None:
            raise ValueError(
                "var-var edges were not recorded; re-solve with "
                "record_var_edges=True"
            )
        return summarize_sccs(range(self.num_vars), self.var_edges)

    def __repr__(self) -> str:
        if self.status is not SolveStatus.COMPLETE:
            return (
                f"Solution({self.options.label}, "
                f"status={self.status.value}, work={self.stats.work}, "
                f"edges={self.stats.final_edges}, "
                f"eliminated={self.stats.vars_eliminated})"
            )
        return (
            f"Solution({self.options.label}, work={self.stats.work}, "
            f"edges={self.stats.final_edges}, "
            f"eliminated={self.stats.vars_eliminated})"
        )
