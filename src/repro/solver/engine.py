"""The resolution engine.

One engine drives all six experiment configurations: it drains a
worklist of atomic operations, dispatching to the active graph
representation, which in turn emits further operations.  Every processed
``vv``/``sv``/``vs`` operation is one unit of Work — the paper's cost
metric — and ``rr`` operations apply the resolution rules ``R`` to a
source/sink pair.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Set, Tuple

from ..constraints.errors import ConstraintDiagnostic
from ..constraints.expressions import SetExpression, Term
from ..constraints.resolution import decompose
from ..constraints.system import ConstraintSystem
from ..graph.base import (
    OP_RESOLVE,
    OP_SINK,
    OP_SOURCE,
    OP_VAR_VAR,
    Op,
)
from ..graph.inductive import InductiveGraph
from ..graph.order import VariableOrder
from ..graph.standard import StandardGraph
from ..graph.stats import SolverStats
from ..resilience.audit import AuditPolicy, audit_graph
from ..resilience.budget import SolveStatus, edge_estimate
from ..resilience.errors import (
    BudgetExceededError,
    GraphInvariantError,
    SolveCancelledError,
)
from ..trace.sinks import LegacyCallbackSink, combine
from .options import CyclePolicy, GraphForm, SolverOptions
from .solution import Solution


class SolverEngine:
    """Solve one constraint system under one configuration.

    Engines are single-use: construct, :meth:`run`, discard.  The oracle
    policy is handled one level up (:func:`repro.solver.solve`) because
    it needs two engine runs.
    """

    def __init__(self, system: ConstraintSystem,
                 options: SolverOptions) -> None:
        if (options.cycles is CyclePolicy.ORACLE
                and options.alias_map is None):
            raise ValueError(
                "oracle runs must go through repro.solver.solve, which "
                "performs the two-phase witness computation"
            )
        self.system = system
        self.options = options
        self.stats = SolverStats()
        self.diagnostics: List[ConstraintDiagnostic] = []
        self.pending: Deque[Op] = deque()
        # The effective sink: the modern event sink, the legacy trace
        # callable adapted onto the sink API, both (teed), or None.
        self.sink = combine(
            options.sink,
            LegacyCallbackSink(options.trace)
            if options.trace is not None else None,
        )
        order = VariableOrder(options.order_spec(), system.num_vars)
        graph_class = (
            StandardGraph
            if options.form is GraphForm.STANDARD
            else InductiveGraph
        )
        self.graph = graph_class(
            system.num_vars,
            order,
            self.stats,
            self.pending.append,
            online_cycles=options.cycles is CyclePolicy.ONLINE,
            search_mode=options.search_mode,
            max_search_visits=options.max_search_visits,
            sink=self.sink,
        )
        self.record_var_edges = options.record_var_edges
        # Recorded var-var constraints are interned as packed integer
        # keys ``(left << 32) | right`` — one int hash per edge instead
        # of a tuple allocation + tuple hash on every recorded operation.
        # They are decoded back to pairs once, in :meth:`_make_solution`.
        self._var_edge_keys: Set[int] = set()
        self._periodic = options.cycles is CyclePolicy.PERIODIC
        self._periodic_interval = max(1, options.periodic_interval)
        self._since_sweep = 0
        # --- resilience layer -----------------------------------------
        # All of this is inert (and off the closure hot path: the fast
        # `_drain` is taken) unless a budget, cancellation token, or
        # stride audit is configured.
        if options.on_budget not in ("raise", "partial"):
            raise ValueError(
                f"SolverOptions.on_budget must be 'raise' or 'partial', "
                f"got {options.on_budget!r}"
            )
        budget = options.budget
        self._budget = (
            budget if budget is not None and budget.bounded else None
        )
        self._cancellation = options.cancellation
        self._on_budget_partial = options.on_budget == "partial"
        self._check_stride = max(1, options.check_stride)
        self._audit_policy = AuditPolicy.parse(options.audit)
        self._guarded = (
            self._budget is not None
            or self._cancellation is not None
            or self._audit_policy.stride is not None
        )
        self._closure_started = 0.0
        self._segment_work = 0
        self._segment_edges = 0
        #: how the run ended so far; partial statuses are set by the
        #: guarded drain, final statuses by :meth:`_complete`
        self.status = SolveStatus.COMPLETE
        # Interruptible runs are the ones that get checkpointed, so they
        # journal bucket insertion order for exact resume.
        if (options.checkpointable
                or self._budget is not None
                or self._cancellation is not None):
            self.graph.enable_journal()
        if options.alias_map:
            for var_index, witness_index in options.alias_map.items():
                self.graph.alias(var_index, witness_index)

    # ------------------------------------------------------------------
    def run(self) -> Solution:
        """Close the graph and compute the least solution."""
        if self.options.validate:
            self.system.validate()
        append = self.pending.append
        for left, right in self.system.constraints:
            append((OP_RESOLVE, left, right))
        return self._complete()

    def resume(self) -> Solution:
        """Finish a run from the engine's current state.

        Used after a partial stop (``on_budget="partial"``) or on an
        engine rebuilt by :func:`repro.resilience.checkpoint.restore`:
        drains whatever is pending and finalizes.  Budget limits are
        per segment (see :class:`~repro.resilience.budget.SolveBudget`),
        so each resume gets a fresh allowance and makes progress.
        """
        self.status = SolveStatus.COMPLETE
        return self._complete()

    def _complete(self) -> Solution:
        """Drain the pending worklist, finalize, and build the solution."""
        sink = self.sink
        started = time.perf_counter()
        self._closure_started = started
        # Segment baselines: budget limits bound this drain's growth,
        # not the cumulative (possibly restored) counters.
        self._segment_work = self.stats.work
        self._segment_edges = edge_estimate(self.stats)
        if sink is not None:
            sink.phase_begin("closure")
        try:
            if self._guarded:
                self._drain_guarded()
            else:
                self._drain()
        finally:
            # += so interrupted closure time survives checkpoint/resume
            # and accumulates across incremental batches.
            self.stats.closure_seconds += time.perf_counter() - started
            if sink is not None:
                sink.phase_end("closure")
        if sink is not None:
            sink.phase_begin("finalize")
        self.graph.finalize_statistics()
        if sink is not None:
            sink.phase_end("finalize")
        if not self.status.is_partial:
            if self._audit_policy.final:
                self._run_audit()
            self.status = (
                SolveStatus.INCONSISTENT
                if self.diagnostics
                else SolveStatus.COMPLETE
            )
        if self.options.strict and self.diagnostics:
            solution = self._make_solution({})
            solution.raise_on_errors()
        started = time.perf_counter()
        if sink is not None:
            sink.phase_begin("least-solution")
        least = self._least_solution()
        self.stats.least_solution_seconds = time.perf_counter() - started
        if sink is not None:
            sink.phase_end("least-solution")
        return self._make_solution(least)

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        pending = self.pending
        popleft = pending.popleft
        graph = self.graph
        add_var_var = graph.add_var_var
        add_source = graph.add_source
        add_sink = graph.add_sink
        resolve = self._resolve
        record = self.record_var_edges
        edge_keys = self._var_edge_keys
        periodic = self._periodic
        if not record and not periodic:
            # Fast drain: identical dispatch without the per-operation
            # record/periodic checks (the overwhelmingly common case).
            while pending:
                tag, first, second = popleft()
                if tag == OP_VAR_VAR:
                    add_var_var(first, second)
                elif tag == OP_SOURCE:
                    add_source(first, second)
                elif tag == OP_SINK:
                    add_sink(first, second)
                else:
                    resolve(first, second)
            return
        while pending:
            tag, first, second = popleft()
            if tag == OP_VAR_VAR:
                if record:
                    edge_keys.add((first << 32) | second)
                add_var_var(first, second)
                if periodic:
                    self._since_sweep += 1
                    if self._since_sweep >= self._periodic_interval:
                        self._since_sweep = 0
                        self.stats.periodic_sweeps += 1
                        eliminated = graph.collapse_all_sccs()
                        if self.sink is not None:
                            self.sink.sweep(eliminated)
            elif tag == OP_SOURCE:
                add_source(first, second)
            elif tag == OP_SINK:
                add_sink(first, second)
            else:
                resolve(first, second)

    def _drain_guarded(self) -> None:
        """Drain under budget / cancellation / stride-audit supervision.

        Dispatches identically to :meth:`_drain` (including the record
        and periodic paths), but every ``check_stride`` operations it
        polls the budget and cancellation token, and every
        ``stride-N`` operations it audits the graph invariants.  The
        checks observe and stop — they never reorder or skip operations
        — so counters stay bit-identical to an unguarded run.

        On a limit, either raises (``on_budget="raise"``) or sets a
        partial :attr:`status` and returns with the remaining worklist
        intact, ready for :func:`repro.resilience.checkpoint.capture`
        or :meth:`resume`.
        """
        pending = self.pending
        popleft = pending.popleft
        graph = self.graph
        add_var_var = graph.add_var_var
        add_source = graph.add_source
        add_sink = graph.add_sink
        resolve = self._resolve
        record = self.record_var_edges
        edge_keys = self._var_edge_keys
        periodic = self._periodic
        stride = self._check_stride
        audit_stride = self._audit_policy.stride
        limits = self._budget is not None or self._cancellation is not None
        since_check = 0
        since_audit = 0
        while pending:
            if limits:
                since_check += 1
                if since_check >= stride:
                    since_check = 0
                    if not self._check_limits():
                        return
            if audit_stride is not None:
                since_audit += 1
                if since_audit >= audit_stride:
                    since_audit = 0
                    self._run_audit()
            tag, first, second = popleft()
            if tag == OP_VAR_VAR:
                if record:
                    edge_keys.add((first << 32) | second)
                add_var_var(first, second)
                if periodic:
                    self._since_sweep += 1
                    if self._since_sweep >= self._periodic_interval:
                        self._since_sweep = 0
                        self.stats.periodic_sweeps += 1
                        eliminated = graph.collapse_all_sccs()
                        if self.sink is not None:
                            self.sink.sweep(eliminated)
            elif tag == OP_SOURCE:
                add_source(first, second)
            elif tag == OP_SINK:
                add_sink(first, second)
            else:
                resolve(first, second)

    def _check_limits(self) -> bool:
        """Poll cancellation and budget; False means stop (partial)."""
        sink = self.sink
        cancellation = self._cancellation
        if cancellation is not None and cancellation.cancelled:
            if sink is not None:
                sink.budget_stop("cancelled", 0.0, self.stats.work)
            if self._on_budget_partial:
                self.status = SolveStatus.CANCELLED
                return False
            raise SolveCancelledError(self.stats.work)
        budget = self._budget
        if budget is not None:
            elapsed = time.perf_counter() - self._closure_started
            hit = budget.exceeded(
                self.stats.work - self._segment_work,
                edge_estimate(self.stats) - self._segment_edges,
                elapsed,
            )
            if hit is not None:
                reason, limit, value = hit
                if sink is not None:
                    sink.budget_stop(reason, limit, value)
                if self._on_budget_partial:
                    self.status = SolveStatus.BUDGET_EXHAUSTED
                    return False
                raise BudgetExceededError(
                    reason, limit, value, self.stats.work
                )
        return True

    def _run_audit(self) -> None:
        """Audit graph invariants; report failures and raise on any."""
        failures = audit_graph(self.graph)
        if not failures:
            return
        sink = self.sink
        if sink is not None:
            for failure in failures:
                sink.audit_failure(failure)
        raise GraphInvariantError(failures)

    def _resolve(self, left: SetExpression, right: SetExpression) -> None:
        """Apply the resolution rules R and enqueue the atomic results."""
        self.stats.resolutions += 1
        sink = self.sink
        if sink is not None:
            sink.resolve(left, right)
        atoms: List[Tuple[str, object, object]] = []
        before = len(self.diagnostics)
        decompose(left, right, atoms, self.diagnostics)
        new_clashes = len(self.diagnostics) - before
        self.stats.clashes += new_clashes
        if new_clashes and sink is not None:
            for diagnostic in self.diagnostics[before:]:
                sink.clash(diagnostic)
        append = self.pending.append
        for tag, a, b in atoms:
            if tag == OP_VAR_VAR:
                append((OP_VAR_VAR, a.index, b.index))
            elif tag == OP_SOURCE:
                append((OP_SOURCE, a, b.index))
            else:
                append((OP_SINK, a.index, b))

    def _least_solution(self) -> Dict[int, FrozenSet[Term]]:
        # Both graph forms implement compute_least_solution: IF sweeps
        # predecessors in rank order (equation (1)); SF reads the
        # explicit source buckets, canonicalized through find.
        return self.graph.compute_least_solution()

    @property
    def var_edges(self) -> Set[Tuple[int, int]]:
        """Recorded var-var constraints, decoded from the interned keys."""
        return {(key >> 32, key & 0xFFFFFFFF) for key in self._var_edge_keys}

    def _make_solution(self, least: Dict[int, FrozenSet[Term]]) -> Solution:
        return Solution(
            self.options,
            self.graph,
            least,
            self.stats,
            self.diagnostics,
            var_edges=self.var_edges if self.record_var_edges else None,
            num_vars=self.system.num_vars,
            status=self.status,
        )
