"""The resolution engine.

One engine drives all six experiment configurations: it drains a
worklist of atomic operations, dispatching to the active graph
representation, which in turn emits further operations.  Every processed
``vv``/``sv``/``vs`` operation is one unit of Work — the paper's cost
metric — and ``rr`` operations apply the resolution rules ``R`` to a
source/sink pair.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Set, Tuple

from ..constraints.errors import ConstraintDiagnostic
from ..constraints.expressions import SetExpression, Term
from ..constraints.resolution import decompose
from ..constraints.system import ConstraintSystem
from ..graph.base import (
    OP_RESOLVE,
    OP_SINK,
    OP_SOURCE,
    OP_VAR_VAR,
    Op,
)
from ..graph.inductive import InductiveGraph
from ..graph.order import VariableOrder
from ..graph.standard import StandardGraph
from ..graph.stats import SolverStats
from ..trace.sinks import LegacyCallbackSink, combine
from .options import CyclePolicy, GraphForm, SolverOptions
from .solution import Solution


class SolverEngine:
    """Solve one constraint system under one configuration.

    Engines are single-use: construct, :meth:`run`, discard.  The oracle
    policy is handled one level up (:func:`repro.solver.solve`) because
    it needs two engine runs.
    """

    def __init__(self, system: ConstraintSystem,
                 options: SolverOptions) -> None:
        if (options.cycles is CyclePolicy.ORACLE
                and options.alias_map is None):
            raise ValueError(
                "oracle runs must go through repro.solver.solve, which "
                "performs the two-phase witness computation"
            )
        self.system = system
        self.options = options
        self.stats = SolverStats()
        self.diagnostics: List[ConstraintDiagnostic] = []
        self.pending: Deque[Op] = deque()
        # The effective sink: the modern event sink, the legacy trace
        # callable adapted onto the sink API, both (teed), or None.
        self.sink = combine(
            options.sink,
            LegacyCallbackSink(options.trace)
            if options.trace is not None else None,
        )
        order = VariableOrder(options.order_spec(), system.num_vars)
        graph_class = (
            StandardGraph
            if options.form is GraphForm.STANDARD
            else InductiveGraph
        )
        self.graph = graph_class(
            system.num_vars,
            order,
            self.stats,
            self.pending.append,
            online_cycles=options.cycles is CyclePolicy.ONLINE,
            search_mode=options.search_mode,
            max_search_visits=options.max_search_visits,
            sink=self.sink,
        )
        self.record_var_edges = options.record_var_edges
        # Recorded var-var constraints are interned as packed integer
        # keys ``(left << 32) | right`` — one int hash per edge instead
        # of a tuple allocation + tuple hash on every recorded operation.
        # They are decoded back to pairs once, in :meth:`_make_solution`.
        self._var_edge_keys: Set[int] = set()
        self._periodic = options.cycles is CyclePolicy.PERIODIC
        self._periodic_interval = max(1, options.periodic_interval)
        self._since_sweep = 0
        if options.alias_map:
            for var_index, witness_index in options.alias_map.items():
                self.graph.alias(var_index, witness_index)

    # ------------------------------------------------------------------
    def run(self) -> Solution:
        """Close the graph and compute the least solution."""
        sink = self.sink
        started = time.perf_counter()
        if sink is not None:
            sink.phase_begin("closure")
        append = self.pending.append
        for left, right in self.system.constraints:
            append((OP_RESOLVE, left, right))
        self._drain()
        self.stats.closure_seconds = time.perf_counter() - started
        if sink is not None:
            sink.phase_end("closure")
            sink.phase_begin("finalize")
        self.graph.finalize_statistics()
        if sink is not None:
            sink.phase_end("finalize")
        if self.options.strict and self.diagnostics:
            solution = self._make_solution({})
            solution.raise_on_errors()
        started = time.perf_counter()
        if sink is not None:
            sink.phase_begin("least-solution")
        least = self._least_solution()
        self.stats.least_solution_seconds = time.perf_counter() - started
        if sink is not None:
            sink.phase_end("least-solution")
        return self._make_solution(least)

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        pending = self.pending
        popleft = pending.popleft
        graph = self.graph
        add_var_var = graph.add_var_var
        add_source = graph.add_source
        add_sink = graph.add_sink
        resolve = self._resolve
        record = self.record_var_edges
        edge_keys = self._var_edge_keys
        periodic = self._periodic
        if not record and not periodic:
            # Fast drain: identical dispatch without the per-operation
            # record/periodic checks (the overwhelmingly common case).
            while pending:
                tag, first, second = popleft()
                if tag == OP_VAR_VAR:
                    add_var_var(first, second)
                elif tag == OP_SOURCE:
                    add_source(first, second)
                elif tag == OP_SINK:
                    add_sink(first, second)
                else:
                    resolve(first, second)
            return
        while pending:
            tag, first, second = popleft()
            if tag == OP_VAR_VAR:
                if record:
                    edge_keys.add((first << 32) | second)
                add_var_var(first, second)
                if periodic:
                    self._since_sweep += 1
                    if self._since_sweep >= self._periodic_interval:
                        self._since_sweep = 0
                        self.stats.periodic_sweeps += 1
                        eliminated = graph.collapse_all_sccs()
                        if self.sink is not None:
                            self.sink.sweep(eliminated)
            elif tag == OP_SOURCE:
                add_source(first, second)
            elif tag == OP_SINK:
                add_sink(first, second)
            else:
                resolve(first, second)

    def _resolve(self, left: SetExpression, right: SetExpression) -> None:
        """Apply the resolution rules R and enqueue the atomic results."""
        self.stats.resolutions += 1
        sink = self.sink
        if sink is not None:
            sink.resolve(left, right)
        atoms: List[Tuple[str, object, object]] = []
        before = len(self.diagnostics)
        decompose(left, right, atoms, self.diagnostics)
        new_clashes = len(self.diagnostics) - before
        self.stats.clashes += new_clashes
        if new_clashes and sink is not None:
            for diagnostic in self.diagnostics[before:]:
                sink.clash(diagnostic)
        append = self.pending.append
        for tag, a, b in atoms:
            if tag == OP_VAR_VAR:
                append((OP_VAR_VAR, a.index, b.index))
            elif tag == OP_SOURCE:
                append((OP_SOURCE, a, b.index))
            else:
                append((OP_SINK, a.index, b))

    def _least_solution(self) -> Dict[int, FrozenSet[Term]]:
        graph = self.graph
        if isinstance(graph, InductiveGraph):
            return graph.compute_least_solution()
        return {
            rep: frozenset(graph.sources[rep])
            for rep in graph.unionfind.representatives()
            if rep < graph.num_vars
        }

    @property
    def var_edges(self) -> Set[Tuple[int, int]]:
        """Recorded var-var constraints, decoded from the interned keys."""
        return {(key >> 32, key & 0xFFFFFFFF) for key in self._var_edge_keys}

    def _make_solution(self, least: Dict[int, FrozenSet[Term]]) -> Solution:
        return Solution(
            self.options,
            self.graph,
            least,
            self.stats,
            self.diagnostics,
            var_edges=self.var_edges if self.record_var_edges else None,
            num_vars=self.system.num_vars,
        )
