"""Solver configuration.

The cross product of :class:`GraphForm` and :class:`CyclePolicy` yields
the six experiments of paper Table 4:

=============  ==================  =================================
Experiment     form                cycles
=============  ==================  =================================
SF-Plain       ``STANDARD``        ``NONE``
IF-Plain       ``INDUCTIVE``       ``NONE``
SF-Oracle      ``STANDARD``        ``ORACLE``
IF-Oracle      ``INDUCTIVE``       ``ORACLE``
SF-Online      ``STANDARD``        ``ONLINE``
IF-Online      ``INDUCTIVE``       ``ONLINE``
=============  ==================  =================================
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..graph.cycles import SearchMode
from ..graph.order import OrderSpec, RandomOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace ← solver)
    from ..resilience.budget import CancellationToken, SolveBudget
    from ..trace.sinks import TraceSink


class GraphForm(enum.Enum):
    """Which solved form the solver maintains (paper Sections 2.3/2.4)."""

    STANDARD = "SF"
    INDUCTIVE = "IF"


class CyclePolicy(enum.Enum):
    """How cycles in the constraint graph are treated."""

    #: no cycle elimination at all (the "Plain" experiments)
    NONE = "plain"
    #: partial online detection and elimination at every edge insertion
    ONLINE = "online"
    #: perfect, zero-cost elimination via the two-phase oracle (Section 4)
    ORACLE = "oracle"
    #: offline SCC collapse every N edge additions — the *periodic
    #: simplification* strategy of prior work the paper's introduction
    #: argues against ([FA96, FF97, MW97])
    PERIODIC = "periodic"


@dataclasses.dataclass
class SolverOptions:
    """Options accepted by :func:`repro.solver.solve`."""

    form: GraphForm = GraphForm.INDUCTIVE
    cycles: CyclePolicy = CyclePolicy.ONLINE
    #: variable order o(.); defaults to a seeded random order
    order: Optional[OrderSpec] = None
    #: seed for the default random order
    seed: int = 0
    #: chain-search direction (only meaningful for SF online; the paper's
    #: algorithm is DECREASING, INCREASING is the Section 4 ablation)
    search_mode: SearchMode = SearchMode.DECREASING
    #: optional visit budget per cycle search (None = unbounded)
    max_search_visits: Optional[int] = None
    #: record every processed var-var constraint over original variable
    #: ids (needed for final-graph SCC statistics and by the oracle)
    record_var_edges: bool = False
    #: pre-collapse map variable-index -> witness-index (oracle phase 2)
    alias_map: Optional[Dict[int, int]] = None
    #: for CyclePolicy.PERIODIC: run a full SCC sweep every this many
    #: processed variable-variable edge additions
    periodic_interval: int = 1000
    #: raise InconsistentConstraintError on the first clash
    strict: bool = False
    #: legacy observer called as trace(event, payload) for the three
    #: coarse events: "collapse" (a cycle was eliminated), "sweep" (a
    #: periodic SCC pass ran), "clash" (an inconsistency was recorded).
    #: New code should attach a :class:`repro.trace.TraceSink` via
    #: ``sink`` instead; both may be set and both will observe.
    trace: Optional[Callable[[str, dict], None]] = None
    #: full-fidelity event sink (see :mod:`repro.trace`): edge
    #: insertions, resolutions, partial cycle searches, collapses,
    #: phase spans.  None (the default) disables tracing at the cost of
    #: one attribute check per instrumented operation.
    sink: Optional["TraceSink"] = None
    #: bounds on this run (work units / wall clock / edge estimate);
    #: None (the default) leaves the run unbounded and keeps the
    #: resilience checks entirely off the closure hot path
    budget: Optional["SolveBudget"] = None
    #: cooperative cancellation flag polled on ``check_stride``
    cancellation: Optional["CancellationToken"] = None
    #: what happens when the budget is exhausted or the run is
    #: cancelled: "raise" (BudgetExceededError / SolveCancelledError) or
    #: "partial" (return a partial Solution whose status reports
    #: BUDGET_EXHAUSTED / CANCELLED; least-solution queries on it are
    #: sound lower bounds)
    on_budget: str = "raise"
    #: how many worklist operations between budget/cancellation checks;
    #: smaller = tighter enforcement, larger = less overhead
    check_stride: int = 256
    #: graph-invariant auditing: "off" (or None), "final", or
    #: "stride-N" (audit every N processed operations, plus final); see
    #: :mod:`repro.resilience.audit`
    audit: Optional[str] = None
    #: validate the constraint system before closure, turning malformed
    #: input (stale variable indices, arity mismatches) into structured
    #: InvalidSystemError instead of IndexError deep in the graph code
    validate: bool = True
    #: record bucket insertion order so the engine can be checkpointed
    #: with exact counter reproduction on resume (see
    #: :mod:`repro.resilience.checkpoint`); implied by setting a budget
    #: or cancellation token, since those are how runs get interrupted
    checkpointable: bool = False

    def order_spec(self) -> OrderSpec:
        return self.order if self.order is not None else RandomOrder(self.seed)

    def replace(self, **changes: object) -> "SolverOptions":
        return dataclasses.replace(self, **changes)

    @property
    def label(self) -> str:
        """Experiment-style label, e.g. ``"IF-Online"``."""
        if self.cycles is CyclePolicy.PERIODIC:
            return (
                f"{self.form.value}-Periodic({self.periodic_interval})"
            )
        policy = {
            CyclePolicy.NONE: "Plain",
            CyclePolicy.ONLINE: "Online",
            CyclePolicy.ORACLE: "Oracle",
        }[self.cycles]
        return f"{self.form.value}-{policy}"
