"""A deliberately naive reference solver used only for validation.

Computes the least solution of a constraint system by brute-force
fixed-point iteration over explicit relation sets, with none of the
graph-representation cleverness of the real engine.  Exponentially safer
to audit, polynomially slower to run — tests compare the production
engine's output against this on small systems.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..constraints.errors import ConstraintDiagnostic
from ..constraints.expressions import SetExpression, Term, Var
from ..constraints.resolution import (
    SOURCE_VAR,
    VAR_SINK,
    VAR_VAR,
    decompose,
)
from ..constraints.system import ConstraintSystem


class ReferenceResult:
    """Least solution and diagnostics from the reference solver."""

    def __init__(
        self,
        least: Dict[int, FrozenSet[Term]],
        diagnostics: List[ConstraintDiagnostic],
    ) -> None:
        self._least = least
        self.diagnostics = diagnostics

    def least_solution(self, var: Var) -> FrozenSet[Term]:
        return self._least.get(var.index, frozenset())


def solve_reference(system: ConstraintSystem) -> ReferenceResult:
    """Solve by saturating all atomic relations to a fixed point."""
    var_var: Set[Tuple[int, int]] = set()
    sources: Dict[int, Set[Term]] = {}
    sinks: Dict[int, Set[Term]] = {}
    diagnostics: List[ConstraintDiagnostic] = []
    resolved: Set[Tuple[Term, Term]] = set()

    queue: List[Tuple[SetExpression, SetExpression]] = list(system.constraints)
    atoms: List[Tuple[str, object, object]] = []
    while True:
        # Decompose everything currently queued into atomic facts.
        changed = False
        for left, right in queue:
            decompose(left, right, atoms, diagnostics)
        queue = []
        for tag, a, b in atoms:
            if tag == VAR_VAR:
                fact = (a.index, b.index)
                if fact not in var_var and fact[0] != fact[1]:
                    var_var.add(fact)
                    changed = True
            elif tag == SOURCE_VAR:
                bucket = sources.setdefault(b.index, set())
                if a not in bucket:
                    bucket.add(a)
                    changed = True
            elif tag == VAR_SINK:
                bucket = sinks.setdefault(a.index, set())
                if b not in bucket:
                    bucket.add(b)
                    changed = True
        atoms = []

        # Transitive propagation: X <= Y carries sources of X into Y.
        for x_index, y_index in list(var_var):
            for term in list(sources.get(x_index, ())):
                bucket = sources.setdefault(y_index, set())
                if term not in bucket:
                    bucket.add(term)
                    changed = True

        # Sources meeting sinks re-enter through the resolution rules.
        for var_index, var_sinks in sinks.items():
            for sink_term in list(var_sinks):
                for source_term in list(sources.get(var_index, ())):
                    pair = (source_term, sink_term)
                    if pair not in resolved:
                        resolved.add(pair)
                        queue.append(pair)
                        changed = True

        if not changed and not queue:
            break

    least = {
        index: frozenset(terms) for index, terms in sources.items()
    }
    return ReferenceResult(least, diagnostics)
