"""Oracle cycle elimination (paper Section 4).

The oracle experiments measure a *lower bound*: perfect cycle
elimination at zero detection cost.  The paper implements it by letting
an oracle predict, at variable-creation time, which strongly connected
component the variable will eventually join, and substituting the
component's witness.

We realize the oracle in two phases:

1. **Phase 1** solves the system plainly (no elimination) while
   recording every processed variable-variable constraint over original
   variable ids; Tarjan over that graph yields the final SCCs and a
   witness map.
2. **Phase 2** re-solves the same system with every SCC member
   pre-collapsed onto its witness before any constraint is processed.

Phase 2's statistics are the oracle numbers; phase 1 is attached to the
returned solution for inspection but its cost is *not* charged to the
oracle (matching the paper's zero-cost idealization).
"""

from __future__ import annotations

from ..constraints.system import ConstraintSystem
from ..graph.scc import witness_map
from .engine import SolverEngine
from .options import CyclePolicy, SolverOptions
from .solution import Solution


def solve_with_oracle(
    system: ConstraintSystem, options: SolverOptions
) -> Solution:
    """Run the two-phase oracle experiment for ``options.form``."""
    phase1_options = options.replace(
        cycles=CyclePolicy.NONE,
        record_var_edges=True,
        alias_map=None,
    )
    phase1 = SolverEngine(system, phase1_options).run()
    mapping = witness_map(range(system.num_vars), phase1.var_edges or set())
    phase2_options = options.replace(
        cycles=CyclePolicy.NONE,
        record_var_edges=False,
        alias_map=mapping,
    )
    solution = SolverEngine(system, phase2_options).run()
    # Present the run under its true label (e.g. "IF-Oracle").
    solution.options = options
    solution.oracle_phase1 = phase1
    solution.oracle_witnessed = len(mapping)
    return solution
