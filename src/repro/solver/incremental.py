"""Incremental solving.

The whole point of *online* cycle elimination is that the solver never
needs to see the constraint set up front — so expose that: an
:class:`IncrementalSolver` accepts constraints one at a time (closing
the graph after each batch) and answers least-solution queries between
additions.  Batch solving is the special case of one big batch.

Restrictions: the oracle policy needs the final graph and therefore
cannot run incrementally (use NONE or ONLINE), and variables must be
created through :meth:`fresh_var` so the graph can grow with them.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional

from ..constraints.errors import ConstraintDiagnostic
from ..constraints.expressions import SetExpression, Term, Var
from ..constraints.system import ConstraintSystem
from ..graph.base import OP_RESOLVE
from .engine import SolverEngine
from .options import CyclePolicy, SolverOptions


class IncrementalSolver:
    """Add constraints and query solutions at any time."""

    def __init__(self, options: Optional[SolverOptions] = None) -> None:
        if options is None:
            options = SolverOptions()
        if options.cycles is CyclePolicy.ORACLE:
            raise ValueError(
                "the oracle needs the complete constraint set; use "
                "CyclePolicy.NONE or CyclePolicy.ONLINE incrementally"
            )
        self.system = ConstraintSystem("incremental")
        self.options = options
        self._engine = SolverEngine(self.system, options)
        self._least: Optional[Dict[int, FrozenSet[Term]]] = None

    # ------------------------------------------------------------------
    # Construction API (delegates to the underlying system)
    # ------------------------------------------------------------------
    def constructor(self, name, signature=()):
        return self.system.constructor(name, signature)

    def term(self, constructor, args=(), label=None) -> Term:
        return self.system.term(constructor, args, label)

    def fresh_var(self, name: str = "") -> Var:
        var = self.system.fresh_var(name)
        self._engine.graph.grow(self.system.num_vars)
        return var

    @property
    def zero(self) -> Term:
        return self.system.zero

    @property
    def one(self) -> Term:
        return self.system.one

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def add(self, left: SetExpression, right: SetExpression) -> None:
        """Add one constraint and immediately close the graph."""
        self.system.add(left, right)
        started = time.perf_counter()
        self._engine.pending.append((OP_RESOLVE, left, right))
        self._engine._drain()
        self._engine.stats.closure_seconds += time.perf_counter() - started
        self._least = None  # invalidate

    def add_all(self, pairs) -> None:
        for left, right in pairs:
            self.add(left, right)

    def least_solution(self, var: Var) -> FrozenSet[Term]:
        """Current least solution of ``var`` (recomputed lazily).

        Shares :meth:`~repro.graph.base.ConstraintGraphBase.
        compute_least_solution` with the batch engine; for standard
        form that accumulates source buckets through ``find`` instead
        of reading ``sources[rep]`` directly, so a query between
        batches cannot miss terms still attached to a vertex an online
        collapse absorbed (the SF-Online differential tests pin this
        against the reference solver).
        """
        if self._least is None:
            self._least = self._engine.graph.compute_least_solution()
        rep = self._engine.graph.find(var.index)
        return self._least.get(rep, frozenset())

    # ------------------------------------------------------------------
    # Checkpoint / restore between batches
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Snapshot the engine between batches (see
        :mod:`repro.resilience.checkpoint`); requires
        ``SolverOptions(checkpointable=True)``."""
        from ..resilience.checkpoint import capture

        return capture(self._engine)

    def restore(self, checkpoint) -> None:
        """Replace the engine with one rebuilt from ``checkpoint``.

        The system may have grown (``fresh_var``) since the capture;
        restore keeps the checkpoint's materialized variable order for
        the saved prefix and extends it deterministically, so
        continuing to ``add`` after a restore reproduces the exact
        counters of a never-interrupted run.
        """
        from ..resilience.checkpoint import restore as restore_engine

        self._engine = restore_engine(
            self.system, self.options, checkpoint
        )
        self._least = None  # invalidate

    def same_component(self, a: Var, b: Var) -> bool:
        return (
            self._engine.graph.find(a.index)
            == self._engine.graph.find(b.index)
        )

    @property
    def stats(self):
        return self._engine.stats

    @property
    def diagnostics(self) -> List[ConstraintDiagnostic]:
        return self._engine.diagnostics
