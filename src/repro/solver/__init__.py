"""Constraint solving: one engine, six configurations.

Typical use::

    from repro import ConstraintSystem
    from repro.solver import solve, SolverOptions, GraphForm, CyclePolicy

    solution = solve(system, SolverOptions(form=GraphForm.INDUCTIVE,
                                           cycles=CyclePolicy.ONLINE))
    solution.least_solution(x)
"""

from __future__ import annotations

from ..constraints.system import ConstraintSystem
from ..resilience.budget import CancellationToken, SolveBudget, SolveStatus
from .engine import SolverEngine
from .incremental import IncrementalSolver
from .options import CyclePolicy, GraphForm, SolverOptions
from .oracle import solve_with_oracle
from .reference import ReferenceResult, solve_reference
from .solution import Solution


def solve(
    system: ConstraintSystem, options: SolverOptions = None
) -> Solution:
    """Solve ``system`` under ``options`` (defaults to IF-Online)."""
    if options is None:
        options = SolverOptions()
    if options.cycles is CyclePolicy.ORACLE:
        return solve_with_oracle(system, options)
    return SolverEngine(system, options).run()


__all__ = [
    "CancellationToken",
    "CyclePolicy",
    "IncrementalSolver",
    "GraphForm",
    "ReferenceResult",
    "Solution",
    "SolveBudget",
    "SolveStatus",
    "SolverEngine",
    "SolverOptions",
    "solve",
    "solve_reference",
    "solve_with_oracle",
]
