"""Graphviz (DOT) export for constraint graphs and points-to graphs.

Purely textual — no graphviz dependency; feed the output to ``dot``::

    from repro.viz import constraint_graph_dot
    open("graph.dot", "w").write(constraint_graph_dot(solution))
"""

from __future__ import annotations

from typing import Optional

from .solver.solution import Solution


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def constraint_graph_dot(
    solution: Solution,
    max_nodes: Optional[int] = 200,
    name: str = "constraints",
) -> str:
    """Render the final constraint graph of a solved system.

    Variable-variable successor edges are solid, predecessor edges
    dotted (the paper's drawing convention); sources and sinks appear as
    box nodes.  Collapsed variables are shown merged (only
    representatives are drawn).
    """
    graph = solution.graph
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    reps = [
        rep for rep in graph.unionfind.representatives()
        if rep < graph.num_vars
    ]
    if max_nodes is not None:
        reps = reps[:max_nodes]
    shown = set(reps)
    for rep in reps:
        lines.append(
            f"  v{rep} [label={_quote(f'v{rep}')} shape=ellipse];"
        )
    term_ids = {}

    def term_node(term) -> str:
        """Intern a term as a box node, returning its DOT id."""
        key = (str(term),)
        node = term_ids.get(key)
        if node is None:
            node = f"t{len(term_ids)}"
            term_ids[key] = node
            lines.append(
                f"  {node} [label={_quote(str(term))} shape=box];"
            )
        return node

    for rep in reps:
        for succ in sorted(graph.canonical_successors(rep)):
            if succ in shown:
                lines.append(f"  v{rep} -> v{succ};")
        for pred in sorted(graph.canonical_predecessors(rep)):
            if pred in shown:
                lines.append(f"  v{pred} -> v{rep} [style=dotted];")
        for term in sorted(graph.sources[rep], key=str):
            lines.append(
                f"  {term_node(term)} -> v{rep} [style=dotted];"
            )
        for term in sorted(graph.sinks[rep], key=str):
            lines.append(f"  v{rep} -> {term_node(term)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def points_to_dot(result, name: str = "points_to") -> str:
    """Render an Andersen points-to graph (paper Figure 5 style)."""
    lines = [f"digraph {_quote(name)} {{"]
    for location, targets in sorted(
        result.graph.items(), key=lambda item: item[0].name
    ):
        if not targets:
            continue
        lines.append(
            f"  {_quote(location.name)} [shape=ellipse];"
        )
        for target in sorted(targets, key=lambda t: t.name):
            lines.append(
                f"  {_quote(location.name)} -> {_quote(target.name)};"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
