"""Graphviz (DOT) export for constraint graphs and points-to graphs.

Purely textual — no graphviz dependency; feed the output to ``dot``::

    from repro.viz import constraint_graph_dot
    open("graph.dot", "w").write(constraint_graph_dot(solution))

:func:`traced_constraint_graph_dot` additionally takes the event list of
a traced run (see :mod:`repro.trace`) and highlights where online cycle
elimination fired: collapse witnesses are drawn filled, annotated with
how many variables were forwarded into them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .solver.solution import Solution
    from .trace.events import TraceEvent


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def constraint_graph_dot(
    solution: "Solution",
    max_nodes: Optional[int] = 200,
    name: str = "constraints",
    collapse_counts: Optional[dict] = None,
) -> str:
    """Render the final constraint graph of a solved system.

    Variable-variable successor edges are solid, predecessor edges
    dotted (the paper's drawing convention); sources and sinks appear as
    box nodes.  Collapsed variables are shown merged (only
    representatives are drawn).

    ``collapse_counts`` maps variable index -> number of variables
    eliminated into it; those nodes are drawn filled and annotated.
    Callers usually get this from a traced run via
    :func:`traced_constraint_graph_dot` rather than passing it directly.
    """
    graph = solution.graph
    collapse_counts = collapse_counts or {}
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    reps = [
        rep for rep in graph.unionfind.representatives()
        if rep < graph.num_vars
    ]
    if max_nodes is not None:
        reps = reps[:max_nodes]
    shown = set(reps)
    for rep in reps:
        eliminated = collapse_counts.get(rep, 0)
        if eliminated:
            label = f"v{rep} (+{eliminated} collapsed)"
            lines.append(
                f"  v{rep} [label={_quote(label)} shape=ellipse "
                f"style=filled fillcolor=lightsalmon];"
            )
        else:
            lines.append(
                f"  v{rep} [label={_quote(f'v{rep}')} shape=ellipse];"
            )
    term_ids = {}

    def term_node(term) -> str:
        """Intern a term as a box node, returning its DOT id."""
        key = (str(term),)
        node = term_ids.get(key)
        if node is None:
            node = f"t{len(term_ids)}"
            term_ids[key] = node
            lines.append(
                f"  {node} [label={_quote(str(term))} shape=box];"
            )
        return node

    for rep in reps:
        for succ in sorted(graph.canonical_successors(rep)):
            if succ in shown:
                lines.append(f"  v{rep} -> v{succ};")
        for pred in sorted(graph.canonical_predecessors(rep)):
            if pred in shown:
                lines.append(f"  v{pred} -> v{rep} [style=dotted];")
        for term in sorted(graph.sources[rep], key=str):
            lines.append(
                f"  {term_node(term)} -> v{rep} [style=dotted];"
            )
        for term in sorted(graph.sinks[rep], key=str):
            lines.append(f"  v{rep} -> {term_node(term)};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def traced_constraint_graph_dot(
    solution: "Solution",
    events: Iterable["TraceEvent"],
    max_nodes: Optional[int] = 200,
    name: str = "constraints",
) -> str:
    """Render a solved graph with its trace's collapse events marked.

    ``events`` is a recorded event list — from a
    :class:`repro.trace.CollectorSink` attached to the same run, or
    loaded back with :func:`repro.trace.read_jsonl`.  Every ``collapse``
    event credits its witness (resolved to the final representative,
    since witnesses can themselves be collapsed later) with the cycle
    members eliminated into it, and those nodes come out filled and
    annotated in the drawing.
    """
    find = solution.graph.find
    collapse_counts: dict = {}
    for event in events:
        if event.name != "collapse":
            continue
        witness = event.args.get("witness")
        members = event.args.get("members", ())
        if not isinstance(witness, int):
            continue
        rep = find(witness)
        eliminated = max(0, len(members) - 1)
        collapse_counts[rep] = collapse_counts.get(rep, 0) + eliminated
    return constraint_graph_dot(
        solution,
        max_nodes=max_nodes,
        name=name,
        collapse_counts=collapse_counts,
    )


def points_to_dot(result, name: str = "points_to") -> str:
    """Render an Andersen points-to graph (paper Figure 5 style)."""
    lines = [f"digraph {_quote(name)} {{"]
    for location, targets in sorted(
        result.graph.items(), key=lambda item: item[0].name
    ):
        if not targets:
            continue
        lines.append(
            f"  {_quote(location.name)} [shape=ellipse];"
        )
        for target in sorted(targets, key=lambda t: t.name):
            lines.append(
                f"  {_quote(location.name)} -> {_quote(target.name)};"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
