"""Sink API contracts: null-sink overhead guard, tee, legacy, JSONL."""

import io
import json

import pytest

from repro import ConstraintSystem, Variance
from repro.bench.measure import counters_of
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.trace import (
    NULL_SINK,
    CollectorSink,
    JsonlSink,
    LegacyCallbackSink,
    TeeSink,
    TraceSink,
    combine,
    read_jsonl,
)


def build_system(cycle_extra=0):
    """A small system with a 3-cycle plus some acyclic structure."""
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    a, b, c, d, e = system.fresh_vars(5)
    system.add(a, b)
    system.add(b, c)
    system.add(c, a)
    system.add(c, d)
    system.add(d, e)
    system.add(system.term(box, (system.zero,), label="s"), a)
    system.add(e, system.term(box, (system.one,), label="t"))
    for _ in range(cycle_extra):
        extra = system.fresh_vars(1)[0]
        system.add(d, extra)
    return system


def options(sink=None, form=GraphForm.INDUCTIVE,
            cycles=CyclePolicy.ONLINE, **kw):
    return SolverOptions(form=form, cycles=cycles, order=CreationOrder(),
                         sink=sink, **kw)


ALL_CONFIGS = [
    (form, policy)
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE)
    for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE,
                   CyclePolicy.ORACLE, CyclePolicy.PERIODIC)
]


class TestOverheadGuard:
    """Attaching a sink must not change any deterministic counter."""

    @pytest.mark.parametrize(
        "form,policy", ALL_CONFIGS,
        ids=[f"{f.value}-{p.value}" for f, p in ALL_CONFIGS],
    )
    def test_counters_identical_with_and_without_sink(self, form, policy):
        from repro.metrics import MetricsRegistry, MetricsSink

        system = build_system()
        untraced = solve(system, options(form=form, cycles=policy))
        disabled_registry = MetricsRegistry()
        disabled_registry.disable()
        for sink in (
            NULL_SINK,
            CollectorSink(),
            TeeSink([CollectorSink(), TraceSink()]),
            MetricsSink(MetricsRegistry(),
                        form=form.value, mode=policy.value),
            MetricsSink(disabled_registry,
                        form=form.value, mode=policy.value),
        ):
            traced = solve(
                system, options(sink=sink, form=form, cycles=policy)
            )
            assert counters_of(traced) == counters_of(untraced)

    def test_disabled_tracing_stores_no_sink(self):
        solution = solve(build_system(), options())
        assert solution.graph.sink is None

    def test_null_sink_accepts_every_event(self):
        sink = TraceSink()
        sink.edge("vv", 0, 1, "added")
        sink.resolve("l", "r")
        sink.clash(object())
        sink.search_start(0, 1)
        sink.search_visit(0)
        sink.search_end(True, 2, 3)
        sink.collapse(0, [0, 1])
        sink.sweep(2)
        sink.phase_begin("closure")
        sink.phase_end("closure")
        sink.close()


_BASELINE_IDENTITY_SCRIPT = """
import json, sys
from repro.experiments.config import EXPERIMENT_LABELS, options_for
from repro.metrics import MetricsRegistry, MetricsSink
from repro.solver import solve
from repro.bench.measure import counters_of
from repro.workloads import suite

registry = MetricsRegistry()
registry.disable()
out = {}
for bench in suite("quick"):
    system = bench.program.system
    for label in EXPERIMENT_LABELS:
        options = options_for(label, seed=0)
        sink = MetricsSink.for_options(
            options, registry, suite="quick", benchmark=bench.name
        )
        solution = solve(system, options.replace(sink=sink))
        out[bench.name + "/" + label] = counters_of(solution)
json.dump(out, sys.stdout, sort_keys=True)
"""


class TestBaselineIdentity:
    """A registered-but-disabled MetricsSink must not perturb counters.

    Runs the whole quick suite in a ``PYTHONHASHSEED=0`` subprocess
    (the baseline's pin; Online work counts are only oracles under it)
    with a disabled :class:`~repro.metrics.sink.MetricsSink` attached
    to every solve, and demands the counters of every configuration
    come out byte-identical to ``benchmarks/BASELINE.json``.
    """

    def test_disabled_metrics_counters_match_baseline(self):
        import os
        import subprocess
        import sys

        repo = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(
            os.environ,
            PYTHONHASHSEED="0",
            PYTHONPATH=os.path.join(repo, "src"),
        )
        result = subprocess.run(
            [sys.executable, "-c", _BASELINE_IDENTITY_SCRIPT],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert result.returncode == 0, result.stderr
        baseline_path = os.path.join(repo, "benchmarks", "BASELINE.json")
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        expected = {
            f"{record['benchmark']}/{record['experiment']}":
                record["counters"]
            for record in baseline["records"]
        }
        expected_bytes = json.dumps(expected, sort_keys=True).encode()
        assert result.stdout.encode() == expected_bytes


class TestEventStream:
    def test_collector_sees_search_collapse_and_phases(self):
        sink = CollectorSink()
        solution = solve(build_system(), options(sink=sink))
        names = [event.name for event in sink.events]
        assert "phase.begin" in names and "phase.end" in names
        assert "collapse" in names
        # Per-search bookkeeping matches the solver's own counters.
        stats = solution.stats
        assert names.count("search.start") == stats.cycle_searches
        assert names.count("search.visit") == stats.cycle_search_visits
        assert names.count("search.end") == stats.cycle_searches
        assert names.count("edge") == stats.work
        hits = [
            event for event in sink.events
            if event.name == "search.end" and event.args["found"]
        ]
        assert len(hits) == stats.cycles_found

    def test_edge_outcomes_mirror_work_accounting(self):
        sink = CollectorSink()
        solution = solve(build_system(), options(sink=sink))
        outcomes = {}
        for event in sink.events:
            if event.name == "edge":
                out = event.args["outcome"]
                outcomes[out] = outcomes.get(out, 0) + 1
        stats = solution.stats
        assert outcomes.get("redundant", 0) == stats.redundant
        assert outcomes.get("self", 0) == stats.self_edges

    def test_collapse_members_include_witness(self):
        sink = CollectorSink()
        solve(build_system(), options(sink=sink))
        collapses = [e for e in sink.events if e.name == "collapse"]
        assert collapses
        for event in collapses:
            assert event.args["witness"] in event.args["members"]
            assert len(event.args["members"]) > 1


class TestTeeAndCombine:
    def test_tee_fans_out_in_order(self):
        first, second = CollectorSink(), CollectorSink()
        solve(build_system(), options(sink=TeeSink([first, second])))
        assert [e.name for e in first.events] == [
            e.name for e in second.events
        ]
        assert first.events

    def test_combine_degenerate_cases(self):
        assert combine(None, None) is None
        only = CollectorSink()
        assert combine(None, only, None) is only
        tee = combine(CollectorSink(), CollectorSink())
        assert isinstance(tee, TeeSink)


class TestLegacyCallback:
    def test_legacy_trace_option_still_observes(self):
        seen = []
        solve(
            build_system(),
            options().replace(trace=lambda ev, data: seen.append((ev, data))),
        )
        kinds = {ev for ev, _ in seen}
        assert "collapse" in kinds
        for ev, data in seen:
            if ev == "collapse":
                assert isinstance(data["members"], tuple)
                assert data["witness"] in data["members"]

    def test_legacy_and_sink_both_observe(self):
        seen = []
        sink = CollectorSink()
        solve(
            build_system(),
            options(sink=sink).replace(
                trace=lambda ev, data: seen.append(ev)
            ),
        )
        assert seen.count("collapse") == sum(
            1 for e in sink.events if e.name == "collapse"
        )

    def test_legacy_sweep_payload(self):
        seen = []
        sink = LegacyCallbackSink(lambda ev, data: seen.append((ev, data)))
        sink.sweep(7)
        assert seen == [("sweep", {"eliminated": 7})]


class TestJsonl:
    def test_write_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        solve(build_system(), options(sink=sink))
        sink.close()
        events = read_jsonl(path)
        assert events
        assert events[0].name == "phase.begin"
        assert {"edge", "collapse", "search.start"} <= {
            e.name for e in events
        }

    def test_bad_schema_rejected(self):
        source = io.StringIO('{"ev": "meta", "schema": 999}\n')
        with pytest.raises(ValueError, match="schema"):
            read_jsonl(source)

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "x.jsonl"))
        sink.close()
        sink.close()


class FailingFile(io.StringIO):
    """A text file whose writes start failing after ``fail_after`` calls."""

    def __init__(self, fail_after=0):
        super().__init__()
        self.writes = 0
        self.fail_after = fail_after

    def write(self, text):
        self.writes += 1
        if self.writes > self.fail_after:
            raise OSError(28, "No space left on device")
        return super().write(text)


class TestJsonlHardening:
    """I/O failure policy: never a partial line, never a corrupted run."""

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            JsonlSink(io.StringIO(), on_error="retry")

    def test_raise_policy_propagates_and_disables(self):
        target = FailingFile(fail_after=2)
        sink = JsonlSink(target)  # meta line = write 1
        sink.edge("vv", 0, 1, "added")  # write 2
        with pytest.raises(OSError):
            sink.edge("vv", 1, 2, "added")  # write 3 fails
        assert sink.disabled
        assert isinstance(sink.last_error, OSError)
        # Once disabled, further events are dropped silently.
        sink.edge("vv", 2, 3, "added")
        assert target.writes == 3

    def test_disable_policy_swallows_and_truncates(self):
        target = FailingFile(fail_after=2)
        sink = JsonlSink(target, on_error="disable")
        sink.edge("vv", 0, 1, "added")
        sink.edge("vv", 1, 2, "added")  # fails, swallowed
        sink.edge("vv", 2, 3, "added")  # dropped
        sink.close()
        assert sink.disabled
        assert sink.last_error is not None

    def test_no_partial_lines_ever(self):
        """Every line that reaches the file is complete, parseable JSON."""
        target = FailingFile(fail_after=3)
        sink = JsonlSink(target, on_error="disable")
        for i in range(10):
            sink.edge("vv", i, i + 1, "added")
        sink.close()
        content = target.getvalue()
        assert content.endswith("\n")
        for line in content.splitlines():
            json.loads(line)  # must not raise

    def test_disable_policy_run_completes(self):
        """A dying trace target must not take the solve down with it."""
        system = build_system()
        sink = JsonlSink(FailingFile(fail_after=5), on_error="disable")
        options = SolverOptions(form=GraphForm.INDUCTIVE,
                                cycles=CyclePolicy.ONLINE, sink=sink)
        solution = solve(system, options)
        assert solution.ok
        assert sink.disabled

    def test_close_is_idempotent(self):
        sink = JsonlSink(io.StringIO())
        sink.close()
        sink.close()  # must not raise

    def test_failing_close_respects_policy(self):
        class CloseFails(io.StringIO):
            def flush(self):
                raise OSError(5, "I/O error")

        sink = JsonlSink(CloseFails(), on_error="disable")
        sink.close()  # swallowed
        assert sink.disabled
        raising = JsonlSink(CloseFails())
        with pytest.raises(OSError):
            raising.close()
