"""Chrome trace export: JSONL round-trip, spans, downsampling."""

import json

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.trace import (
    JsonlSink,
    chrome_document,
    convert_jsonl,
    events_from_chrome,
    events_to_chrome,
    read_jsonl,
    spans_to_chrome,
    write_chrome,
)
from repro.trace.events import TraceEvent


def record_run(path):
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    a, b, c = system.fresh_vars(3)
    system.add(a, b)
    system.add(b, a)
    system.add(b, c)
    system.add(system.term(box, (system.zero,), label="s"), a)
    sink = JsonlSink(str(path))
    solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE,
        order=CreationOrder(), sink=sink,
    ))
    sink.close()
    return read_jsonl(str(path))


class TestRoundTrip:
    def test_jsonl_to_chrome_and_back_is_lossless(self, tmp_path):
        events = record_run(tmp_path / "run.jsonl")
        document = events_to_chrome(events)
        back = events_from_chrome(document)
        assert [(e.name, e.args) for e in back] == [
            (e.name, e.args) for e in events
        ]
        # Timestamps survive the µs conversion to float precision.
        for original, restored in zip(events, back):
            assert abs(original.ts - restored.ts) < 1e-9

    def test_phase_and_search_events_become_spans(self, tmp_path):
        events = record_run(tmp_path / "run.jsonl")
        document = events_to_chrome(events)
        phases = [
            entry for entry in document["traceEvents"]
            if entry.get("ph") in ("B", "E")
        ]
        assert phases
        begins = sum(1 for entry in phases if entry["ph"] == "B")
        ends = sum(1 for entry in phases if entry["ph"] == "E")
        assert begins == ends
        names = {entry["name"] for entry in phases}
        assert "closure" in names
        assert "cycle-search" in names

    def test_convert_jsonl_writes_valid_document(self, tmp_path):
        record_run(tmp_path / "run.jsonl")
        out = tmp_path / "run.trace.json"
        returned = convert_jsonl(str(tmp_path / "run.jsonl"), str(out))
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk == returned
        assert on_disk["traceEvents"]
        assert on_disk["otherData"]["source"] == "repro.trace"


class TestDownsampling:
    def test_max_instants_drops_only_high_frequency(self):
        events = [
            TraceEvent("phase.begin", 0.0, {"name": "closure"}),
            *[
                TraceEvent("edge", 0.001 * i,
                           {"kind": "vv", "src": i, "dst": i + 1,
                            "outcome": "added"})
                for i in range(10)
            ],
            TraceEvent("collapse", 0.5, {"witness": 1, "members": [1, 2]}),
            TraceEvent("phase.end", 1.0, {"name": "closure"}),
        ]
        document = events_to_chrome(events, max_instants=3)
        names = [
            entry["name"] for entry in document["traceEvents"]
            if entry.get("ph") != "M"
        ]
        assert names.count("edge") == 3
        # Low-frequency instants and spans are never dropped.
        assert "collapse" in names
        assert names.count("closure") == 2
        assert document["otherData"]["dropped_instants"] == {"edge": 7}

    def test_no_downsampling_by_default(self):
        events = [
            TraceEvent("edge", 0.0,
                       {"kind": "vv", "src": 0, "dst": 1,
                        "outcome": "added"})
            for _ in range(5)
        ]
        document = events_to_chrome(events)
        assert "dropped_instants" not in document["otherData"]


class TestSpans:
    def test_spans_to_chrome_rebases_and_labels(self):
        spans = [("closure", 100.0, 100.5), ("finalize", 100.5, 100.6)]
        events = spans_to_chrome(
            spans, tid=3, thread_name="bench IF-Online",
            args={"benchmark": "bench"},
        )
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == 2
        assert complete[0]["ts"] == 0.0
        assert complete[0]["dur"] == 500_000.0  # 0.5 s in µs
        assert complete[0]["args"]["benchmark"] == "bench"
        metadata = [e for e in events if e.get("ph") == "M"]
        assert {"process_name", "thread_name"} == {
            e["name"] for e in metadata
        }

    def test_chrome_document_and_write(self, tmp_path):
        document = chrome_document(
            spans_to_chrome([("closure", 0.0, 1.0)]),
            {"suite": "quick"},
        )
        path = tmp_path / "spans.json"
        write_chrome(document, str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["otherData"]["suite"] == "quick"
        assert loaded["displayTimeUnit"] == "ms"
