"""Smoke tests for ``python -m repro.trace`` (in-process, like the
bench CLI tests: ``--no-pin-hashseed`` keeps the re-exec from escaping
pytest, and runs are restricted to one quick-suite benchmark)."""

import json

from repro.trace.__main__ import main

FAST = ["--no-pin-hashseed", "--suite", "quick",
        "--benchmarks", "allroots"]


class TestReport:
    def test_default_subcommand_is_report(self, capsys):
        assert main(FAST) == 0
        out = capsys.readouterr().out
        assert "mean partial-search visits" in out
        assert "IF-Online" in out and "SF-Online" in out
        assert "detection" in out

    def test_json_and_chrome_outputs(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        chrome_path = tmp_path / "trace.json"
        assert main(["report", *FAST, "--json", str(report_path),
                     "--chrome", str(chrome_path)]) == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["suite"] == "quick"
        assert set(payload["aggregates"]) == {"SF-Online", "IF-Online"}
        for aggregate in payload["aggregates"].values():
            assert aggregate["mean_search_visits"] > 0
        run = payload["runs"][0]
        assert run["counters"]["work"] > 0
        assert run["telemetry"]["searches"] > 0
        document = json.loads(chrome_path.read_text(encoding="utf-8"))
        assert any(
            entry.get("ph") == "X" for entry in document["traceEvents"]
        )

    def test_check_baseline_detects_match_and_divergence(
            self, tmp_path, capsys):
        # A baseline recorded by the bench harness in the same process
        # must agree with traced counters (tracing does not perturb).
        from repro.bench.__main__ import main as bench_main

        baseline = tmp_path / "BASELINE.json"
        assert bench_main([
            "--no-pin-hashseed", "--smoke", "--no-output",
            "--repeats", "1", "--experiments", "SF-Online", "IF-Online",
            "--write-baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main(["report", *FAST,
                     "--check-baseline", str(baseline)]) == 0
        assert "baseline check OK" in capsys.readouterr().out
        # Doctor a counter: the check must fail with exit code 1.
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        for record in payload["records"]:
            if (record["benchmark"], record["experiment"]) == (
                    "allroots", "IF-Online"):
                record["counters"]["work"] += 1
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert main(["report", *FAST,
                     "--check-baseline", str(baseline)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_unknown_benchmark_exits_two(self, capsys):
        assert main(["report", "--no-pin-hashseed", "--suite", "quick",
                     "--benchmarks", "no-such-bench"]) == 2
        assert "no-such-bench" in capsys.readouterr().err


class TestRecordAndConvert:
    def test_record_then_convert_round_trips(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        assert main(["record", "--no-pin-hashseed",
                     "--benchmark", "allroots", "--suite", "quick",
                     "--experiment", "IF-Online",
                     "--out", str(jsonl)]) == 0
        assert "recorded allroots IF-Online" in capsys.readouterr().out
        first = jsonl.read_text(encoding="utf-8").splitlines()[0]
        assert json.loads(first) == {"ev": "meta", "schema": 1}

        out = tmp_path / "run.trace.json"
        assert main(["convert", str(jsonl), str(out),
                     "--max-instants", "100"]) == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        assert "dropped_instants" in document["otherData"]

    def test_record_unknown_benchmark_exits_two(self, tmp_path, capsys):
        assert main(["record", "--no-pin-hashseed",
                     "--benchmark", "nope", "--suite", "quick",
                     "--out", str(tmp_path / "x.jsonl")]) == 2
        assert "nope" in capsys.readouterr().err

    def test_convert_missing_input_exits_two(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "absent.jsonl"),
                     str(tmp_path / "out.json")]) == 2
        assert capsys.readouterr().err


class TestTracedViz:
    def test_collapse_witnesses_are_highlighted(self):
        from repro.experiments.config import options_for
        from repro.solver import solve
        from repro.trace import CollectorSink
        from repro.viz import traced_constraint_graph_dot
        from repro.workloads import suite

        bench = next(b for b in suite("quick") if b.name == "allroots")
        sink = CollectorSink()
        solution = solve(
            bench.program.system,
            options_for("IF-Online", seed=0).replace(sink=sink),
        )
        dot = traced_constraint_graph_dot(
            solution, sink.events, max_nodes=None
        )
        assert dot.startswith("digraph")
        assert "collapsed" in dot
        assert "fillcolor" in dot
        collapsed = sum(1 for e in sink.events if e.name == "collapse")
        assert collapsed > 0
