"""OnlineHistogram bucketing and HistogramSink telemetry correctness."""

import pytest

from repro import ConstraintSystem
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.trace import HistogramSink, OnlineHistogram


class TestOnlineHistogram:
    def test_exact_below_limit(self):
        hist = OnlineHistogram()
        for value in (0, 1, 1, 3, 15):
            hist.add(value)
        assert hist.count == 5
        assert hist.total == 20
        assert (hist.min, hist.max) == (0, 15)
        assert hist.buckets == {0: 1, 1: 2, 3: 1, 15: 1}
        assert hist.mean == 4.0

    def test_power_of_two_buckets_above_limit(self):
        hist = OnlineHistogram()
        for value in (16, 17, 31, 32, 100, 1000):
            hist.add(value)
        assert hist.buckets == {16: 3, 32: 1, 64: 1, 512: 1}
        # count/total/min/max stay exact even though buckets are coarse.
        assert hist.total == 16 + 17 + 31 + 32 + 100 + 1000
        assert (hist.min, hist.max) == (16, 1000)
        rows = hist.bucket_rows()
        assert rows[0] == (16, 31, 3)
        assert rows[-1] == (512, 1023, 1)

    def test_merge_matches_combined_stream(self):
        left, right, combined = (
            OnlineHistogram(), OnlineHistogram(), OnlineHistogram()
        )
        for value in (1, 2, 40):
            left.add(value)
            combined.add(value)
        for value in (2, 17):
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.buckets == combined.buckets
        assert left.count == combined.count
        assert left.total == combined.total
        assert (left.min, left.max) == (combined.min, combined.max)

    def test_percentile_and_dict_round_trip(self):
        hist = OnlineHistogram()
        for value in (1, 1, 1, 2, 3, 20):
            hist.add(value)
        assert hist.percentile(0.5) == 1
        assert hist.percentile(1.0) == 31  # bucket upper bound
        back = OnlineHistogram.from_dict(hist.to_dict())
        assert back.buckets == hist.buckets
        assert back.total == hist.total

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OnlineHistogram().add(-1)


def solve_three_cycle(sink):
    """v0 <= v1 <= v2 <= v0 under IF-Online with creation order."""
    system = ConstraintSystem()
    v0, v1, v2 = system.fresh_vars(3)
    system.add(v0, v1)
    system.add(v1, v2)
    system.add(v2, v0)
    return solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE,
        cycles=CyclePolicy.ONLINE,
        order=CreationOrder(),
        sink=sink,
    ))


class TestHistogramSink:
    def test_three_cycle_telemetry(self):
        sink = HistogramSink(label="3cycle")
        solution = solve_three_cycle(sink)
        stats = solution.stats
        # Histograms agree with the solver's deterministic counters.
        assert sink.searches == stats.cycle_searches
        assert sink.search_visits.count == stats.cycle_searches
        assert sink.search_visits.total == stats.cycle_search_visits
        assert sink.search_hits == stats.cycles_found
        assert sink.mean_search_visits == stats.mean_search_visits
        # The 3-cycle collapses down to one representative.
        assert stats.vars_eliminated == 2
        assert sink.cycle_lengths.count == sink.search_hits >= 1
        assert sink.cycle_lengths.total >= 2 * sink.search_hits
        assert sink.hit_rate == pytest.approx(
            stats.cycles_found / stats.cycle_searches
        )

    def test_edge_outcome_counts_match_stats(self):
        sink = HistogramSink()
        solution = solve_three_cycle(sink)
        stats = solution.stats
        assert sum(sink.edge_outcomes.values()) == stats.work
        assert sink.edge_outcomes.get("redundant", 0) == stats.redundant
        assert sink.edge_outcomes.get("self", 0) == stats.self_edges
        assert sink.edge_kinds.get("vv", 0) == stats.work

    def test_phase_spans_recorded(self):
        sink = HistogramSink()
        solve_three_cycle(sink)
        assert "closure" in sink.phase_seconds
        assert "least-solution" in sink.phase_seconds
        names = [name for name, _, _ in sink.spans]
        assert "closure" in names
        for name, began, ended in sink.spans:
            assert ended >= began
        assert not sink._open_phases

    def test_unmatched_phase_end_never_raises(self):
        sink = HistogramSink()
        sink.phase_end("never-opened")
        assert sink.spans == [
            ("never-opened", sink.spans[0][1], sink.spans[0][1])
        ]

    def test_fanout_counts_added_vv_edges_only(self):
        sink = HistogramSink()
        sink.edge("vv", 1, 2, "added")
        sink.edge("vv", 1, 3, "added")
        sink.edge("vv", 1, 3, "redundant")
        sink.edge("sv", "term", 1, "added")
        hist = sink.fanout_histogram()
        assert hist.count == 1
        assert hist.total == 2

    def test_merge_combines_runs(self):
        first, second = HistogramSink(), HistogramSink()
        solve_three_cycle(first)
        solve_three_cycle(second)
        merged = HistogramSink(label="merged")
        merged.merge(first)
        merged.merge(second)
        assert merged.searches == first.searches + second.searches
        assert merged.search_visits.total == (
            first.search_visits.total + second.search_visits.total
        )
        assert merged.mean_search_visits == pytest.approx(
            first.mean_search_visits
        )
        assert len(merged.spans) == len(first.spans) + len(second.spans)

    def test_summary_is_json_ready(self):
        import json

        sink = HistogramSink(label="s")
        solve_three_cycle(sink)
        summary = sink.summary()
        json.dumps(summary)  # must not raise
        assert summary["label"] == "s"
        assert summary["searches"] == sink.searches
        assert summary["search_visits"]["count"] == sink.searches
