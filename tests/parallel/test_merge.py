"""Round-trips for the per-worker artifact mergers."""

import json

import pytest

from repro.metrics import MetricsRegistry
from repro.parallel import (
    MergeError,
    merge_jsonl_traces,
    merge_metrics_snapshots,
)


def snapshot_with(counter_value, gauge_value):
    registry = MetricsRegistry()
    registry.counter("repro_test_ops_total", "ops", ("kind",)) \
        .labels("vv").inc(counter_value)
    registry.gauge("repro_test_depth", "depth").labels().set(gauge_value)
    registry.histogram("repro_test_visits", "visits") \
        .labels().observe(counter_value)
    return registry.snapshot()


class TestMetricsMerge:
    def test_counters_and_histograms_accumulate(self):
        merged = merge_metrics_snapshots(
            [snapshot_with(3, 1.0), snapshot_with(4, 2.0)]
        )
        exposition = merged.expose()
        assert "repro_test_ops_total" in exposition
        assert '{kind="vv"} 7' in exposition.replace(
            'repro_test_ops_total', ''
        )
        # Gauges take the last value (accumulate-on-load semantics).
        assert "repro_test_depth 2\n" in exposition
        assert "repro_test_visits_count 2" in exposition

    def test_merge_round_trips_through_snapshot(self):
        merged = merge_metrics_snapshots(
            [snapshot_with(1, 0.0), snapshot_with(2, 0.0)]
        )
        reloaded = MetricsRegistry()
        reloaded.load_snapshot(merged.snapshot())
        assert reloaded.expose() == merged.expose()

    def test_empty_snapshots_are_skipped(self):
        merged = merge_metrics_snapshots([{}, snapshot_with(5, 0.0), {}])
        assert "repro_test_ops_total" in merged.expose()

    def test_accumulates_onto_supplied_registry(self):
        registry = MetricsRegistry()
        out = merge_metrics_snapshots([snapshot_with(2, 0.0)], registry)
        assert out is registry


def write_jsonl(path, records, schema=True):
    with open(path, "w", encoding="utf-8") as handle:
        if schema:
            handle.write(json.dumps({"ev": "meta", "schema": 1}) + "\n")
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestJsonlMerge:
    def test_concatenates_in_task_order(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(a, [{"ev": "edge", "n": 1}, {"ev": "edge", "n": 2}])
        write_jsonl(b, [{"ev": "edge", "n": 3}])
        out = tmp_path / "merged.jsonl"
        count = merge_jsonl_traces([str(a), str(b)], str(out))
        assert count == 3
        lines = out.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0] == {"ev": "meta", "schema": 1}
        assert [r["n"] for r in records[1:]] == [1, 2, 3]

    def test_single_schema_header_survives(self, tmp_path):
        paths = []
        for n in range(3):
            path = tmp_path / f"w{n}.jsonl"
            write_jsonl(path, [{"ev": "edge", "n": n}])
            paths.append(str(path))
        out = tmp_path / "merged.jsonl"
        merge_jsonl_traces(paths, str(out))
        lines = out.read_text(encoding="utf-8").splitlines()
        headers = [
            line for line in lines if json.loads(line).get("ev") == "meta"
        ]
        assert len(headers) == 1
        assert lines[0] == headers[0]

    def test_torn_line_raises_with_location(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev": "edge"}\n{"ev": "tor', encoding="utf-8")
        out = tmp_path / "merged.jsonl"
        with pytest.raises(MergeError) as excinfo:
            merge_jsonl_traces([str(bad)], str(out))
        assert "bad.jsonl:2" in str(excinfo.value)

    def test_merged_stream_converts_to_chrome(self, tmp_path):
        """The merged stream must stay consumable by repro.trace."""
        from repro.solver import SolverOptions, solve
        from repro.trace.sinks import JsonlSink
        from repro.workloads import benchmark

        paths = []
        for n, name in enumerate(("allroots", "anagram")):
            path = tmp_path / f"worker{n}.jsonl"
            with open(path, "w", encoding="utf-8") as handle:
                sink = JsonlSink(handle)
                solve(benchmark(name).program.system,
                      SolverOptions(sink=sink))
            paths.append(str(path))
        out = tmp_path / "merged.jsonl"
        count = merge_jsonl_traces(paths, str(out))
        assert count > 0
        from repro.trace.chrome import convert_jsonl

        document = convert_jsonl(str(out), str(tmp_path / "chrome.json"))
        assert document["traceEvents"]
