"""The worker pool's supervision contract.

Every worker function here is module-level (picklable under any start
method).  Crash and retry behaviors are driven through marker files in
a temp directory: a worker that must "crash once" dies with
``os._exit`` on its first attempt and succeeds once the marker exists,
which exercises the real process-death path rather than a simulation.
"""

import os
import time

import pytest

from repro.parallel import (
    ParallelError,
    TaskSpec,
    require_ok,
    run_tasks,
)
from repro.parallel.tasks import shard_ranges


def double(payload):
    return payload * 2


def sleepy(payload):
    time.sleep(payload)
    return "woke"


def raiser(payload):
    raise ValueError(f"deterministic failure on {payload!r}")


def crash_once(marker_path):
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("attempted\n")
        os._exit(17)  # hard death: no result message, nonzero exit
    return "recovered"


def always_crash(payload):
    os._exit(23)


class TestOrderingAndValues:
    def test_results_in_submission_order(self):
        tasks = [TaskSpec(key=str(n), payload=n) for n in range(7)]
        results = run_tasks(double, tasks, jobs=3)
        assert [r.key for r in results] == [str(n) for n in range(7)]
        assert [r.value for r in results] == [n * 2 for n in range(7)]
        assert all(r.ok and r.kind is None for r in results)

    def test_require_ok_passes_through(self):
        results = run_tasks(double, [TaskSpec("a", 1)], jobs=1)
        assert require_ok(results) == results

    def test_jobs_zero_means_auto(self):
        results = run_tasks(double, [TaskSpec("a", 21)], jobs=0)
        assert results[0].value == 42


class TestFailureSemantics:
    def test_worker_exception_fails_without_retry(self):
        results = run_tasks(raiser, [TaskSpec("bad", "x")], jobs=1,
                            retries=3)
        (result,) = results
        assert not result.ok
        assert result.kind == "exception"
        assert result.attempts == 1, "deterministic failures never retry"
        assert "ValueError: deterministic failure" in result.error

    def test_crash_is_retried_and_recovers(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        results = run_tasks(
            crash_once, [TaskSpec("flaky", marker)], jobs=1, retries=1,
        )
        (result,) = results
        assert result.ok
        assert result.value == "recovered"
        assert result.attempts == 2

    def test_persistent_crash_fails_with_cause(self):
        results = run_tasks(
            always_crash, [TaskSpec("doomed", None)], jobs=1, retries=2,
        )
        (result,) = results
        assert not result.ok
        assert result.kind == "crash"
        assert result.attempts == 3  # initial + 2 retries
        assert "exit code 23" in result.error

    def test_require_ok_raises_with_cause(self):
        results = run_tasks(raiser, [TaskSpec("bad", "x")], jobs=1)
        with pytest.raises(ParallelError) as excinfo:
            require_ok(results)
        assert "bad [exception" in str(excinfo.value)

    def test_failure_does_not_poison_other_tasks(self, tmp_path):
        tasks = [
            TaskSpec("ok-1", 1),
            TaskSpec("dead", None),
            TaskSpec("ok-2", 2),
        ]
        results = run_tasks(mixed_worker, tasks, jobs=2, retries=0)
        assert [r.ok for r in results] == [True, False, True]
        assert results[0].value == 2 and results[2].value == 4


def mixed_worker(payload):
    if payload is None:
        os._exit(9)
    return payload * 2


class TestTimeouts:
    def test_task_timeout_retried_then_failed(self):
        tasks = [TaskSpec("hang", 30, timeout=0.5)]
        started = time.monotonic()
        results = run_tasks(sleepy, tasks, jobs=1, retries=1)
        elapsed = time.monotonic() - started
        (result,) = results
        assert not result.ok
        assert result.kind == "timeout"
        assert result.attempts == 2
        assert elapsed < 20, "the pool must not wait out the sleep"

    def test_overall_deadline_kills_stragglers(self):
        tasks = [TaskSpec("hang", 30), TaskSpec("quick", 0)]
        started = time.monotonic()
        results = run_tasks(
            sleepy, tasks, jobs=2, overall_timeout=1.5, retries=0,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 20
        by_key = {r.key: r for r in results}
        assert by_key["quick"].ok and by_key["quick"].value == "woke"
        assert by_key["hang"].kind == "timeout"
        assert "overall deadline" in by_key["hang"].error


class TestShardRanges:
    def test_partitions_exactly(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(2, 5) == [(0, 1), (1, 2)]
        assert shard_ranges(0, 4) == []
        ranges = shard_ranges(97, 8)
        assert ranges[0][0] == 0 and ranges[-1][1] == 97
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
