"""Parallel execution parity: ``--jobs N`` must change nothing but time.

The acceptance property of :mod:`repro.parallel`: a sharded run's
deterministic outputs — report counters, trace summaries, metrics
expositions, fuzz disagreement lists, suite records — are identical to
the serial run's, with only wall-clock fields free to differ.  The
suite subsets here are small (this box may have a single core; the
tests gate correctness, not speedup).
"""

import json

import pytest

from repro.bench.harness import run_bench
from repro.bench.measure import COUNTER_FIELDS

pytestmark = pytest.mark.slow

BENCHES = ["allroots", "anagram"]
#: wall-clock fields allowed to differ between serial and parallel
TIME_FIELDS = ("wall_times", "median_seconds")


def deterministic_view(report):
    payload = report.to_dict()
    payload.pop("timestamp")
    for record in payload["records"]:
        for field in TIME_FIELDS:
            record.pop(field)
    return payload


class TestBenchParity:
    def test_jobs4_report_matches_serial(self, monkeypatch):
        # The parallel path pins PYTHONHASHSEED=0 into the environment
        # for its workers; pin it up front so the serial report records
        # the same hash_seed metadata (counters are unaffected — fork
        # workers share the parent's hash state either way).
        monkeypatch.setenv("PYTHONHASHSEED", "0")
        serial = run_bench("quick", benchmarks=BENCHES, repeats=1)
        parallel = run_bench("quick", benchmarks=BENCHES, repeats=1,
                             jobs=4)
        assert deterministic_view(parallel) == deterministic_view(serial)
        # Byte-identical modulo the excluded fields: serialize both.
        assert json.dumps(deterministic_view(parallel), sort_keys=True) \
            == json.dumps(deterministic_view(serial), sort_keys=True)

    def test_trace_and_metrics_artifacts_match_serial(self, tmp_path):
        serial_trace = tmp_path / "serial-trace"
        serial_metrics = tmp_path / "serial-metrics"
        parallel_trace = tmp_path / "parallel-trace"
        parallel_metrics = tmp_path / "parallel-metrics"
        run_bench("quick", benchmarks=BENCHES[:1], repeats=1,
                  trace_dir=str(serial_trace),
                  metrics_dir=str(serial_metrics))
        run_bench("quick", benchmarks=BENCHES[:1], repeats=1,
                  trace_dir=str(parallel_trace),
                  metrics_dir=str(parallel_metrics), jobs=2)

        def strip_times(node):
            if isinstance(node, dict):
                return {
                    key: strip_times(value)
                    for key, value in node.items()
                    if "seconds" not in key
                }
            if isinstance(node, list):
                return [strip_times(item) for item in node]
            return node

        serial_summary = json.loads(
            (serial_trace / "trace_summary.json").read_text()
        )
        parallel_summary = json.loads(
            (parallel_trace / "trace_summary.json").read_text()
        )
        assert strip_times(parallel_summary) == strip_times(serial_summary)

        def counter_lines(path):
            # Histogram/counter samples are deterministic; phase-second
            # counters are wall clock and excluded.
            return sorted(
                line
                for line in path.read_text().splitlines()
                if not line.startswith("#") and "seconds" not in line
            )

        assert counter_lines(parallel_metrics / "metrics.prom") \
            == counter_lines(serial_metrics / "metrics.prom")
        # The merged snapshot must still load (accumulate-on-load).
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.load_snapshot(json.loads(
            (parallel_metrics / "metrics.json").read_text()
        ))
        assert registry.collect()

    def test_parallel_timeout_exits_three(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        code = main([
            "--no-pin-hashseed", "--no-output", "--jobs", "2",
            "--experiments", "SF-Plain", "--repeats", "1",
            "--timeout", "0.000001",
        ])
        assert code == 3
        assert "timeout" in capsys.readouterr().err

    def test_parallel_cli_report_matches_serial_cli(self, tmp_path,
                                                    monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.setenv("PYTHONHASHSEED", "0")
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()
        base = ["--no-pin-hashseed", "--experiments", "SF-Online",
                "IF-Online", "--repeats", "1"]
        assert main([*base, "--out", str(serial_dir)]) == 0
        assert main([*base, "--out", str(parallel_dir),
                     "--jobs", "2"]) == 0
        serial = json.loads(
            (serial_dir / "BENCH_1.json").read_text(encoding="utf-8")
        )
        parallel = json.loads(
            (parallel_dir / "BENCH_1.json").read_text(encoding="utf-8")
        )
        for payload in (serial, parallel):
            payload.pop("timestamp")
            for record in payload["records"]:
                for field in TIME_FIELDS:
                    record.pop(field)
        assert parallel == serial


class TestFuzzParity:
    def test_parallel_run_matches_serial(self):
        from repro.resilience.fuzz import run_fuzz

        serial = run_fuzz(count=12, seed=3, corpus_dir=None)
        parallel = run_fuzz(count=12, seed=3, corpus_dir=None, jobs=3)
        assert parallel == serial

    def test_worker_finds_injected_disagreement(self, tmp_path,
                                                monkeypatch):
        """A disagreement found inside a shard surfaces with corpus
        file and metrics count, exactly like a serial find.

        The injected "bug" lives in check_system's in-process path, so
        run the shard worker in-process too (fuzz_task is a plain
        callable — the pool is not required to exercise it).
        """
        import repro.resilience.fuzz as fuzz_module
        from repro.parallel.tasks import fuzz_task

        real_check = fuzz_module.check_system

        def lying_check(system, labels=None, seed=0):
            found = real_check(system, labels=labels, seed=seed)
            if found is None and len(system.constraints) % 2:
                return ("SF-Online", "verdict", "injected for the test")
            return found

        monkeypatch.setattr(fuzz_module, "check_system", lying_check)
        result = fuzz_task({
            "count": 8, "seed": 0, "labels": None,
            "start": 0, "stop": 8, "shrink": False,
        })
        assert result["checked"] == 8
        assert result["disagreements"], "injected bug must be reported"
        entry = result["disagreements"][0]
        assert entry["label"] == "SF-Online"
        assert entry["system"]["constraints"]
        # The parent-side merge writes the reproducer.
        from repro.resilience.fuzz import (
            load_reproducer,
            save_reproducer,
            system_from_json,
            FuzzDisagreement,
        )

        disagreement = FuzzDisagreement(
            seed=entry["seed"], label=entry["label"], kind=entry["kind"],
            detail=entry["detail"], constraints=entry["constraints"],
        )
        path = save_reproducer(
            str(tmp_path), disagreement, system_from_json(entry["system"])
        )
        system, metadata = load_reproducer(path)
        assert metadata["label"] == "SF-Online"
        assert len(system.constraints) == entry["constraints"]


class TestSuiteResultsParity:
    def test_parallel_records_match_serial(self):
        from repro.experiments.runner import SuiteResults
        from repro.workloads import suite

        benches = suite("quick")[:2]
        serial = SuiteResults(benches, seed=0, repeats=1)
        parallel = SuiteResults(benches, seed=0, repeats=1, jobs=2)
        labels = ["SF-Plain", "SF-Online"]

        def deterministic(record):
            return (
                record.benchmark, record.experiment, record.work,
                record.final_edges, record.vars_eliminated,
                record.cycles_found, record.mean_search_visits,
                record.clashes,
            )

        assert [deterministic(r) for r in parallel.run_all(labels)] \
            == [deterministic(r) for r in serial.run_all(labels)]
        # Solutions are still available (re-solved locally).
        solution = parallel.solution(benches[0].name, "SF-Online")
        assert solution.stats.work == parallel.run(
            benches[0].name, "SF-Online"
        ).work

    def test_sink_factory_with_jobs_is_rejected(self):
        from repro.experiments.runner import SuiteResults
        from repro.workloads import suite

        with pytest.raises(ValueError):
            SuiteResults(suite("quick")[:1], jobs=2,
                         sink_factory=lambda name, label: None)


class TestWorkerDeterminism:
    def test_bench_task_counters_match_inprocess_measurement(self):
        """One worker payload, executed through the pool, reproduces
        the in-process measurement bit for bit."""
        from repro.experiments.config import options_for
        from repro.bench.measure import measure_system
        from repro.parallel import TaskSpec, require_ok, run_tasks
        from repro.parallel.tasks import bench_task
        from repro.workloads import benchmark

        payload = {
            "suite": "quick", "benchmark": "allroots",
            "experiment": "IF-Online", "seed": 0, "repeats": 1,
            "trace": False, "metrics": False, "budget_seconds": None,
        }
        (result,) = require_ok(run_tasks(
            bench_task, [TaskSpec("allroots/IF-Online", payload)],
            jobs=1,
        ))
        local = measure_system(
            benchmark("allroots").program.system,
            options_for("IF-Online", seed=0),
            repeats=1,
        )
        assert result.value["status"] == "ok"
        assert result.value["counters"] == local.counters
        assert set(result.value["counters"]) == set(COUNTER_FIELDS)
