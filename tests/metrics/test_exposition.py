"""Prometheus text rendering and the format validator."""

from repro.metrics import MetricsRegistry, validate_exposition
from repro.metrics.exposition import CONTENT_TYPE, render


def build_registry():
    registry = MetricsRegistry()
    registry.counter(
        "c_total", "a counter", ("form",)
    ).labels("standard").inc(3)
    registry.gauge("g", "a gauge").labels().set(2.5)
    hist = registry.histogram("h", "a histogram").labels()
    hist.observe(1)
    hist.observe(17)
    hist.observe(300)
    return registry


class TestRender:
    def test_help_and_type_headers(self):
        text = build_registry().expose()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert "# TYPE h histogram" in text

    def test_counter_sample_with_labels(self):
        text = build_registry().expose()
        assert 'c_total{form="standard"} 3' in text

    def test_histogram_expansion(self):
        text = build_registry().expose()
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 318" in text
        assert "h_count 3" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("k",)).labels(
            'quo"te\\and\nnewline'
        ).inc()
        text = registry.expose()
        assert '\\"' in text
        assert "\\n" in text
        assert validate_exposition(text) == []

    def test_content_type_pins_version(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_empty_registry_renders_empty(self):
        assert render([]) == ""


class TestValidator:
    def test_rendered_output_is_valid(self):
        assert validate_exposition(build_registry().expose()) == []

    def test_sample_without_type_flagged(self):
        errors = validate_exposition("no_type_metric 1\n")
        assert errors

    def test_bad_value_flagged(self):
        text = "# TYPE x counter\nx not_a_number\n"
        assert validate_exposition(text)

    def test_non_cumulative_histogram_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        assert validate_exposition(text)

    def test_missing_inf_bucket_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 5\n"
            "h_count 5\n"
        )
        assert validate_exposition(text)

    def test_duplicate_type_flagged(self):
        text = "# TYPE x counter\n# TYPE x counter\nx 1\n"
        assert validate_exposition(text)
