"""Exit-code contract of ``python -m repro.metrics``."""

import json
import os

from repro.metrics import MetricsRegistry
from repro.metrics.__main__ import main

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BASELINE = os.path.join(REPO, "benchmarks", "BASELINE.json")


def write_exposition(tmp_path, text):
    path = tmp_path / "metrics.prom"
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestCheck:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").labels().inc()
        path = write_exposition(tmp_path, registry.expose())
        assert main(["check", path]) == 0
        assert "ok: valid exposition" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = write_exposition(tmp_path, "no_type 1\nbroken{ 2\n")
        assert main(["check", path]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestDashboard:
    def test_builds_html(self, tmp_path, capsys):
        out = str(tmp_path / "dash.html")
        assert main(["dashboard", "--baseline", BASELINE,
                     "--out", out]) == 0
        assert os.path.exists(out)
        assert "wrote" in capsys.readouterr().out

    def test_fail_on_regression(self, tmp_path):
        with open(BASELINE, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["records"][0]["counters"]["work"] += 1000
        fresh = tmp_path / "BENCH_1.json"
        fresh.write_text(json.dumps(payload), encoding="utf-8")
        out = str(tmp_path / "dash.html")
        assert main(["dashboard", "--baseline", BASELINE,
                     "--reports", str(fresh), "--out", out,
                     "--fail-on-regression"]) == 1
        assert os.path.exists(out)

    def test_no_inputs_exits_two(self, tmp_path, capsys):
        assert main(["dashboard", "--out",
                     str(tmp_path / "x.html")]) == 2
        assert "need --baseline" in capsys.readouterr().err

    def test_snapshot_section(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter(
            "repro_solver_edges_total", "help", ("form",)
        ).labels("SF").inc(7)
        snap = str(tmp_path / "snap.json")
        registry.flush_to(snap)
        out = str(tmp_path / "dash.html")
        assert main(["dashboard", "--baseline", BASELINE,
                     "--snapshots", snap, "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            assert "repro_solver_edges_total" in handle.read()


class TestNoCommand:
    def test_help_exit_code(self, capsys):
        assert main([]) == 2
        capsys.readouterr()
