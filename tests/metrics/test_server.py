"""The stdlib HTTP scrape endpoint."""

import urllib.error
import urllib.request

from repro.metrics import (
    MetricsRegistry,
    serve_in_thread,
    validate_exposition,
)


def scrape(server, path="/metrics"):
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (response.status, dict(response.headers),
                    response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestServer:
    def setup_method(self):
        self.registry = MetricsRegistry()
        self.registry.counter(
            "c_total", "a counter", ("k",)
        ).labels("v").inc(4)
        self.server, self.thread = serve_in_thread(self.registry)

    def teardown_method(self):
        self.server.shutdown()
        self.server.server_close()

    def test_scrape_is_valid_exposition(self):
        status, headers, body = scrape(self.server)
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert validate_exposition(text) == []
        assert 'c_total{k="v"} 4' in text

    def test_scrape_sees_live_updates(self):
        self.registry.counter("c_total", "a counter", ("k",)) \
            .labels("v").inc()
        _, _, body = scrape(self.server)
        assert 'c_total{k="v"} 5' in body.decode("utf-8")

    def test_index_page(self):
        status, _, body = scrape(self.server, "/")
        assert status == 200
        assert b"/metrics" in body

    def test_unknown_path_404(self):
        status, _, _ = scrape(self.server, "/nope")
        assert status == 404


class TestExpositionFailure:
    """Regression: a raising registry must yield a 500, not an empty
    200 (the handler used to swallow the exception with a bare pass)."""

    class _BrokenRegistry(MetricsRegistry):
        def expose(self):
            raise RuntimeError("collector exploded")

    def setup_method(self):
        self.errors = []
        self.registry = self._BrokenRegistry()
        self.server, self.thread = serve_in_thread(
            self.registry, error_hook=self.errors.append
        )

    def teardown_method(self):
        self.server.shutdown()
        self.server.server_close()

    def test_raising_registry_returns_500_with_cause(self):
        status, headers, body = scrape(self.server)
        assert status == 500
        assert "text/plain" in headers["Content-Type"]
        text = body.decode("utf-8")
        assert "exposition failed" in text
        assert "RuntimeError" in text and "collector exploded" in text

    def test_error_hook_receives_the_exception(self):
        scrape(self.server)
        assert len(self.errors) == 1
        assert isinstance(self.errors[0], RuntimeError)

    def test_healthy_paths_keep_working(self):
        status, _, body = scrape(self.server, "/")
        assert status == 200
        assert b"/metrics" in body

    def test_default_hook_writes_traceback_to_stderr(self, capsys):
        import repro.metrics.server as server_module

        server, thread = server_module.serve_in_thread(
            self._BrokenRegistry()
        )
        try:
            status, _, _ = scrape(server)
        finally:
            server.shutdown()
            server.server_close()
        assert status == 500
        err = capsys.readouterr().err
        assert "repro.metrics: exposition failed" in err
        assert "RuntimeError: collector exploded" in err
