"""Registry lifecycle, snapshots, flushers, and the default registry."""

import json
import threading

import pytest

from repro.metrics import (
    MetricsRegistry,
    PeriodicFlusher,
    SNAPSHOT_SCHEMA_VERSION,
    default_registry,
    reset_default_registry,
)


class TestRegistration:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("a",))
        second = registry.counter("x_total", "help", ("a",))
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_labelnames_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("b",))

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "help")
        registry.counter("a_total", "help")
        assert [f.name for f in registry.collect()] == [
            "a_total", "z_total",
        ]

    def test_enable_disable(self):
        registry = MetricsRegistry()
        assert registry.enabled
        registry.disable()
        assert not registry.enabled
        registry.enable()
        assert registry.enabled


class TestSnapshots:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("k",)).labels("v").inc(3)
        registry.gauge("g", "help").labels().set(7)
        hist = registry.histogram("h", "help").labels()
        hist.observe(2)
        hist.observe(40)
        return registry

    def test_snapshot_round_trip_accumulates(self):
        registry = self.build()
        snapshot = registry.snapshot(meta={"suite": "quick"})
        assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert snapshot["meta"]["suite"] == "quick"
        fresh = MetricsRegistry()
        fresh.load_snapshot(snapshot)
        fresh.load_snapshot(snapshot)
        families = {f.name: f for f in fresh.collect()}
        assert families["c_total"].labels("v").to_value() == 6.0
        # Gauges are last-write-wins, not additive.
        assert families["g"].labels().to_value() == 7.0
        hist = families["h"].labels()
        assert hist.count == 4
        assert hist.sum == 84

    def test_unsupported_snapshot_version_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.load_snapshot({"schema_version": 999, "families": []})

    def test_flush_to_writes_loadable_json(self, tmp_path):
        registry = self.build()
        path = str(tmp_path / "metrics.json")
        registry.flush_to(path, meta={"seed": 0})
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        fresh = MetricsRegistry()
        fresh.load_snapshot(payload)
        assert {f.name for f in fresh.collect()} == {
            "c_total", "g", "h",
        }

    def test_clear_empties_registry(self):
        registry = self.build()
        registry.clear()
        assert registry.collect() == []


class TestPeriodicFlusher:
    def test_context_manager_final_flush(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help").labels()
        path = str(tmp_path / "metrics.json")
        with PeriodicFlusher(registry, path, interval=60.0):
            counter.inc(5)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        series = payload["families"][0]["series"]
        assert series[0]["value"] == 5.0

    def test_periodic_flushes_happen(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").labels().inc()
        path = str(tmp_path / "metrics.json")
        flusher = PeriodicFlusher(registry, path, interval=0.01)
        flusher.start()
        try:
            deadline = threading.Event()
            deadline.wait(0.3)
        finally:
            flusher.stop()
        assert flusher.flushes >= 1


class TestDefaultRegistry:
    def test_process_wide_singleton(self):
        reset_default_registry()
        try:
            assert default_registry() is default_registry()
        finally:
            reset_default_registry()

    def test_reset_gives_fresh_registry(self):
        first = default_registry()
        reset_default_registry()
        try:
            assert default_registry() is not first
        finally:
            reset_default_registry()
