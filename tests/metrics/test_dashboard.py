"""Dashboard ingestion, trend math, regression flags, and HTML output."""

import json
import os

import pytest

from repro.metrics.dashboard import (
    build_dashboard,
    build_dashboard_data,
    compute_trends,
    flag_regressions,
    load_trajectory,
    summarize_snapshots,
)

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BASELINE = os.path.join(REPO, "benchmarks", "BASELINE.json")


def read_baseline_payload():
    with open(BASELINE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(tmp_path, name, mutate=None, sha="abc1234def",
                 timestamp="2026-08-06T10:00:00Z"):
    """A synthetic v2 report derived from the committed baseline."""
    payload = read_baseline_payload()
    payload["schema_version"] = 2
    payload["git_sha"] = sha
    payload["timestamp"] = timestamp
    if mutate is not None:
        mutate(payload)
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestTrajectory:
    def test_baseline_anchors_first(self, tmp_path):
        fresh = write_report(tmp_path, "BENCH_1.json")
        points = load_trajectory(BASELINE, [fresh])
        assert points[0].is_baseline
        assert points[1].label == "abc1234de"

    def test_timestamps_reorder_reports(self, tmp_path):
        newer = write_report(tmp_path, "BENCH_1.json", sha="b" * 9,
                             timestamp="2026-08-06T12:00:00Z")
        older = write_report(tmp_path, "BENCH_2.json", sha="a" * 9,
                             timestamp="2026-08-05T12:00:00Z")
        points = load_trajectory(None, [newer, older])
        assert [p.label for p in points] == ["a" * 9, "b" * 9]

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ValueError):
            load_trajectory(None, [])


class TestTrends:
    def test_ratio_of_sums(self, tmp_path):
        points = load_trajectory(
            BASELINE, [write_report(tmp_path, "BENCH_1.json")]
        )
        trends = compute_trends(points)
        for label, trend in trends.items():
            assert len(trend.work) == len(points)
            if label.endswith("-Online"):
                assert trend.visits_per_insertion[0] > 0
                assert 0 < trend.detection_rate[0] <= 1
            else:
                assert trend.visits_per_insertion[0] == 0.0


class TestFlags:
    def test_identical_reports_flag_nothing(self, tmp_path):
        points = load_trajectory(
            BASELINE, [write_report(tmp_path, "BENCH_1.json")]
        )
        flags, notes = flag_regressions(points)
        assert flags == []

    def test_work_regression_flagged(self, tmp_path):
        def worsen(payload):
            payload["records"][0]["counters"]["work"] += 1000

        points = load_trajectory(
            BASELINE, [write_report(tmp_path, "BENCH_1.json", worsen)]
        )
        flags, _ = flag_regressions(points)
        assert flags

    def test_incomparable_baseline_noted(self, tmp_path):
        def reseed(payload):
            payload["seed"] = 12345

        points = load_trajectory(
            BASELINE, [write_report(tmp_path, "BENCH_1.json", reseed)]
        )
        flags, notes = flag_regressions(points)
        assert flags == []
        assert any("not comparable" in note for note in notes)


class TestSnapshots:
    def test_summarize_accumulates_counters(self, tmp_path):
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "repro_fuzz_disagreements_total", "help", ("label", "kind")
        ).labels("SF-Online", "least").inc(2)
        path = str(tmp_path / "snap.json")
        registry.flush_to(path)
        rows = summarize_snapshots([path, path])
        assert rows == [(
            "repro_fuzz_disagreements_total",
            "kind=least,label=SF-Online",
            4.0,
        )]


class TestHtml:
    def build(self, tmp_path, mutate=None):
        out = str(tmp_path / "dashboard.html")
        build_dashboard(
            BASELINE,
            [write_report(tmp_path, "BENCH_1.json", mutate)],
            out,
        )
        with open(out, "r", encoding="utf-8") as handle:
            return handle.read()

    def test_self_contained_html(self, tmp_path):
        html = self.build(tmp_path)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert 'rel="stylesheet"' not in html

    def test_charts_table_and_legend_present(self, tmp_path):
        html = self.build(tmp_path)
        assert "Work" in html
        assert "<table" in html
        assert "legend" in html
        assert "2.2" in html  # Theorem 5.2 reference line

    def test_regression_rendered(self, tmp_path):
        def worsen(payload):
            payload["records"][0]["counters"]["work"] += 1000

        html = self.build(tmp_path, worsen)
        assert "regression" in html.lower()

    def test_dashboard_data_counts(self, tmp_path):
        data = build_dashboard_data(
            BASELINE, [write_report(tmp_path, "BENCH_1.json")]
        )
        assert len(data.points) == 2
        assert data.flags == []
