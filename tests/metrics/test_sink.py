"""MetricsSink: aggregated instruments must mirror SolverStats."""

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder
from repro.metrics import MetricsRegistry, MetricsSink
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def build_system():
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    a, b, c, d, e = system.fresh_vars(5)
    system.add(a, b)
    system.add(b, c)
    system.add(c, a)
    system.add(c, d)
    system.add(d, e)
    system.add(system.term(box, (system.zero,), label="s"), a)
    system.add(e, system.term(box, (system.one,), label="t"))
    return system


def options(sink, form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE):
    return SolverOptions(form=form, cycles=cycles, order=CreationOrder(),
                         sink=sink)


def value_of(registry, name, **labels):
    for family in registry.collect():
        if family.name != name:
            continue
        total = 0.0
        for values, child in family.series():
            row = dict(zip(family.labelnames, values))
            if all(row.get(k) == v for k, v in labels.items()):
                total += child.to_value()
        return total
    raise AssertionError(f"no family named {name}")


class TestSinkMirrorsStats:
    def solve_with_sink(self, cycles=CyclePolicy.ONLINE):
        registry = MetricsRegistry()
        opts = options(None, cycles=cycles)
        sink = MetricsSink.for_options(opts, registry, suite="s",
                                       benchmark="b")
        solution = solve(build_system(), opts.replace(sink=sink))
        return registry, solution.stats

    def test_work_equals_edge_total(self):
        registry, stats = self.solve_with_sink()
        assert value_of(registry,
                        "repro_solver_edges_total") == stats.work

    def test_search_counters(self):
        registry, stats = self.solve_with_sink()
        assert value_of(
            registry, "repro_solver_searches_total"
        ) == stats.cycle_searches
        assert value_of(
            registry, "repro_solver_search_hits_total"
        ) == stats.cycles_found

    def test_search_visit_histogram_sum(self):
        registry, stats = self.solve_with_sink()
        for family in registry.collect():
            if family.name == "repro_solver_search_visits":
                (values, child), = family.series()
                assert child.sum == stats.cycle_search_visits
                assert child.count == stats.cycle_searches
                return
        raise AssertionError("search visits histogram missing")

    def test_vars_eliminated(self):
        registry, stats = self.solve_with_sink()
        assert value_of(
            registry, "repro_solver_vars_eliminated_total"
        ) == stats.vars_eliminated

    def test_base_labels_applied(self):
        registry, _ = self.solve_with_sink()
        family = next(
            f for f in registry.collect()
            if f.name == "repro_solver_searches_total"
        )
        (values, _), = family.series()
        row = dict(zip(family.labelnames, values))
        assert row["form"] == GraphForm.INDUCTIVE.value
        assert row["mode"] == CyclePolicy.ONLINE.value
        assert row["suite"] == "s"
        assert row["benchmark"] == "b"

    def test_disabled_registry_accumulates_nothing(self):
        registry = MetricsRegistry()
        registry.disable()
        opts = options(None)
        sink = MetricsSink.for_options(opts, registry)
        solve(build_system(), opts.replace(sink=sink))
        for family in registry.collect():
            for _, child in family.series():
                value = getattr(child, "value", None)
                if value is not None:
                    assert value == 0.0
                else:
                    assert child.count == 0

    def test_exposition_of_live_run_is_valid(self):
        from repro.metrics import validate_exposition

        registry, _ = self.solve_with_sink()
        assert validate_exposition(registry.expose()) == []

    def test_budget_stop_counter(self):
        registry = MetricsRegistry()
        sink = MetricsSink(registry, form="f", mode="m")
        sink.budget_stop("work", 100.0, 101.0)
        sink.budget_stop("work", 100.0, 102.0)
        assert value_of(
            registry, "repro_solver_budget_stops_total", reason="work"
        ) == 2

    def test_audit_failure_counter(self):
        class Failure:
            check = "acyclic"

        registry = MetricsRegistry()
        sink = MetricsSink(registry)
        sink.audit_failure(Failure())
        assert value_of(
            registry, "repro_solver_audit_failures_total"
        ) == 1
