"""Instrument and family semantics."""

import pytest

from repro.metrics.instruments import (
    Counter,
    Family,
    Gauge,
    Histogram,
    valid_label_name,
    valid_metric_name,
)
from repro.trace.buckets import bucket_floor


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.to_value() == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.to_value() == 12


class TestHistogram:
    def test_observe_accumulates(self):
        hist = Histogram()
        for value in (1, 1, 17, 300):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 319
        assert hist.mean == 319 / 4

    def test_buckets_shared_with_trace(self):
        """Metrics histograms use the trace-side bucket boundaries."""
        hist = Histogram()
        hist.observe(17)
        assert list(hist.buckets) == [bucket_floor(17)]

    def test_cumulative_monotone(self):
        hist = Histogram()
        for value in (1, 2, 2, 40, 100, 1000):
            hist.observe(value)
        cumulative = hist.cumulative()
        counts = [count for _, count in cumulative]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count


class TestFamily:
    def test_label_values_create_children(self):
        family = Family("x_total", "counter", "help", ("a", "b"))
        child = family.labels("1", "2")
        child.inc()
        assert family.labels("1", "2") is child
        assert family.labels(a="1", b="2") is child
        assert len(family.series()) == 1

    def test_label_arity_checked(self):
        family = Family("x_total", "counter", "help", ("a",))
        with pytest.raises(ValueError):
            family.labels("1", "2")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Family("0bad", "counter", "help", ())
        with pytest.raises(ValueError):
            Family("ok_total", "counter", "help", ("0bad",))

    def test_to_dict_merge_dict_round_trip(self):
        family = Family("x_total", "counter", "help", ("a",))
        family.labels("1").inc(3)
        other = Family("x_total", "counter", "help", ("a",))
        other.merge_dict(family.to_dict())
        other.merge_dict(family.to_dict())
        assert other.labels("1").to_value() == 6.0

    def test_histogram_merge_accumulates(self):
        family = Family("h", "histogram", "help", ())
        family.labels().observe(5)
        family.labels().observe(100)
        other = Family("h", "histogram", "help", ())
        other.merge_dict(family.to_dict())
        child = other.labels()
        assert child.count == 2
        assert child.sum == 105


class TestNames:
    def test_metric_name_grammar(self):
        assert valid_metric_name("repro_solver_edges_total")
        assert valid_metric_name(":colons_ok")
        assert not valid_metric_name("9starts_with_digit")
        assert not valid_metric_name("has-dash")

    def test_label_name_grammar(self):
        assert valid_label_name("form")
        assert not valid_label_name("__reserved")
        assert not valid_label_name("has-dash")
