"""Tests for the iterative Tarjan SCC implementation."""

from repro.graph import (
    strongly_connected_components,
    summarize_sccs,
    witness_map,
)


def components_as_sets(vertices, edges):
    return {
        frozenset(c)
        for c in strongly_connected_components(vertices, edges)
    }


class TestScc:
    def test_empty_graph(self):
        assert strongly_connected_components([], []) == []

    def test_isolated_vertices(self):
        out = components_as_sets([1, 2, 3], [])
        assert out == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_simple_cycle(self):
        out = components_as_sets([0, 1, 2], [(0, 1), (1, 2), (2, 0)])
        assert out == {frozenset({0, 1, 2})}

    def test_two_cycles_joined_by_edge(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        out = components_as_sets(range(4), edges)
        assert out == {frozenset({0, 1}), frozenset({2, 3})}

    def test_self_loop_is_trivial_component(self):
        out = components_as_sets([0], [(0, 0)])
        assert out == {frozenset({0})}

    def test_dag_reverse_topological_order(self):
        components = strongly_connected_components(
            [0, 1, 2], [(0, 1), (1, 2)]
        )
        order = [c[0] for c in components]
        # Tarjan emits sinks first.
        assert order.index(2) < order.index(0)

    def test_vertices_only_in_edges_are_included(self):
        out = components_as_sets([], [(7, 8)])
        assert out == {frozenset({7}), frozenset({8})}

    def test_long_chain_no_recursion_limit(self):
        n = 30_000
        edges = [(i, i + 1) for i in range(n - 1)]
        components = strongly_connected_components(range(n), edges)
        assert len(components) == n

    def test_long_cycle(self):
        n = 30_000
        edges = [(i, (i + 1) % n) for i in range(n)]
        components = strongly_connected_components(range(n), edges)
        assert len(components) == 1
        assert len(components[0]) == n

    def test_figure_4_cycle(self):
        # The paper's Figure 4: X1 -> X2 -> X3 -> X1.
        out = components_as_sets([1, 2, 3], [(1, 2), (2, 3), (3, 1)])
        assert out == {frozenset({1, 2, 3})}


class TestSummarize:
    def test_counts(self):
        edges = [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (5, 6)]
        summary = summarize_sccs(range(7), edges)
        assert summary.vars_in_cycles == 5
        assert summary.max_scc_size == 3
        assert summary.nontrivial_sccs == 2

    def test_acyclic(self):
        summary = summarize_sccs(range(3), [(0, 1), (1, 2)])
        assert summary.vars_in_cycles == 0
        assert summary.max_scc_size == 1
        assert summary.nontrivial_sccs == 0


class TestWitnessMap:
    def test_witness_is_minimum(self):
        mapping = witness_map(range(4), [(3, 2), (2, 3), (1, 0), (0, 1)])
        assert mapping == {3: 2, 1: 0}

    def test_trivial_components_not_mapped(self):
        mapping = witness_map(range(3), [(0, 1)])
        assert mapping == {}
