"""Tests for variable orders."""

from repro.graph import (
    CreationOrder,
    RandomOrder,
    ReverseCreationOrder,
    VariableOrder,
)


class TestSpecs:
    def test_random_is_permutation(self):
        ranks = RandomOrder(seed=42).ranks(100)
        assert sorted(ranks) == list(range(100))

    def test_random_is_deterministic_in_seed(self):
        assert RandomOrder(7).ranks(50) == RandomOrder(7).ranks(50)

    def test_different_seeds_differ(self):
        assert RandomOrder(1).ranks(50) != RandomOrder(2).ranks(50)

    def test_random_is_actually_shuffled(self):
        ranks = RandomOrder(0).ranks(100)
        assert ranks != list(range(100))

    def test_creation_order(self):
        assert CreationOrder().ranks(4) == [0, 1, 2, 3]

    def test_reverse_creation_order(self):
        assert ReverseCreationOrder().ranks(4) == [3, 2, 1, 0]

    def test_names(self):
        assert "random" in RandomOrder(3).name
        assert CreationOrder().name == "creation"


class TestVariableOrder:
    def test_rank_lookup(self):
        order = VariableOrder(CreationOrder(), 5)
        assert order.rank(3) == 3
        assert len(order) == 5

    def test_late_variables_get_next_ranks(self):
        order = VariableOrder(CreationOrder(), 3)
        assert order.rank(7) == 7
        assert len(order) == 8

    def test_late_ranks_above_existing_random_ranks(self):
        order = VariableOrder(RandomOrder(0), 10)
        late = order.rank(10)
        assert late == 10
        assert late >= max(order.ranks[:10])
