"""Tests for the partial chain search (paper Figure 3)."""

from repro.graph import SearchMode, SolverStats, find_chain_path


def search(adjacency, start, target, ranks=None, mode=SearchMode.DECREASING,
           max_visits=None, stats=None):
    n = len(adjacency)
    ranks = ranks if ranks is not None else list(range(n))
    stats = stats if stats is not None else SolverStats()
    return find_chain_path(
        adjacency,
        find=lambda v: v,
        rank=lambda v: ranks[v],
        start=start,
        target=target,
        mode=mode,
        stats=stats,
        max_visits=max_visits,
    )


class TestDecreasingSearch:
    def test_direct_edge(self):
        # 1 -> 0 with ranks equal to ids: decreasing.
        assert search([set(), {0}], start=1, target=0) == [1, 0]

    def test_two_step_chain(self):
        adjacency = [set(), {0}, {1}]
        assert search(adjacency, start=2, target=0) == [2, 1, 0]

    def test_start_equals_target(self):
        assert search([set()], start=0, target=0) == [0]

    def test_increasing_edge_not_followed(self):
        # 0 -> 1 but rank(1) > rank(0): blocked in decreasing mode.
        adjacency = [{1}, set()]
        assert search(adjacency, start=0, target=1) is None

    def test_partiality_longer_cycle_missed(self):
        # Chain 2 -> 0 -> 1: the step 0 -> 1 increases rank, so target
        # 1 is unreachable even though a path exists.
        adjacency = [{1}, set(), {0}]
        assert search(adjacency, start=2, target=1) is None

    def test_branching_finds_some_path(self):
        adjacency = [set(), {0}, {0}, {1, 2}]
        path = search(adjacency, start=3, target=0)
        assert path is not None
        assert path[0] == 3 and path[-1] == 0
        assert len(path) == 3

    def test_no_path(self):
        adjacency = [set(), set(), {1}]
        assert search(adjacency, start=2, target=0) is None

    def test_stale_entries_resolved_through_find(self):
        # Node 2's adjacency mentions 3, which has been collapsed to 0.
        adjacency = [set(), set(), {3}, set()]
        forward = {3: 0}
        stats = SolverStats()
        path = find_chain_path(
            adjacency,
            find=lambda v: forward.get(v, v),
            rank=lambda v: v,
            start=2,
            target=0,
            mode=SearchMode.DECREASING,
            stats=stats,
        )
        assert path == [2, 0]


class TestIncreasingSearch:
    def test_follows_increasing_only(self):
        adjacency = [{1}, {2}, set()]
        assert search(
            adjacency, start=0, target=2, mode=SearchMode.INCREASING
        ) == [0, 1, 2]

    def test_decreasing_edge_blocked(self):
        adjacency = [set(), {0}]
        assert search(
            adjacency, start=1, target=0, mode=SearchMode.INCREASING
        ) is None


class TestBudgetAndStats:
    def test_max_visits_budget(self):
        # A long chain; a tiny budget stops the search early.
        n = 50
        adjacency = [set() for _ in range(n)]
        for i in range(1, n):
            adjacency[i].add(i - 1)
        assert search(adjacency, start=n - 1, target=0,
                      max_visits=3) is None

    def test_search_counted(self):
        stats = SolverStats()
        search([set(), {0}], start=1, target=0, stats=stats)
        assert stats.cycle_searches == 1
        assert stats.cycle_search_visits >= 1

    def test_failed_search_counts_visits(self):
        stats = SolverStats()
        adjacency = [set(), {0}, {1}]
        search(adjacency, start=2, target=99, stats=stats)
        assert stats.cycle_searches == 1
        assert stats.cycle_search_visits >= 2

    def test_visited_not_revisited(self):
        # Diamond: both branches reach 0; search must terminate and
        # visit each node at most once.
        adjacency = [set(), {0}, {0}, {1, 2}]
        stats = SolverStats()
        search(adjacency, start=3, target=99, stats=stats)
        assert stats.cycle_search_visits <= 4
