"""Tests for the statistics container."""

from repro.graph import SolverStats


class TestSolverStats:
    def test_final_edges_sum(self):
        stats = SolverStats()
        stats.finalize_edges(10, 5, 3)
        assert stats.final_edges == 18
        assert stats.final_var_var_edges == 10

    def test_total_seconds(self):
        stats = SolverStats()
        stats.closure_seconds = 1.5
        stats.least_solution_seconds = 0.5
        assert stats.total_seconds == 2.0

    def test_mean_search_visits_zero_searches(self):
        assert SolverStats().mean_search_visits == 0.0

    def test_mean_search_visits(self):
        stats = SolverStats()
        stats.cycle_searches = 4
        stats.cycle_search_visits = 10
        assert stats.mean_search_visits == 2.5

    def test_as_dict_keys(self):
        d = SolverStats().as_dict()
        for key in ("work", "redundant", "final_edges", "vars_eliminated",
                    "total_seconds", "mean_search_visits"):
            assert key in d

    def test_fresh_counters_zero(self):
        stats = SolverStats()
        assert stats.work == 0
        assert stats.redundant == 0
        assert stats.cycles_found == 0
        assert stats.vars_eliminated == 0

    def test_visits_per_insertion(self):
        stats = SolverStats()
        stats.work = 200
        stats.cycle_search_visits = 50
        assert stats.visits_per_insertion == 0.25

    def test_visits_per_insertion_zero_work(self):
        assert SolverStats().visits_per_insertion == 0.0

    def test_collapse_ratio(self):
        stats = SolverStats()
        stats.cycles_found = 4
        stats.vars_eliminated = 10
        assert stats.collapse_ratio == 2.5

    def test_collapse_ratio_zero_cycles(self):
        assert SolverStats().collapse_ratio == 0.0

    def test_derived_keys_in_as_dict(self):
        d = SolverStats().as_dict()
        for key in SolverStats.DERIVED_KEYS:
            assert key in d

    def test_from_dict_round_trip(self):
        stats = SolverStats()
        stats.work = 123
        stats.redundant = 7
        stats.cycle_searches = 10
        stats.cycle_search_visits = 22
        stats.cycles_found = 4
        stats.vars_eliminated = 9
        stats.closure_seconds = 0.25
        stats.finalize_edges(30, 8, 5)
        rebuilt = SolverStats.from_dict(stats.as_dict())
        assert rebuilt.as_dict() == stats.as_dict()
        # Derived values are recomputed, not stored.
        assert rebuilt.visits_per_insertion == stats.visits_per_insertion
        assert rebuilt.collapse_ratio == stats.collapse_ratio

    def test_from_dict_rejects_unknown_keys(self):
        import pytest

        payload = SolverStats().as_dict()
        payload["not_a_counter"] = 1
        with pytest.raises(KeyError):
            SolverStats.from_dict(payload)
