"""Tests for the statistics container."""

from repro.graph import SolverStats


class TestSolverStats:
    def test_final_edges_sum(self):
        stats = SolverStats()
        stats.finalize_edges(10, 5, 3)
        assert stats.final_edges == 18
        assert stats.final_var_var_edges == 10

    def test_total_seconds(self):
        stats = SolverStats()
        stats.closure_seconds = 1.5
        stats.least_solution_seconds = 0.5
        assert stats.total_seconds == 2.0

    def test_mean_search_visits_zero_searches(self):
        assert SolverStats().mean_search_visits == 0.0

    def test_mean_search_visits(self):
        stats = SolverStats()
        stats.cycle_searches = 4
        stats.cycle_search_visits = 10
        assert stats.mean_search_visits == 2.5

    def test_as_dict_keys(self):
        d = SolverStats().as_dict()
        for key in ("work", "redundant", "final_edges", "vars_eliminated",
                    "total_seconds", "mean_search_visits"):
            assert key in d

    def test_fresh_counters_zero(self):
        stats = SolverStats()
        assert stats.work == 0
        assert stats.redundant == 0
        assert stats.cycles_found == 0
        assert stats.vars_eliminated == 0
