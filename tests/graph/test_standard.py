"""Behavioural tests for the standard-form graph (paper Section 2.3)."""

from repro import Variance
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def sf_options(**overrides):
    base = dict(form=GraphForm.STANDARD, cycles=CyclePolicy.NONE,
                order=CreationOrder())
    base.update(overrides)
    return SolverOptions(**base)


def make_source(system, label):
    c = system.constructor("c", (Variance.COVARIANT,))
    return system.term(c, (system.zero,), label=label)


class TestClosure:
    def test_source_propagates_forward(self, system):
        x, y, z = system.fresh_vars(3)
        src = make_source(system, "s")
        system.add(src, x)
        system.add(x, y)
        system.add(y, z)
        solution = solve(system, sf_options())
        for v in (x, y, z):
            assert solution.least_solution(v) == frozenset({src})

    def test_least_solution_explicit_in_sources(self, system):
        x, y = system.fresh_vars(2)
        src = make_source(system, "s")
        system.add(src, x)
        system.add(x, y)
        solution = solve(system, sf_options())
        # In SF the source set of every variable IS its least solution.
        assert solution.graph.sources[solution.representative(y)] == {src}

    def test_all_var_var_edges_are_successors(self, system):
        x, y, z = system.fresh_vars(3)
        system.add(x, y)
        system.add(z, y)  # would be a pred edge in IF for some orders
        solution = solve(system, sf_options())
        graph = solution.graph
        assert graph.canonical_successors(x.index) == {y.index}
        assert graph.canonical_successors(z.index) == {y.index}
        assert graph.canonical_predecessors(y.index) == set()

    def test_source_meets_sink_resolves(self, system):
        c = system.constructor("c", (Variance.COVARIANT,))
        x, inner, out = system.fresh_vars(3)
        system.add(system.term(c, (inner,), label="s"), x)
        system.add(x, system.term(c, (out,)))
        system.add(make_source(system, "payload"), inner)
        solution = solve(system, sf_options())
        # c(inner) <= c(out) gives inner <= out, carrying the payload.
        assert any(t.label == "payload"
                   for t in solution.least_solution(out))

    def test_redundant_addition_counted(self, system):
        x, y = system.fresh_vars(2)
        system.add(x, y)
        system.add(x, y)
        solution = solve(system, sf_options())
        assert solution.stats.redundant >= 1
        assert solution.stats.final_var_var_edges == 1

    def test_self_constraint_dropped(self, system):
        x = system.fresh_var()
        system.add(x, x)
        solution = solve(system, sf_options())
        assert solution.stats.self_edges == 1
        assert solution.stats.final_var_var_edges == 0

    def test_diamond_counts_redundant_work(self, system):
        # src -> x -> {a, b} -> y: the source reaches y twice.
        x, a, b, y = system.fresh_vars(4)
        src = make_source(system, "s")
        system.add(src, x)
        for mid in (a, b):
            system.add(x, mid)
            system.add(mid, y)
        solution = solve(system, sf_options())
        assert solution.least_solution(y) == frozenset({src})
        assert solution.stats.redundant >= 1


class TestOnlineCycles:
    def test_two_cycle_collapsed(self, system):
        # SF's decreasing search finds the cycle when the closing edge
        # runs from a low-ranked to a high-ranked variable, so insert
        # y <= x first and close with x <= y.
        x, y = system.fresh_vars(2)
        system.add(y, x)
        system.add(x, y)
        solution = solve(system, sf_options(cycles=CyclePolicy.ONLINE))
        assert solution.same_component(x, y)
        assert solution.stats.vars_eliminated == 1
        assert solution.stats.cycles_found == 1

    def test_witness_is_lowest_rank(self, system):
        x, y = system.fresh_vars(2)
        system.add(y, x)
        system.add(x, y)
        solution = solve(system, sf_options(cycles=CyclePolicy.ONLINE))
        # CreationOrder: x has the lower rank and must be the witness.
        assert solution.representative(y) == x.index

    def test_collapsed_cycle_shares_solution(self, system):
        x, y, z = system.fresh_vars(3)
        src = make_source(system, "s")
        system.add(x, y)
        system.add(y, z)
        system.add(z, x)
        system.add(src, y)
        solution = solve(system, sf_options(cycles=CyclePolicy.ONLINE))
        for v in (x, y, z):
            assert solution.least_solution(v) == frozenset({src})

    def test_detection_is_partial(self, system):
        # The closing edge v1->v2 searches from v2 along successors of
        # decreasing rank: v2->v0 qualifies but v0->v1 increases, so
        # this 3-cycle is missed — SF detection is partial by design.
        v0, v1, v2 = system.fresh_vars(3)
        system.add(v2, v0)
        system.add(v0, v1)
        system.add(v1, v2)
        solution = solve(system, sf_options(cycles=CyclePolicy.ONLINE))
        assert solution.stats.vars_eliminated == 0

    def test_increasing_mode_runs_searches(self, system):
        from repro.graph import SearchMode

        v0, v1, v2 = system.fresh_vars(3)
        system.add(v2, v0)
        system.add(v0, v1)
        system.add(v1, v2)
        solution = solve(system, sf_options(
            cycles=CyclePolicy.ONLINE, search_mode=SearchMode.INCREASING
        ))
        assert solution.stats.cycle_searches >= 1

    def test_increasing_mode_detects_inverted_case(self, system):
        # Mirror image of the partial case: with the closing edge going
        # from high rank to low, the increasing-chain ablation finds the
        # cycle that the decreasing search misses.
        v0, v1, v2 = system.fresh_vars(3)
        system.add(v0, v1)
        system.add(v1, v2)
        system.add(v2, v0)
        from repro.graph import SearchMode

        decreasing = solve(
            system, sf_options(cycles=CyclePolicy.ONLINE)
        )
        increasing = solve(system, sf_options(
            cycles=CyclePolicy.ONLINE, search_mode=SearchMode.INCREASING
        ))
        assert decreasing.stats.vars_eliminated == 0
        assert increasing.stats.vars_eliminated == 2
