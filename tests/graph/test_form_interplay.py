"""Scenario tests contrasting the two forms on the same constraints.

These encode the worked examples of docs/ALGORITHMS.md: the paper's
Figure 2 chain (SF copies sources, IF defers to the sweep), the SF
detection miss, and the IF detection of the same cycle.
"""

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def figure2_system(k=3, l=4, m=2):
    """Paper Figure 2: L_1..L_k <= X <= Y_1..Y_l <= Z <= R_1..R_m.

    Variables are created X, Z, Y_1..Y_l so that under CreationOrder
    the ranks satisfy o(X) < o(Z) < o(Y_i) — the ordering the paper's
    example assumes, which makes IF add the transitive X <= Z edge.
    """
    system = ConstraintSystem()
    c = system.constructor("c", (Variance.COVARIANT,))
    x = system.fresh_var("X")
    z = system.fresh_var("Z")
    ys = system.fresh_vars(l, "Y")
    for i in range(k):
        system.add(system.term(c, (system.zero,), label=f"L{i}"), x)
    for y in ys:
        system.add(x, y)
        system.add(y, z)
    sink_args = system.fresh_vars(m, "r")
    for arg in sink_args:
        system.add(z, system.term(c, (arg,)))
    return system, x, ys, z


def run(system, form, cycles=CyclePolicy.NONE):
    return solve(system, SolverOptions(
        form=form, cycles=cycles, order=CreationOrder()))


class TestFigure2:
    def test_sf_copies_sources_everywhere(self):
        system, x, ys, z = figure2_system()
        solution = run(system, GraphForm.STANDARD)
        graph = solution.graph
        for var in (x, *ys, z):
            assert len(graph.sources[var.index]) == 3

    def test_if_defers_to_sweep(self):
        system, x, ys, z = figure2_system()
        solution = run(system, GraphForm.INDUCTIVE)
        graph = solution.graph
        # Sources live only at X (the lowest-ordered variable).
        assert len(graph.sources[x.index]) == 3
        assert graph.sources[z.index] == set()
        # Yet the least solution is identical.
        assert solution.least_solution(z) == \
            run(system, GraphForm.STANDARD).least_solution(z)

    def test_sf_redundant_additions_scale_with_paths(self):
        wide_system, *_ = figure2_system(l=8)
        narrow_system, *_ = figure2_system(l=2)
        wide = run(wide_system, GraphForm.STANDARD)
        narrow = run(narrow_system, GraphForm.STANDARD)
        # Each extra Y adds k redundant source re-additions at Z.
        assert wide.stats.redundant > narrow.stats.redundant

    def test_if_adds_transitive_var_var_edge(self):
        system, x, ys, z = figure2_system()
        solution = run(system, GraphForm.INDUCTIVE)
        # Closure adds X <= Z through any Y (paper: "note the extra
        # variable-variable edge X -> Z").
        assert x.index in solution.graph.canonical_predecessors(z.index)


class TestDetectionContrast:
    EDGES = [(2, 0), (0, 1), (1, 2)]  # 3-cycle, tricky insertion order

    def build(self):
        system = ConstraintSystem()
        variables = system.fresh_vars(3)
        for left, right in self.EDGES:
            system.add(variables[left], variables[right])
        return system, variables

    def test_sf_misses_this_cycle(self):
        system, _ = self.build()
        solution = run(system, GraphForm.STANDARD, CyclePolicy.ONLINE)
        assert solution.stats.vars_eliminated == 0

    def test_if_catches_at_least_a_subcycle(self):
        # The §2.5 theorem guarantees a two-cycle is exposed — not that
        # the whole SCC collapses at once.  Here IF's closure adds the
        # transitive v1 <= v0 edge whose insertion reveals (v0, v1).
        system, variables = self.build()
        solution = run(system, GraphForm.INDUCTIVE, CyclePolicy.ONLINE)
        assert solution.stats.vars_eliminated >= 1
        assert solution.same_component(variables[0], variables[1])

    def test_answers_agree_despite_the_miss(self):
        system, variables = self.build()
        c = system.constructor("c", (Variance.COVARIANT,))
        system.add(system.term(c, (system.zero,), label="s"),
                   variables[1])
        sf = run(system, GraphForm.STANDARD, CyclePolicy.ONLINE)
        if_ = run(system, GraphForm.INDUCTIVE, CyclePolicy.ONLINE)
        for var in variables:
            assert sf.least_solution(var) == if_.least_solution(var)
