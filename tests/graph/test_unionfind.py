"""Tests for union-find with explicit witnesses."""

from repro.graph import UnionFind


class TestBasics:
    def test_initially_self_representative(self):
        uf = UnionFind(5)
        assert all(uf.find(i) == i for i in range(5))

    def test_union_into_witness(self):
        uf = UnionFind(5)
        assert uf.union_into(2, 4)
        assert uf.find(4) == 2
        assert uf.find(2) == 2

    def test_union_same_set_returns_false(self):
        uf = UnionFind(5)
        uf.union_into(0, 1)
        assert not uf.union_into(0, 1)
        assert not uf.union_into(1, 0)

    def test_union_through_non_representatives(self):
        uf = UnionFind(6)
        uf.union_into(0, 1)
        uf.union_into(2, 3)
        # Union via the absorbed members: roots 0 and 2 merge.
        uf.union_into(1, 3)
        assert uf.find(3) == 0
        assert uf.find(2) == 0

    def test_same(self):
        uf = UnionFind(4)
        uf.union_into(1, 2)
        assert uf.same(1, 2)
        assert not uf.same(0, 3)

    def test_is_representative(self):
        uf = UnionFind(3)
        uf.union_into(0, 1)
        assert uf.is_representative(0)
        assert not uf.is_representative(1)

    def test_collapsed_count(self):
        uf = UnionFind(5)
        assert uf.collapsed_count == 0
        uf.union_into(0, 1)
        uf.union_into(0, 2)
        uf.union_into(0, 1)  # no-op
        assert uf.collapsed_count == 2

    def test_representatives_iteration(self):
        uf = UnionFind(4)
        uf.union_into(0, 3)
        assert list(uf.representatives()) == [0, 1, 2]

    def test_grow(self):
        uf = UnionFind(2)
        uf.grow(5)
        assert len(uf) == 5
        assert uf.find(4) == 4

    def test_grow_is_monotone(self):
        uf = UnionFind(5)
        uf.grow(3)  # shrink request ignored
        assert len(uf) == 5

    def test_path_compression_flattens(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union_into(i + 1, i)  # chain 9 <- 8 <- ... <- 0
        assert uf.find(0) == 9
        # After compression, the parent pointer is direct.
        assert uf._parent[0] == 9

    def test_deep_chain_no_recursion(self):
        n = 50_000
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union_into(i + 1, i)
        assert uf.find(0) == n - 1
