"""Tests for shared constraint-graph machinery (collapse, accounting)."""

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def options(form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE):
    return SolverOptions(form=form, cycles=cycles, order=CreationOrder())


class TestCollapse:
    def build_cycle(self, extra=()):
        system = ConstraintSystem()
        box = system.constructor("box", (Variance.COVARIANT,))
        a, b, c = system.fresh_vars(3)
        system.add(a, b)
        system.add(b, a)
        for left, right in extra:
            variables = {0: a, 1: b, 2: c}
            system.add(variables[left], variables[right])
        return system, (a, b, c), box

    def test_witness_inherits_adjacency(self):
        system, (a, b, c), box = self.build_cycle(extra=[(1, 2)])
        src = system.term(box, (system.zero,), label="s")
        system.add(src, a)
        solution = solve(system, options())
        # a is the witness (lowest creation rank); b's edge to c must
        # now serve a.
        assert solution.representative(b) == a.index
        assert solution.least_solution(c) == frozenset({src})

    def test_incoming_stale_edges_still_flow(self):
        system, (a, b, c), box = self.build_cycle(extra=[(2, 1)])
        src = system.term(box, (system.zero,), label="s")
        system.add(src, c)  # c <= b (stale after b collapses into a)
        solution = solve(system, options())
        assert solution.least_solution(a) == frozenset({src})
        assert solution.least_solution(b) == frozenset({src})

    def test_absorbed_node_storage_cleared(self):
        system, (a, b, _), box = self.build_cycle()
        system.add(system.term(box, (system.zero,), label="s"), b)
        solution = solve(system, options())
        absorbed = (
            b.index
            if solution.representative(b) == a.index
            else a.index
        )
        graph = solution.graph
        assert graph.sources[absorbed] == set()
        assert graph.succ_vars[absorbed] == set()
        assert graph.pred_vars[absorbed] == set()

    def test_collapse_path_counts_once_per_cycle(self):
        system, _, _ = self.build_cycle()
        solution = solve(system, options())
        assert solution.stats.cycles_found == 1
        assert solution.stats.vars_eliminated == 1


class TestFinalAccounting:
    def test_canonical_sets_dedupe_collapsed_targets(self):
        system = ConstraintSystem()
        a, b, x = system.fresh_vars(3)
        # x flows into both a and b; then a and b collapse (the order
        # b <= a, a <= b is the one SF's partial search detects).
        system.add(x, a)
        system.add(x, b)
        system.add(b, a)
        system.add(a, b)
        solution = solve(system, options(form=GraphForm.STANDARD))
        successors = solution.graph.canonical_successors(x.index)
        assert len(successors) == 1

    def test_finalize_counts_by_kind(self):
        system = ConstraintSystem()
        box = system.constructor("box", (Variance.COVARIANT,))
        x, y = system.fresh_vars(2)
        system.add(system.term(box, (system.zero,), label="s"), x)
        system.add(x, y)
        system.add(y, system.term(box, (system.one,)))
        solution = solve(
            system, options(form=GraphForm.STANDARD,
                            cycles=CyclePolicy.NONE)
        )
        stats = solution.stats
        assert stats.final_var_var_edges == 1
        # The source propagates to y as well: 2 source edges.
        assert stats.final_source_edges == 2
        assert stats.final_sink_edges == 1

    def test_if_final_edges_split_between_sides(self):
        system = ConstraintSystem()
        x, y, z = system.fresh_vars(3)
        system.add(x, y)  # pred edge (creation order)
        system.add(z, y)  # y stored where rank is higher
        solution = solve(
            system, options(cycles=CyclePolicy.NONE)
        )
        stats = solution.stats
        assert stats.final_var_var_edges == 2


class TestGrow:
    def test_grow_extends_all_stores(self):
        from repro.graph import SolverStats, VariableOrder
        from repro.graph.inductive import InductiveGraph

        graph = InductiveGraph(
            2, VariableOrder(CreationOrder(), 2), SolverStats(),
            emit=lambda op: None,
        )
        graph.grow(5)
        assert graph.num_vars == 5
        assert len(graph.succ_vars) == 5
        assert len(graph.unionfind) == 5
        assert graph.rank(4) == 4

    def test_grow_is_idempotent(self):
        from repro.graph import SolverStats, VariableOrder
        from repro.graph.standard import StandardGraph

        graph = StandardGraph(
            3, VariableOrder(CreationOrder(), 3), SolverStats(),
            emit=lambda op: None,
        )
        graph.grow(3)
        graph.grow(2)
        assert graph.num_vars == 3
