"""Behavioural tests for the inductive-form graph (paper Section 2.4)."""

from repro import Variance
from repro.graph import CreationOrder, ReverseCreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def if_options(**overrides):
    base = dict(form=GraphForm.INDUCTIVE, cycles=CyclePolicy.NONE,
                order=CreationOrder())
    base.update(overrides)
    return SolverOptions(**base)


def make_source(system, label):
    c = system.constructor("c", (Variance.COVARIANT,))
    return system.term(c, (system.zero,), label=label)


class TestEdgeRouting:
    def test_low_to_high_stored_as_predecessor(self, system):
        x, y = system.fresh_vars(2)  # creation order: o(x) < o(y)
        system.add(x, y)
        solution = solve(system, if_options())
        graph = solution.graph
        assert graph.canonical_predecessors(y.index) == {x.index}
        assert graph.canonical_successors(x.index) == set()

    def test_high_to_low_stored_as_successor(self, system):
        x, y = system.fresh_vars(2)
        system.add(y, x)  # o(y) > o(x): successor edge at y
        solution = solve(system, if_options())
        graph = solution.graph
        assert graph.canonical_successors(y.index) == {x.index}
        assert graph.canonical_predecessors(x.index) == set()

    def test_edge_always_at_higher_ranked_endpoint(self, system):
        x, y = system.fresh_vars(2)
        system.add(x, y)
        solution = solve(system, if_options(order=ReverseCreationOrder()))
        graph = solution.graph
        # Reverse order: o(x) > o(y), so x <= y is a successor at x.
        assert graph.canonical_successors(x.index) == {y.index}


class TestClosure:
    def test_transitive_var_var_edges_added(self, system):
        # z <= x (succ at z), z's pred... build: x <= z and z <= y with
        # ranks o(x) < o(y) < o(z): x <= z is pred at z; z <= y is succ
        # at z; closure must add the transitive x <= y.
        x, y, z = system.fresh_vars(3)
        system.add(x, z)
        system.add(z, y)
        solution = solve(system, if_options())
        graph = solution.graph
        assert x.index in graph.canonical_predecessors(y.index)

    def test_least_solution_through_mixed_edges(self, system):
        x, y, z = system.fresh_vars(3)
        src = make_source(system, "s")
        system.add(src, x)
        system.add(x, z)
        system.add(z, y)
        solution = solve(system, if_options())
        for v in (x, y, z):
            assert solution.least_solution(v) == frozenset({src})

    def test_least_solution_not_explicit(self, system):
        # Unlike SF, sources need not be copied to every variable: with
        # o(x) < o(y), x <= y is a pred edge and y's source set stays
        # empty — LS(y) is computed by the final sweep.
        x, y = system.fresh_vars(2)
        src = make_source(system, "s")
        system.add(src, x)
        system.add(x, y)
        solution = solve(system, if_options())
        assert solution.graph.sources[y.index] == set()
        assert solution.least_solution(y) == frozenset({src})

    def test_sinks_propagate_to_predecessors(self, system):
        c = system.constructor("c", (Variance.COVARIANT,))
        x, y, out = system.fresh_vars(3)
        system.add(x, y)                      # pred edge at y
        system.add(y, system.term(c, (out,)))  # sink at y
        system.add(make_source(system, "payload"), x)
        src2 = system.term(c, (system.fresh_var("inner"),), label="s2")
        solution = solve(system, if_options())
        # x must have received the sink: anything flowing into x meets it.
        assert solution.graph.sinks[x.index]

    def test_cycle_without_elimination_still_correct(self, system):
        x, y = system.fresh_vars(2)
        src = make_source(system, "s")
        system.add(x, y)
        system.add(y, x)
        system.add(src, y)
        solution = solve(system, if_options())
        assert solution.least_solution(x) == frozenset({src})
        assert solution.least_solution(y) == frozenset({src})


class TestOnlineCycles:
    def test_two_cycle_always_detected_either_order(self, system):
        # Unlike SF, IF detects a 2-cycle regardless of insertion order.
        for first, second in (((0, 1), (1, 0)), ((1, 0), (0, 1))):
            sys2 = type(system)("fresh")
            a, b = sys2.fresh_vars(2)
            pairs = {0: a, 1: b}
            sys2.add(pairs[first[0]], pairs[first[1]])
            sys2.add(pairs[second[0]], pairs[second[1]])
            solution = solve(sys2, if_options(cycles=CyclePolicy.ONLINE))
            assert solution.same_component(a, b), (first, second)

    def test_witness_preserves_inductive_form(self, system):
        x, y, z = system.fresh_vars(3)
        system.add(x, y)
        system.add(y, z)
        system.add(z, x)
        solution = solve(system, if_options(cycles=CyclePolicy.ONLINE))
        # Whatever was detected, representatives must be the lowest rank
        # of their component.
        for v in (x, y, z):
            rep = solution.representative(v)
            assert solution.graph.rank(rep) <= solution.graph.rank(v.index)

    def test_figure4_closure_exposes_subcycle(self, system):
        # Paper Figure 4: a 3-cycle whose closing edge hides the full
        # cycle still exposes a 2-cycle through the transitive edge
        # added by IF closure, so at least part is always eliminated.
        x1, x2, x3 = system.fresh_vars(3)
        system.add(x2, x3)
        system.add(x3, x1)
        system.add(x1, x2)
        solution = solve(system, if_options(cycles=CyclePolicy.ONLINE))
        assert solution.stats.vars_eliminated >= 1

    def test_eliminated_vars_share_least_solution(self, system):
        x, y, z = system.fresh_vars(3)
        src = make_source(system, "s")
        system.add(x, y)
        system.add(y, z)
        system.add(z, x)
        system.add(src, z)
        solution = solve(system, if_options(cycles=CyclePolicy.ONLINE))
        for v in (x, y, z):
            assert solution.least_solution(v) == frozenset({src})

    def test_search_visit_accounting(self, system):
        x, y = system.fresh_vars(2)
        system.add(x, y)
        system.add(y, x)
        solution = solve(system, if_options(cycles=CyclePolicy.ONLINE))
        assert solution.stats.cycle_searches >= 1
        assert solution.stats.mean_search_visits > 0


class TestLeastSolutionSweep:
    def test_sweep_handles_collapsed_nodes(self, system):
        x, y, z, w = system.fresh_vars(4)
        src = make_source(system, "s")
        system.add(src, x)
        system.add(x, y)
        system.add(y, x)   # cycle collapsed online
        system.add(y, z)
        system.add(z, w)
        solution = solve(system, if_options(cycles=CyclePolicy.ONLINE))
        assert solution.least_solution(w) == frozenset({src})

    def test_multiple_sources_union(self, system):
        x, y, z = system.fresh_vars(3)
        c = system.constructor("c", (Variance.COVARIANT,))
        s1 = system.term(c, (system.zero,), label="s1")
        s2 = system.term(c, (system.zero,), label="s2")
        system.add(s1, x)
        system.add(s2, y)
        system.add(x, z)
        system.add(y, z)
        solution = solve(system, if_options())
        assert solution.least_solution(z) == frozenset({s1, s2})
