"""Tests for the solver trace hook."""

from repro import ConstraintSystem
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def collect(system, **options):
    events = []
    solve(system, SolverOptions(
        trace=lambda event, payload: events.append((event, payload)),
        **options,
    ))
    return events


class TestTrace:
    def test_collapse_event(self):
        system = ConstraintSystem()
        a, b, c = system.fresh_vars(3)
        system.add(a, b)
        system.add(b, a)
        system.add(b, c)
        events = collect(system, cycles=CyclePolicy.ONLINE)
        collapses = [e for e in events if e[0] == "collapse"]
        assert len(collapses) == 1
        payload = collapses[0][1]
        assert payload["witness"] in (a.index, b.index)
        assert set(payload["members"]) == {a.index, b.index}

    def test_sweep_event(self):
        system = ConstraintSystem()
        a, b = system.fresh_vars(2)
        system.add(a, b)
        system.add(b, a)
        events = collect(
            system, cycles=CyclePolicy.PERIODIC, periodic_interval=1
        )
        sweeps = [e for e in events if e[0] == "sweep"]
        assert sweeps
        assert any(e[1]["eliminated"] == 1 for e in sweeps)

    def test_clash_event(self):
        system = ConstraintSystem()
        one = system.constructor("one_c", ())
        two = system.constructor("two_c", ())
        x = system.fresh_var()
        system.add(system.term(one), x)
        system.add(x, system.term(two))
        events = collect(system)
        clashes = [e for e in events if e[0] == "clash"]
        assert len(clashes) == 1
        assert clashes[0][1]["diagnostic"].kind == "constructor-clash"

    def test_no_trace_no_overhead(self):
        system = ConstraintSystem()
        a, b = system.fresh_vars(2)
        system.add(a, b)
        system.add(b, a)
        solution = solve(system, SolverOptions(cycles=CyclePolicy.ONLINE))
        assert solution.stats.vars_eliminated == 1  # just runs

    def test_trace_sees_every_online_collapse(self):
        system = ConstraintSystem()
        variables = system.fresh_vars(6)
        # Two disjoint 3-cycles.
        for base in (0, 3):
            for offset in range(3):
                system.add(
                    variables[base + offset],
                    variables[base + (offset + 1) % 3],
                )
        events = collect(system, form=GraphForm.INDUCTIVE,
                         cycles=CyclePolicy.ONLINE)
        eliminated = sum(
            len(payload["members"]) - 1
            for event, payload in events if event == "collapse"
        )
        solution = solve(system, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE))
        assert eliminated == solution.stats.vars_eliminated
