"""Tests for the Solution object."""

import pytest

from repro import ConstraintSystem, Variance
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def solved_cycle():
    system = ConstraintSystem()
    c = system.constructor("c", (Variance.COVARIANT,))
    src = system.term(c, (system.zero,), label="s")
    x, y, z = system.fresh_vars(3)
    system.add(x, y)
    system.add(y, x)
    system.add(src, x)
    system.add(y, z)
    options = SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE,
        record_var_edges=True,
    )
    return system, (x, y, z), src, solve(system, options)


class TestSolutionQueries:
    def test_least_solution_by_index(self):
        _, (x, _, _), src, solution = solved_cycle()
        assert solution.least_solution_by_index(x.index) == frozenset({src})

    def test_unconstrained_var_is_empty(self):
        system = ConstraintSystem()
        x = system.fresh_var()
        solution = solve(system, SolverOptions())
        assert solution.least_solution(x) == frozenset()

    def test_same_component_after_collapse(self):
        _, (x, y, z), _, solution = solved_cycle()
        assert solution.same_component(x, y)
        assert not solution.same_component(x, z)

    def test_representative_is_stable(self):
        _, (x, y, _), _, solution = solved_cycle()
        assert solution.representative(x) == solution.representative(y)

    def test_repr_mentions_label(self):
        _, _, _, solution = solved_cycle()
        assert "IF-Online" in repr(solution)

    def test_ok_when_no_diagnostics(self):
        _, _, _, solution = solved_cycle()
        assert solution.ok
        solution.raise_on_errors()  # must not raise


class TestSccSummary:
    def test_summary_requires_recording(self):
        system = ConstraintSystem()
        x, y = system.fresh_vars(2)
        system.add(x, y)
        solution = solve(system, SolverOptions())
        with pytest.raises(ValueError):
            solution.final_scc_summary()

    def test_summary_counts_cycle(self):
        system = ConstraintSystem()
        x, y, z = system.fresh_vars(3)
        system.add(x, y)
        system.add(y, x)
        system.add(y, z)
        solution = solve(system, SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.NONE,
            record_var_edges=True,
        ))
        summary = solution.final_scc_summary()
        assert summary.vars_in_cycles == 2
        assert summary.max_scc_size == 2
