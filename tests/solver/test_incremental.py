"""Tests for the incremental solver front-end."""

import pytest

from repro import ConstraintSystem, Variance
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
)
from repro.solver.incremental import IncrementalSolver


def make_solver(**overrides):
    base = dict(form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE)
    base.update(overrides)
    return IncrementalSolver(SolverOptions(**base))


class TestIncremental:
    def test_query_between_additions(self):
        solver = make_solver()
        box = solver.constructor("box", (Variance.COVARIANT,))
        x, y = solver.fresh_var("x"), solver.fresh_var("y")
        payload = solver.term(box, (solver.zero,), label="p")
        solver.add(payload, x)
        assert solver.least_solution(x) == frozenset({payload})
        assert solver.least_solution(y) == frozenset()
        solver.add(x, y)
        assert solver.least_solution(y) == frozenset({payload})

    def test_matches_batch_solving(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)]
        # Batch.
        system = ConstraintSystem()
        box = system.constructor("box", (Variance.COVARIANT,))
        batch_vars = system.fresh_vars(4)
        source = system.term(box, (system.zero,), label="s")
        system.add(source, batch_vars[0])
        for left, right in edges:
            system.add(batch_vars[left], batch_vars[right])
        batch = solve(system, SolverOptions())
        # Incremental, one constraint at a time.
        solver = make_solver()
        solver.constructor("box", (Variance.COVARIANT,))
        inc_vars = [solver.fresh_var() for _ in range(4)]
        inc_source = solver.term("box", (solver.zero,), label="s")
        solver.add(inc_source, inc_vars[0])
        for left, right in edges:
            solver.add(inc_vars[left], inc_vars[right])
        for batch_var, inc_var in zip(batch_vars, inc_vars):
            assert {str(t) for t in batch.least_solution(batch_var)} == {
                str(t) for t in solver.least_solution(inc_var)
            }

    def test_online_collapse_happens_incrementally(self):
        solver = make_solver()
        x, y = solver.fresh_var(), solver.fresh_var()
        solver.add(x, y)
        assert not solver.same_component(x, y)
        solver.add(y, x)
        assert solver.same_component(x, y)
        assert solver.stats.vars_eliminated == 1

    def test_late_variables(self):
        solver = make_solver()
        box = solver.constructor("box", (Variance.COVARIANT,))
        x = solver.fresh_var()
        solver.add(solver.term(box, (solver.zero,), label="p"), x)
        # Create a variable only after solving has begun.
        y = solver.fresh_var()
        solver.add(x, y)
        assert len(solver.least_solution(y)) == 1

    def test_standard_form_supported(self):
        solver = make_solver(form=GraphForm.STANDARD)
        box = solver.constructor("box", (Variance.COVARIANT,))
        x, y = solver.fresh_var(), solver.fresh_var()
        solver.add(solver.term(box, (solver.zero,), label="p"), x)
        solver.add(x, y)
        assert len(solver.least_solution(y)) == 1

    def test_oracle_rejected(self):
        with pytest.raises(ValueError):
            IncrementalSolver(SolverOptions(cycles=CyclePolicy.ORACLE))

    def test_diagnostics_accumulate(self):
        solver = make_solver()
        a = solver.constructor("a", ())
        b = solver.constructor("b", ())
        x = solver.fresh_var()
        solver.add(solver.term(a), x)
        assert not solver.diagnostics
        solver.add(x, solver.term(b))
        assert solver.diagnostics

    def test_add_all(self):
        solver = make_solver()
        x, y, z = (solver.fresh_var() for _ in range(3))
        solver.add_all([(x, y), (y, z)])
        box = solver.constructor("box", (Variance.COVARIANT,))
        solver.add(solver.term(box, (solver.zero,)), x)
        assert len(solver.least_solution(z)) == 1
