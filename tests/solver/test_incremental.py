"""Tests for the incremental solver front-end."""

import pytest

from repro import ConstraintSystem, Variance
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
)
from repro.solver.incremental import IncrementalSolver


def make_solver(**overrides):
    base = dict(form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE)
    base.update(overrides)
    return IncrementalSolver(SolverOptions(**base))


class TestIncremental:
    def test_query_between_additions(self):
        solver = make_solver()
        box = solver.constructor("box", (Variance.COVARIANT,))
        x, y = solver.fresh_var("x"), solver.fresh_var("y")
        payload = solver.term(box, (solver.zero,), label="p")
        solver.add(payload, x)
        assert solver.least_solution(x) == frozenset({payload})
        assert solver.least_solution(y) == frozenset()
        solver.add(x, y)
        assert solver.least_solution(y) == frozenset({payload})

    def test_matches_batch_solving(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)]
        # Batch.
        system = ConstraintSystem()
        box = system.constructor("box", (Variance.COVARIANT,))
        batch_vars = system.fresh_vars(4)
        source = system.term(box, (system.zero,), label="s")
        system.add(source, batch_vars[0])
        for left, right in edges:
            system.add(batch_vars[left], batch_vars[right])
        batch = solve(system, SolverOptions())
        # Incremental, one constraint at a time.
        solver = make_solver()
        solver.constructor("box", (Variance.COVARIANT,))
        inc_vars = [solver.fresh_var() for _ in range(4)]
        inc_source = solver.term("box", (solver.zero,), label="s")
        solver.add(inc_source, inc_vars[0])
        for left, right in edges:
            solver.add(inc_vars[left], inc_vars[right])
        for batch_var, inc_var in zip(batch_vars, inc_vars):
            assert {str(t) for t in batch.least_solution(batch_var)} == {
                str(t) for t in solver.least_solution(inc_var)
            }

    def test_online_collapse_happens_incrementally(self):
        solver = make_solver()
        x, y = solver.fresh_var(), solver.fresh_var()
        solver.add(x, y)
        assert not solver.same_component(x, y)
        solver.add(y, x)
        assert solver.same_component(x, y)
        assert solver.stats.vars_eliminated == 1

    def test_late_variables(self):
        solver = make_solver()
        box = solver.constructor("box", (Variance.COVARIANT,))
        x = solver.fresh_var()
        solver.add(solver.term(box, (solver.zero,), label="p"), x)
        # Create a variable only after solving has begun.
        y = solver.fresh_var()
        solver.add(x, y)
        assert len(solver.least_solution(y)) == 1

    def test_standard_form_supported(self):
        solver = make_solver(form=GraphForm.STANDARD)
        box = solver.constructor("box", (Variance.COVARIANT,))
        x, y = solver.fresh_var(), solver.fresh_var()
        solver.add(solver.term(box, (solver.zero,), label="p"), x)
        solver.add(x, y)
        assert len(solver.least_solution(y)) == 1

    def test_oracle_rejected(self):
        with pytest.raises(ValueError):
            IncrementalSolver(SolverOptions(cycles=CyclePolicy.ORACLE))

    def test_diagnostics_accumulate(self):
        solver = make_solver()
        a = solver.constructor("a", ())
        b = solver.constructor("b", ())
        x = solver.fresh_var()
        solver.add(solver.term(a), x)
        assert not solver.diagnostics
        solver.add(x, solver.term(b))
        assert solver.diagnostics

    def test_add_all(self):
        solver = make_solver()
        x, y, z = (solver.fresh_var() for _ in range(3))
        solver.add_all([(x, y), (y, z)])
        box = solver.constructor("box", (Variance.COVARIANT,))
        solver.add(solver.term(box, (solver.zero,)), x)
        assert len(solver.least_solution(z)) == 1


def _apply_script(script, add, term_for, variables):
    """Replay a construction script against one solver front-end."""
    for op in script:
        if op[0] == "edge":
            add(variables[op[1]], variables[op[2]])
        elif op[0] == "source":
            add(term_for(op[2]), variables[op[1]])
        else:  # sink
            add(variables[op[1]], term_for(op[2]))


def _make_script(seed, var_count=14, steps=60):
    import random

    rng = random.Random(seed)
    script = []
    for step in range(steps):
        roll = rng.random()
        if roll < 0.22:
            script.append(("source", rng.randrange(var_count), step))
        elif roll < 0.30:
            script.append(("sink", rng.randrange(var_count), step))
        else:
            script.append((
                "edge",
                rng.randrange(var_count),
                rng.randrange(var_count),
            ))
    return script, var_count


class TestStandardFormDifferential:
    """Pin SF-Online interleaved queries against the reference solver.

    Regression guard for ``least_solution`` under standard form: the
    solution must be read through ``find`` (accumulating every
    variable's source bucket onto its representative), not off
    ``sources[rep]`` directly, or queries issued between batches can
    miss terms after an online collapse.
    """

    def _run_differential(self, seed, query_stride):
        from repro.solver import solve_reference
        from repro import ConstraintSystem

        script, var_count = _make_script(seed)
        solver = make_solver(form=GraphForm.STANDARD)
        box = solver.constructor("box", (Variance.COVARIANT,))
        inc_vars = [solver.fresh_var(f"v{i}") for i in range(var_count)]

        def inc_term(step):
            return solver.term("box", (solver.zero,), label=f"t{step}")

        for prefix_end in range(1, len(script) + 1):
            op = script[prefix_end - 1]
            _apply_script([op], solver.add, inc_term, inc_vars)
            if prefix_end % query_stride and prefix_end != len(script):
                continue
            # Batch-solve the same prefix with the naive reference.
            batch = ConstraintSystem()
            batch.constructor("box", (Variance.COVARIANT,))
            batch_vars = batch.fresh_vars(var_count)

            def batch_term(step):
                return batch.term("box", (batch.zero,), label=f"t{step}")

            _apply_script(script[:prefix_end], batch.add, batch_term,
                          batch_vars)
            reference = solve_reference(batch)
            for inc_var, batch_var in zip(inc_vars, batch_vars):
                got = {str(t) for t in solver.least_solution(inc_var)}
                want = {
                    str(t) for t in reference.least_solution(batch_var)
                }
                assert got == want, (
                    f"seed={seed} prefix={prefix_end} var={inc_var}"
                )
        return solver

    def test_interleaved_queries_match_reference(self):
        cycles_seen = 0
        for seed in range(4):
            solver = self._run_differential(seed, query_stride=7)
            cycles_seen += solver.stats.cycles_found
        assert cycles_seen > 0, (
            "the differential never exercised an online collapse"
        )

    def test_query_immediately_after_collapse(self):
        """Crafted worst case: query the instant a collapse absorbs a
        variable that owns source terms."""
        solver = make_solver(form=GraphForm.STANDARD)
        box = solver.constructor("box", (Variance.COVARIANT,))
        a, b, c = (solver.fresh_var(n) for n in "abc")
        pa = solver.term(box, (solver.zero,), label="pa")
        pb = solver.term(box, (solver.one,), label="pb")
        # Sources live on the variables the collapse will absorb; the
        # c -> b -> a chain descends in rank, so closing a -> c is the
        # case SF-Online's partial (rank-decreasing) search must catch.
        solver.add(pa, c)
        solver.add(pb, b)
        solver.add(c, b)
        solver.add(b, a)
        before = {str(t) for t in solver.least_solution(a)}
        assert before == {"box[pa](0)", "box[pb](1)"}
        solver.add(a, c)
        assert solver.stats.cycles_found == 1
        assert solver.same_component(a, c)
        # The witness (a) absorbed b and c; their source buckets must
        # still be visible through every original variable.
        for var in (a, b, c):
            assert {str(t) for t in solver.least_solution(var)} \
                == {"box[pa](0)", "box[pb](1)"}, str(var)
