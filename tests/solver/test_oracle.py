"""Tests for the two-phase oracle (paper Section 4)."""

from repro import ConstraintSystem, Variance
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def cyclic_system():
    system = ConstraintSystem()
    c = system.constructor("c", (Variance.COVARIANT,))
    src = system.term(c, (system.zero,), label="s")
    v = system.fresh_vars(6)
    system.add(src, v[0])
    # Two separate cycles and a connecting chain.
    system.add(v[0], v[1])
    system.add(v[1], v[0])
    system.add(v[1], v[2])
    system.add(v[2], v[3])
    system.add(v[3], v[4])
    system.add(v[4], v[3])
    system.add(v[4], v[5])
    return system, v, src


def oracle_options(form):
    return SolverOptions(form=form, cycles=CyclePolicy.ORACLE)


class TestOracle:
    def test_same_answers_as_plain(self):
        system, variables, src = cyclic_system()
        for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
            plain = solve(system, SolverOptions(
                form=form, cycles=CyclePolicy.NONE))
            oracle = solve(system, oracle_options(form))
            for v in variables:
                assert oracle.least_solution(v) == plain.least_solution(v)

    def test_phase1_attached(self):
        system, _, _ = cyclic_system()
        oracle = solve(system, oracle_options(GraphForm.STANDARD))
        assert oracle.oracle_phase1 is not None
        assert oracle.oracle_phase1.var_edges is not None

    def test_witnessed_counts_cycle_members(self):
        system, _, _ = cyclic_system()
        oracle = solve(system, oracle_options(GraphForm.STANDARD))
        # Two 2-cycles: one member of each is forwarded.
        assert oracle.oracle_witnessed == 2

    def test_oracle_graph_is_acyclic(self):
        system, variables, _ = cyclic_system()
        oracle = solve(system, oracle_options(GraphForm.INDUCTIVE))
        # Members of each cycle share a representative from the start.
        assert oracle.same_component(variables[0], variables[1])
        assert oracle.same_component(variables[3], variables[4])
        assert not oracle.same_component(variables[0], variables[3])

    def test_oracle_does_no_more_work_than_plain(self):
        system, _, _ = cyclic_system()
        for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
            plain = solve(system, SolverOptions(
                form=form, cycles=CyclePolicy.NONE))
            oracle = solve(system, oracle_options(form))
            assert oracle.stats.work <= plain.stats.work

    def test_label_preserved(self):
        system, _, _ = cyclic_system()
        oracle = solve(system, oracle_options(GraphForm.INDUCTIVE))
        assert oracle.options.label == "IF-Oracle"

    def test_oracle_on_acyclic_system_is_plain(self):
        system = ConstraintSystem()
        x, y = system.fresh_vars(2)
        system.add(x, y)
        oracle = solve(system, oracle_options(GraphForm.STANDARD))
        plain = solve(system, SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.NONE))
        assert oracle.oracle_witnessed == 0
        assert oracle.stats.work == plain.stats.work
