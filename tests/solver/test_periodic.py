"""Tests for the periodic (offline) cycle-elimination baseline."""

import pytest

from repro import ConstraintSystem, Variance
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
    solve_reference,
)


def cyclic_system(cycles=3, cycle_length=4):
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    variables = system.fresh_vars(cycles * cycle_length)
    for c in range(cycles):
        base = c * cycle_length
        for offset in range(cycle_length):
            system.add(
                variables[base + offset],
                variables[base + (offset + 1) % cycle_length],
            )
        if c:
            system.add(variables[base - 1], variables[base])
    system.add(system.term(box, (system.zero,), label="s"), variables[0])
    return system, variables


class TestPeriodicPolicy:
    @pytest.mark.parametrize("interval", [1, 3, 10, 1000])
    @pytest.mark.parametrize(
        "form", [GraphForm.STANDARD, GraphForm.INDUCTIVE]
    )
    def test_matches_reference(self, form, interval):
        system, variables = cyclic_system()
        reference = solve_reference(system)
        solution = solve(system, SolverOptions(
            form=form, cycles=CyclePolicy.PERIODIC,
            periodic_interval=interval,
        ))
        for var in variables:
            assert solution.least_solution(var) == \
                reference.least_solution(var)

    def test_sweeps_counted(self):
        system, _ = cyclic_system()
        solution = solve(system, SolverOptions(
            cycles=CyclePolicy.PERIODIC, periodic_interval=2))
        assert solution.stats.periodic_sweeps >= 1

    def test_frequent_sweeps_eliminate_everything(self):
        system, variables = cyclic_system(cycles=2, cycle_length=5)
        solution = solve(system, SolverOptions(
            cycles=CyclePolicy.PERIODIC, periodic_interval=1))
        # 2 cycles of 5: 8 variables forwarded.
        assert solution.stats.vars_eliminated == 8

    def test_infrequent_sweeps_may_miss(self):
        system, _ = cyclic_system()
        solution = solve(system, SolverOptions(
            cycles=CyclePolicy.PERIODIC, periodic_interval=10**6))
        assert solution.stats.periodic_sweeps == 0
        assert solution.stats.vars_eliminated == 0

    def test_label(self):
        options = SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.PERIODIC,
            periodic_interval=500,
        )
        assert options.label == "SF-Periodic(500)"

    def test_frequency_cost_tradeoff(self):
        # The paper's motivation: the frequency knob trades sweep cost
        # (Tarjan passes, re-enqueued edges) against graph compactness.
        # Frequent sweeps shrink the final graph but pay in sweeps;
        # rare sweeps leave the cycles un-collapsed.
        system, _ = cyclic_system(cycles=6, cycle_length=6)
        frequent = solve(system, SolverOptions(
            cycles=CyclePolicy.PERIODIC, periodic_interval=1))
        rare = solve(system, SolverOptions(
            cycles=CyclePolicy.PERIODIC, periodic_interval=10**6))
        assert frequent.stats.periodic_sweeps > rare.stats.periodic_sweeps
        assert frequent.stats.vars_eliminated > rare.stats.vars_eliminated
        assert frequent.stats.final_edges < rare.stats.final_edges


class TestCollapseAllSccs:
    def test_direct_call(self):
        from repro.graph import (
            CreationOrder, SolverStats, VariableOrder,
        )
        from repro.graph.standard import StandardGraph
        from collections import deque

        pending = deque()
        graph = StandardGraph(
            4, VariableOrder(CreationOrder(), 4), SolverStats(),
            emit=pending.append,
        )
        graph.add_var_var(0, 1)
        graph.add_var_var(1, 0)
        graph.add_var_var(2, 3)
        eliminated = graph.collapse_all_sccs()
        assert eliminated == 1
        assert graph.find(1) == 0
        assert graph.find(2) == 2
