"""Tests for the solver engine across all six configurations."""

import pytest

from repro import ConstraintSystem, Variance
from repro.constraints import InconsistentConstraintError
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverEngine,
    SolverOptions,
    solve,
)


def chain_system(length=5):
    system = ConstraintSystem()
    c = system.constructor("c", (Variance.COVARIANT,))
    src = system.term(c, (system.zero,), label="s")
    variables = system.fresh_vars(length)
    system.add(src, variables[0])
    for left, right in zip(variables, variables[1:]):
        system.add(left, right)
    return system, variables, src


class TestAllConfigurations:
    def test_chain_least_solution(self, solver_options):
        system, variables, src = chain_system()
        solution = solve(system, solver_options)
        for v in variables:
            assert solution.least_solution(v) == frozenset({src})

    def test_cycle_least_solution(self, solver_options):
        system, variables, src = chain_system()
        system.add(variables[-1], variables[0])  # close the cycle
        solution = solve(system, solver_options)
        for v in variables:
            assert solution.least_solution(v) == frozenset({src})

    def test_work_counted(self, solver_options):
        system, _, _ = chain_system()
        solution = solve(system, solver_options)
        assert solution.stats.work >= len(system)

    def test_empty_system(self, solver_options):
        system = ConstraintSystem()
        solution = solve(system, solver_options)
        assert solution.stats.work == 0
        assert solution.stats.final_edges == 0

    def test_label(self, solver_options):
        assert solver_options.label.startswith(
            ("SF-", "IF-")
        )


class TestDiagnostics:
    def build_clashing(self):
        system = ConstraintSystem()
        a = system.constructor("a", ())
        b = system.constructor("b", ())
        x = system.fresh_var()
        system.add(system.term(a), x)
        system.add(x, system.term(b))
        return system

    def test_clash_recorded_not_raised(self):
        solution = solve(self.build_clashing(), SolverOptions())
        assert not solution.ok
        assert solution.stats.clashes == 1
        assert solution.diagnostics[0].kind == "constructor-clash"

    def test_strict_mode_raises(self):
        with pytest.raises(InconsistentConstraintError):
            solve(self.build_clashing(), SolverOptions(strict=True))

    def test_raise_on_errors(self):
        solution = solve(self.build_clashing(), SolverOptions())
        with pytest.raises(InconsistentConstraintError):
            solution.raise_on_errors()


class TestEngineGuards:
    def test_oracle_requires_driver(self):
        system, _, _ = chain_system()
        with pytest.raises(ValueError):
            SolverEngine(
                system,
                SolverOptions(cycles=CyclePolicy.ORACLE),
            )

    def test_record_var_edges(self):
        system, variables, _ = chain_system(4)
        solution = solve(system, SolverOptions(
            form=GraphForm.STANDARD,
            cycles=CyclePolicy.NONE,
            record_var_edges=True,
        ))
        recorded = solution.var_edges
        expected = {
            (left.index, right.index)
            for left, right in zip(variables, variables[1:])
        }
        assert expected <= recorded

    def test_edges_not_recorded_by_default(self):
        system, _, _ = chain_system()
        solution = solve(system, SolverOptions())
        assert solution.var_edges is None


class TestDeterminism:
    def test_same_seed_same_work(self):
        system, _, _ = chain_system(10)
        a = solve(system, SolverOptions(seed=3))
        b = solve(system, SolverOptions(seed=3))
        assert a.stats.work == b.stats.work

    def test_system_reusable_across_runs(self):
        # Solving must not mutate the input system.
        system, variables, src = chain_system()
        before = len(system)
        solve(system, SolverOptions())
        assert len(system) == before
        solution = solve(system, SolverOptions(form=GraphForm.STANDARD))
        assert solution.least_solution(variables[-1]) == frozenset({src})
