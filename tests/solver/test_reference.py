"""Tests for the naive reference solver."""

from repro import ConstraintSystem, Variance
from repro.solver import SolverOptions, solve, solve_reference


class TestReference:
    def test_simple_chain(self):
        system = ConstraintSystem()
        c = system.constructor("c", ())
        src = system.term(c, (), label="s")
        x, y = system.fresh_vars(2)
        system.add(src, x)
        system.add(x, y)
        result = solve_reference(system)
        assert result.least_solution(y) == frozenset({src})

    def test_cycle(self):
        system = ConstraintSystem()
        c = system.constructor("c", ())
        src = system.term(c, ())
        x, y = system.fresh_vars(2)
        system.add(x, y)
        system.add(y, x)
        system.add(src, y)
        result = solve_reference(system)
        assert result.least_solution(x) == frozenset({src})

    def test_structural_resolution(self):
        system = ConstraintSystem()
        pair = system.constructor(
            "pair", (Variance.COVARIANT, Variance.CONTRAVARIANT)
        )
        atom = system.constructor("atom", ())
        a, b, x, cov_out, con_in = system.fresh_vars(5)
        src_atom = system.term(atom, (), label="payload")
        system.add(src_atom, a)
        system.add(system.term(pair, (a, b)), x)
        system.add(x, system.term(pair, (cov_out, con_in)))
        system.add(src_atom, con_in)
        result = solve_reference(system)
        # Covariant: a <= cov_out carries the payload.
        assert result.least_solution(cov_out) == frozenset({src_atom})
        # Contravariant: con_in <= b.
        assert result.least_solution(b) == frozenset({src_atom})

    def test_diagnostics_collected(self):
        system = ConstraintSystem()
        a = system.constructor("a", ())
        b = system.constructor("b", ())
        x = system.fresh_var()
        system.add(system.term(a), x)
        system.add(x, system.term(b))
        result = solve_reference(system)
        assert result.diagnostics

    def test_agrees_with_engine_on_dense_system(self):
        system = ConstraintSystem()
        c = system.constructor("c", (Variance.COVARIANT,))
        variables = system.fresh_vars(8)
        sources = [
            system.term(c, (system.zero,), label=f"s{i}") for i in range(3)
        ]
        edges = [
            (0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3),
            (5, 6), (6, 7),
        ]
        for left, right in edges:
            system.add(variables[left], variables[right])
        system.add(sources[0], variables[0])
        system.add(sources[1], variables[3])
        system.add(sources[2], variables[6])
        reference = solve_reference(system)
        engine = solve(system, SolverOptions())
        for v in variables:
            assert engine.least_solution(v) == reference.least_solution(v)
