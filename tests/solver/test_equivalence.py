"""All six configurations must compute identical least solutions.

This is the central correctness cross-check of the reproduction: the
representations and cycle policies trade *work*, never *answers*.
"""

import pytest

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder, RandomOrder, ReverseCreationOrder
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
    solve_reference,
)
from tests.conftest import ALL_CONFIGS


def _all_solutions(system):
    for form, policy in ALL_CONFIGS:
        yield (
            f"{form.value}-{policy.value}",
            solve(system, SolverOptions(form=form, cycles=policy)),
        )


def assert_all_agree(system):
    reference = solve_reference(system)
    for label, solution in _all_solutions(system):
        for var in system.variables:
            assert solution.least_solution(var) == \
                reference.least_solution(var), (label, var)


def build(edges, sources, n):
    system = ConstraintSystem()
    c = system.constructor("c", (Variance.COVARIANT,))
    variables = system.fresh_vars(n)
    for left, right in edges:
        system.add(variables[left], variables[right])
    for label, target in sources:
        system.add(
            system.term(c, (system.zero,), label=label), variables[target]
        )
    return system


class TestEquivalence:
    def test_chain(self):
        assert_all_agree(build([(0, 1), (1, 2), (2, 3)], [("s", 0)], 4))

    def test_simple_cycle(self):
        assert_all_agree(
            build([(0, 1), (1, 2), (2, 0)], [("s", 1)], 3)
        )

    def test_two_cycles_bridge(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        assert_all_agree(build(edges, [("a", 0), ("b", 3)], 4))

    def test_nested_cycles(self):
        edges = [(0, 1), (1, 2), (2, 1), (2, 3), (3, 0)]
        assert_all_agree(build(edges, [("s", 2)], 4))

    def test_dense_mesh(self):
        edges = [(i, j) for i in range(5) for j in range(5) if i != j]
        assert_all_agree(build(edges, [("s0", 0), ("s1", 4)], 5))

    def test_self_loops(self):
        assert_all_agree(build([(0, 0), (0, 1), (1, 1)], [("s", 0)], 2))

    def test_contravariant_flow(self):
        system = ConstraintSystem()
        ref = system.constructor(
            "ref",
            (Variance.COVARIANT, Variance.COVARIANT,
             Variance.CONTRAVARIANT),
        )
        atom = system.constructor("atom", ())
        payload = system.term(atom, (), label="p")
        x_contents, pointer, incoming = (
            system.fresh_var("contents"),
            system.fresh_var("pointer"),
            system.fresh_var("incoming"),
        )
        source = system.term(
            ref, (system.zero, x_contents, x_contents), label="cell"
        )
        system.add(source, pointer)
        system.add(payload, incoming)
        # Store through the pointer: contravariant position.
        system.add(
            pointer, system.term(ref, (system.one, system.one, incoming))
        )
        assert_all_agree(system)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_orders_agree(self, seed):
        system = build(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
            [("s", 0)], 5,
        )
        reference = solve_reference(system)
        for form, policy in ALL_CONFIGS:
            solution = solve(system, SolverOptions(
                form=form, cycles=policy, seed=seed))
            for var in system.variables:
                assert solution.least_solution(var) == \
                    reference.least_solution(var)

    @pytest.mark.parametrize(
        "order", [CreationOrder(), ReverseCreationOrder(), RandomOrder(9)]
    )
    def test_explicit_orders_agree(self, order):
        system = build(
            [(0, 1), (1, 0), (1, 2), (3, 1), (2, 3)], [("s", 0)], 4
        )
        reference = solve_reference(system)
        for form, policy in ALL_CONFIGS:
            solution = solve(system, SolverOptions(
                form=form, cycles=policy, order=order))
            for var in system.variables:
                assert solution.least_solution(var) == \
                    reference.least_solution(var)
