"""Tests for solver options."""

from repro.graph import CreationOrder, RandomOrder, SearchMode
from repro.solver import CyclePolicy, GraphForm, SolverOptions


class TestSolverOptions:
    def test_defaults(self):
        options = SolverOptions()
        assert options.form is GraphForm.INDUCTIVE
        assert options.cycles is CyclePolicy.ONLINE
        assert options.search_mode is SearchMode.DECREASING

    def test_labels(self):
        assert SolverOptions().label == "IF-Online"
        assert SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.NONE
        ).label == "SF-Plain"
        assert SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.ORACLE
        ).label == "SF-Oracle"

    def test_default_order_uses_seed(self):
        options = SolverOptions(seed=7)
        spec = options.order_spec()
        assert isinstance(spec, RandomOrder)
        assert spec.seed == 7

    def test_explicit_order_wins(self):
        order = CreationOrder()
        options = SolverOptions(order=order, seed=99)
        assert options.order_spec() is order

    def test_replace(self):
        options = SolverOptions()
        changed = options.replace(cycles=CyclePolicy.NONE)
        assert changed.cycles is CyclePolicy.NONE
        assert options.cycles is CyclePolicy.ONLINE  # original untouched
        assert changed.form is options.form
