"""Tests for the source-dump utility."""

import os

from repro.cfront import parse
from repro.workloads import save_sources


class TestSaveSources:
    def test_writes_parseable_files(self, tmp_path):
        paths = save_sources(str(tmp_path), "quick")
        assert len(paths) == 6
        for path in paths:
            assert os.path.exists(path)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            assert parse(source).count_nodes() > 50

    def test_creates_directory(self, tmp_path):
        target = os.path.join(str(tmp_path), "nested", "dir")
        paths = save_sources(target, "quick")
        assert all(path.startswith(target) for path in paths)

    def test_names_match_suite(self, tmp_path):
        paths = save_sources(str(tmp_path), "quick")
        names = {os.path.basename(p) for p in paths}
        assert "allroots.c" in names
