"""Tests for the synthetic C program generator."""

import pytest

from repro.cfront import parse
from repro.workloads import GeneratorConfig, generate_program


def config(**overrides):
    base = dict(name="test", seed=1, functions=8)
    base.update(overrides)
    return GeneratorConfig(**base)


class TestDeterminism:
    def test_same_seed_same_source(self):
        assert generate_program(config()) == generate_program(config())

    def test_different_seed_different_source(self):
        a = generate_program(config(seed=1))
        b = generate_program(config(seed=2))
        assert a != b

    def test_name_does_not_affect_source(self):
        a = generate_program(config(name="a"))
        b = generate_program(config(name="b"))
        assert a == b


class TestWellFormedness:
    @pytest.mark.parametrize("seed", range(6))
    def test_parses(self, seed):
        source = generate_program(config(seed=seed, functions=12))
        unit = parse(source)
        assert unit.count_nodes() > 100

    def test_has_main(self):
        source = generate_program(config())
        unit = parse(source)
        names = [fn.name for fn in unit.functions()]
        assert "main" in names

    def test_function_count(self):
        source = generate_program(config(functions=15))
        unit = parse(source)
        # 15 generated functions plus main.
        assert len(unit.functions()) == 16

    def test_size_scales_with_functions(self):
        small = parse(generate_program(config(functions=5))).count_nodes()
        large = parse(generate_program(config(functions=40))).count_nodes()
        assert large > 3 * small


class TestKnobs:
    def test_structs_knob(self):
        source = generate_program(config(structs=4))
        assert "struct node3 {" in source

    def test_shared_pool_emitted(self):
        source = generate_program(config())
        assert "sh_p0" in source

    def test_no_shared_coupling_when_disabled(self):
        source = generate_program(config(shared_rw=0.0, functions=30))
        # Shared pool exists but is never written from cluster locals.
        for line in source.splitlines():
            stripped = line.strip()
            assert not (
                stripped.startswith("sh_p") and "= t0;" in stripped
            ), stripped

    def test_clusters_partition_globals(self):
        source = generate_program(config(functions=20, cluster_size=5))
        assert "c0_p0" in source and "c3_p0" in source

    def test_heap_calls_present(self):
        source = generate_program(config(functions=30, seed=3))
        assert "malloc" in source

    def test_function_pointers_present(self):
        source = generate_program(config(functions=30, seed=3))
        assert "int *(*" in source


class TestAnalyzability:
    def test_andersen_runs_clean(self):
        from repro.andersen import analyze_source, solve_points_to

        source = generate_program(config(functions=10, seed=4))
        program = analyze_source(source)
        result = solve_points_to(program)
        assert result.solution.ok
        assert program.system.num_vars > 50

    def test_sparse_initial_graph(self):
        # The Section 5 model assumes edge density around 1/n; the
        # generator must stay in that regime (allow some slack).
        from repro.experiments import initial_graph_statistics
        from repro.workloads.suite import Benchmark

        cfg = config(functions=24, seed=9)
        bench = Benchmark(cfg, generate_program(cfg))
        nodes, edges, _ = initial_graph_statistics(bench)
        assert edges < 3.0 * nodes
