"""Tests for the benchmark suite."""

import pytest

from repro.workloads import (
    ALL_PROGRAMS,
    FULL_SUITE,
    MEDIUM_SUITE,
    QUICK_SUITE,
    benchmark,
    suite,
    suite_names,
)


class TestSuiteStructure:
    def test_quick_subset_of_medium_subset_of_full(self):
        quick = {c.name for c in QUICK_SUITE}
        medium = {c.name for c in MEDIUM_SUITE}
        full = {c.name for c in FULL_SUITE}
        assert quick <= medium <= full

    def test_sizes_monotone_in_full_suite(self):
        sizes = [c.functions for c in FULL_SUITE]
        assert sizes == sorted(sizes)

    def test_names_unique(self):
        names = [c.name for c in FULL_SUITE]
        assert len(names) == len(set(names))

    def test_spans_orders_of_magnitude(self):
        assert FULL_SUITE[-1].functions >= 50 * FULL_SUITE[0].functions

    def test_suite_names(self):
        assert suite_names("quick") == [c.name for c in QUICK_SUITE]

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            suite("nonexistent")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark("nonexistent")


class TestBenchmarkObjects:
    def test_lookup_cached(self):
        assert benchmark("allroots") is benchmark("allroots")

    def test_source_parses_lazily(self):
        bench = benchmark("allroots")
        assert bench.ast_nodes > 0
        assert bench.lines_of_code > 10

    def test_program_cached(self):
        bench = benchmark("allroots")
        assert bench.program is bench.program

    def test_program_has_variables(self):
        bench = benchmark("anagram")
        assert bench.program.system.num_vars > 50

    def test_quick_suite_materializes(self):
        benches = suite("quick")
        assert [b.name for b in benches] == suite_names("quick")


class TestHandPrograms:
    def test_all_parse(self):
        from repro.cfront import parse

        for name, source in ALL_PROGRAMS.items():
            unit = parse(source)
            assert unit.count_nodes() > 5, name

    def test_expected_names(self):
        assert {"figure5", "swap_cycle", "linked_list"} <= set(ALL_PROGRAMS)
