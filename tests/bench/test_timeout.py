"""Wall-clock timeout for the benchmark harness (``--timeout``)."""

import pytest

from repro.bench.harness import BenchTimeoutError, run_bench
from repro.bench.__main__ import main
from repro.errors import ReproError


class TestTimeoutSemantics:
    def test_tiny_timeout_raises(self):
        with pytest.raises(BenchTimeoutError) as excinfo:
            run_bench(
                suite_name="quick",
                experiments=["SF-Plain"],
                repeats=1,
                benchmarks=["allroots"],
                timeout_seconds=1e-9,
            )
        # Nothing (or almost nothing) completed before the deadline.
        assert excinfo.value.completed == 0

    def test_error_is_a_repro_error(self):
        assert issubclass(BenchTimeoutError, ReproError)

    def test_generous_timeout_counters_unchanged(self):
        """The deadline budget observes; it must not steer the solve."""
        kwargs = dict(
            suite_name="quick",
            experiments=["SF-Plain", "IF-Online"],
            repeats=1,
            benchmarks=["allroots"],
        )
        plain = run_bench(**kwargs)
        timed = run_bench(timeout_seconds=600.0, **kwargs)
        assert [r.counters for r in timed.records] == [
            r.counters for r in plain.records
        ]


class TestCli:
    def test_timeout_exit_code(self, capsys):
        code = main([
            "--suite", "quick",
            "--experiments", "SF-Plain",
            "--repeats", "1",
            "--no-output",
            "--no-pin-hashseed",
            "--timeout", "0.000001",
        ])
        assert code == 3
        assert "timeout" in capsys.readouterr().err.lower()
