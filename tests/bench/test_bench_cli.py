"""Exit-code contract of ``python -m repro.bench``.

The tests call ``main`` in-process with ``--no-pin-hashseed`` (the
re-exec would escape pytest) and a one-experiment slice of the quick
suite to stay fast.
"""

import json

from repro.bench.__main__ import main

FAST = ["--no-pin-hashseed", "--experiments", "SF-Plain", "--repeats", "1"]


def run_cli(*extra):
    return main([*FAST, *extra])


class TestCli:
    def test_smoke_writes_numbered_report(self, tmp_path, capsys):
        assert run_cli("--smoke", "--out", str(tmp_path)) == 0
        report_path = tmp_path / "BENCH_1.json"
        assert report_path.exists()
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["schema_version"] == 2
        assert payload["git_sha"]
        assert payload["timestamp"]
        assert payload["records"], "report must contain records"
        for record in payload["records"]:
            assert record["counters"]["work"] > 0
            assert record["wall_times"]
        out = capsys.readouterr().out
        assert "total median wall time" in out

    def test_matching_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "BASELINE.json"
        assert run_cli("--no-output", "--write-baseline", str(baseline)) == 0
        assert run_cli("--no-output", "--baseline", str(baseline),
                       "--ignore-time") == 0

    def test_doctored_baseline_exits_one(self, tmp_path, capsys):
        baseline = tmp_path / "BASELINE.json"
        assert run_cli("--no-output", "--write-baseline", str(baseline)) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["records"][0]["counters"]["work"] -= 1
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert run_cli("--no-output", "--baseline", str(baseline),
                       "--ignore-time") == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        absent = tmp_path / "nope.json"
        assert run_cli("--no-output", "--baseline", str(absent)) == 2
        assert "baseline compare failed" in capsys.readouterr().err

    def test_incomparable_baseline_exits_two(self, tmp_path):
        baseline = tmp_path / "BASELINE.json"
        assert run_cli("--no-output", "--write-baseline", str(baseline)) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["seed"] = 12345
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        assert run_cli("--no-output", "--baseline", str(baseline)) == 2

    def test_metrics_flag_writes_snapshot_and_exposition(
            self, tmp_path, capsys):
        metrics_dir = tmp_path / "metrics-out"
        assert run_cli("--no-output", "--metrics", str(metrics_dir)) == 0
        assert "wrote metrics artifacts" in capsys.readouterr().out

        from repro.metrics import MetricsRegistry, validate_exposition

        snapshot = json.loads(
            (metrics_dir / "metrics.json").read_text(encoding="utf-8")
        )
        assert snapshot["meta"]["suite"] == "quick"
        assert snapshot["meta"]["git_sha"]
        registry = MetricsRegistry()
        registry.load_snapshot(snapshot)
        assert registry.collect()
        exposition = (metrics_dir / "metrics.prom").read_text(
            encoding="utf-8"
        )
        assert validate_exposition(exposition) == []
        assert "repro_solver_edges_total" in exposition

    def test_unknown_experiment_label_exits_two(self, capsys):
        assert main(["--no-pin-hashseed", "--no-output",
                     "--experiments", "NOT-A-LABEL"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
