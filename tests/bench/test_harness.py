"""Tests for the benchmark-regression harness (repro.bench)."""

import json

import pytest

from repro.bench.baseline import (
    BaselineError,
    load_report,
    next_bench_path,
    write_next_report,
    write_report,
)
from repro.bench.compare import IncomparableReportsError, compare_reports
from repro.bench.harness import BenchReport, run_bench

# A two-benchmark, two-experiment slice of the quick suite: enough to
# exercise every code path while staying fast.
BENCHMARKS = ["allroots", "ks"]
EXPERIMENTS = ["SF-Plain", "IF-Online"]


@pytest.fixture(scope="module")
def report():
    return run_bench(
        suite_name="quick",
        experiments=EXPERIMENTS,
        seed=0,
        repeats=2,
        benchmarks=BENCHMARKS,
    )


class TestRunBench:
    def test_shape(self, report):
        assert report.suite == "quick"
        assert report.experiments == EXPERIMENTS
        assert len(report.records) == len(BENCHMARKS) * len(EXPERIMENTS)
        for record in report.records:
            assert record.benchmark in BENCHMARKS
            assert record.experiment in EXPERIMENTS
            assert record.counters["work"] > 0
            assert len(record.wall_times) == 2
            assert all(t > 0 for t in record.wall_times)

    def test_work_counts_deterministic_across_runs(self, report):
        again = run_bench(
            suite_name="quick",
            experiments=EXPERIMENTS,
            seed=0,
            repeats=2,
            benchmarks=BENCHMARKS,
        )
        first = {k: r.counters for k, r in report.key().items()}
        second = {k: r.counters for k, r in again.key().items()}
        assert first == second

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_bench(suite_name="quick", benchmarks=["no-such-benchmark"])

    def test_median_of_odd_and_even(self, report):
        record = report.records[0]
        lo, hi = sorted(record.wall_times)
        assert record.median_seconds == pytest.approx((lo + hi) / 2)
        assert record.best_seconds == lo


class TestBaselineRoundTrip:
    def test_write_load_compare_clean(self, report, tmp_path):
        path = tmp_path / "BASELINE.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded.to_dict() == report.to_dict()
        comparison = compare_reports(loaded, report)
        assert comparison.ok
        assert not comparison.regressions
        assert not comparison.missing

    def test_next_bench_path_skips_taken(self, report, tmp_path):
        first = write_next_report(report, str(tmp_path))
        second = write_next_report(report, str(tmp_path))
        assert first.endswith("BENCH_1.json")
        assert second.endswith("BENCH_2.json")
        assert next_bench_path(str(tmp_path))[1] == 3

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(BaselineError):
            load_report(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_report(str(bad))

    def test_load_rejects_wrong_schema_version(self, report, tmp_path):
        path = tmp_path / "old.json"
        payload = report.to_dict()
        payload["schema_version"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(BaselineError):
            load_report(str(path))


class TestSchemaV2:
    def test_fresh_report_carries_provenance(self, report):
        assert report.schema_version == 2
        assert report.git_sha
        assert report.timestamp
        payload = report.to_dict()
        assert payload["git_sha"] == report.git_sha
        assert payload["timestamp"] == report.timestamp

    def test_timestamp_is_utc_iso8601(self, report):
        import datetime

        parsed = datetime.datetime.strptime(
            report.timestamp, "%Y-%m-%dT%H:%M:%SZ"
        )
        assert parsed.year >= 2024

    def test_v1_report_still_loads(self, report, tmp_path):
        """Backward compatibility: v1 baselines predate the stamps."""
        payload = report.to_dict()
        payload["schema_version"] = 1
        del payload["git_sha"]
        del payload["timestamp"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        loaded = load_report(str(path))
        assert loaded.schema_version == 1
        assert loaded.git_sha == "unknown"
        assert loaded.timestamp == ""

    def test_v1_baseline_comparable_to_v2_report(self, report, tmp_path):
        payload = report.to_dict()
        payload["schema_version"] = 1
        del payload["git_sha"]
        del payload["timestamp"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        comparison = compare_reports(load_report(str(path)), report)
        assert comparison.ok

    def test_committed_baseline_loads(self):
        import os

        repo = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))
        baseline = load_report(
            os.path.join(repo, "benchmarks", "BASELINE.json")
        )
        assert baseline.records

    def test_detect_git_sha_fallback(self, monkeypatch):
        from repro.bench.harness import detect_git_sha

        monkeypatch.setenv("GITHUB_SHA", "deadbeef123")
        assert detect_git_sha() == "deadbeef123"


class TestCompare:
    def test_injected_work_regression_fails(self, report):
        baseline = BenchReport.from_dict(report.to_dict())
        record = baseline.records[0]
        record.counters = dict(record.counters,
                               work=record.counters["work"] - 1)
        comparison = compare_reports(baseline, report)
        assert not comparison.ok
        assert any(f.metric == "work" for f in comparison.regressions)

    def test_work_improvement_is_not_a_regression(self, report):
        baseline = BenchReport.from_dict(report.to_dict())
        record = baseline.records[0]
        record.counters = dict(record.counters,
                               work=record.counters["work"] + 5)
        comparison = compare_reports(baseline, report)
        assert comparison.ok
        assert any(f.metric == "work" for f in comparison.improvements)

    def test_missing_pair_fails(self, report):
        current = BenchReport.from_dict(report.to_dict())
        del current.records[0]
        comparison = compare_reports(report, current)
        assert not comparison.ok
        assert comparison.missing

    def test_time_gate_tolerance(self, report):
        baseline = BenchReport.from_dict(report.to_dict())
        baseline.records[0].wall_times = [
            t / 2 for t in baseline.records[0].wall_times
        ]
        gated = compare_reports(baseline, report, time_tolerance=0.25)
        assert not gated.ok
        ignored = compare_reports(baseline, report, check_time=False)
        assert ignored.ok

    def test_refuses_different_workloads(self, report):
        other = BenchReport.from_dict(report.to_dict())
        other.suite = "full"
        with pytest.raises(IncomparableReportsError):
            compare_reports(other, report)
        other = BenchReport.from_dict(report.to_dict())
        other.seed = 7
        with pytest.raises(IncomparableReportsError):
            compare_reports(other, report)
        other = BenchReport.from_dict(report.to_dict())
        other.hash_seed = "1" if report.hash_seed != "1" else "2"
        with pytest.raises(IncomparableReportsError):
            compare_reports(other, report)
