"""Tests for the Section 5 closed-form model."""

import math

import pytest

from repro.model import (
    approx_work_if,
    approx_work_sf,
    compare_work,
    expected_additions_if_var_var,
    expected_additions_sf_source_var,
    expected_reachable_exact,
    expected_work_if,
    expected_work_sf,
    knuth_q_approximation,
    lemma_5_3_probability,
    theorem_5_1_ratio,
    theorem_5_2_bound,
)


class TestLemma53:
    def test_var_var(self):
        assert lemma_5_3_probability(3, "vv") == pytest.approx(2 / 6)
        assert lemma_5_3_probability(4, "vv") == pytest.approx(2 / 12)

    def test_var_constructed(self):
        assert lemma_5_3_probability(3, "vc") == pytest.approx(1 / 2)

    def test_constructed_constructed(self):
        assert lemma_5_3_probability(10, "cc") == 1.0

    def test_probabilities_in_unit_interval(self):
        for l in range(3, 30):
            for kind in ("vv", "vc", "cc"):
                assert 0.0 < lemma_5_3_probability(l, kind) <= 1.0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            lemma_5_3_probability(3, "xx")

    def test_vv_below_vc_below_cc(self):
        for l in range(3, 10):
            assert (
                lemma_5_3_probability(l, "vv")
                < lemma_5_3_probability(l, "vc")
                < lemma_5_3_probability(l, "cc") + 1e-12
            )


class TestExactSums:
    def test_hand_computed_tiny_case(self):
        # n=2, p=0.5: only i=1 contributes: C(1,1)*1!*p^2 = 0.25.
        assert expected_additions_sf_source_var(2, 0.5) == pytest.approx(
            0.25
        )

    def test_sf_additions_scale_with_p(self):
        low = expected_additions_sf_source_var(20, 0.01)
        high = expected_additions_sf_source_var(20, 0.2)
        assert high > low

    def test_if_var_var_smaller_than_sf_pathcount(self):
        # The IF probability weight can only shrink the sum.
        n, p = 30, 1 / 30
        assert (
            expected_additions_if_var_var(n, p)
            < expected_additions_sf_source_var(n, p) + 1e-12
        )

    def test_totals_positive(self):
        assert expected_work_sf(50, 33, 1 / 50) > 0
        assert expected_work_if(50, 33, 1 / 50) > 0

    def test_no_overflow_at_large_n(self):
        value = expected_work_sf(10**6, 2 * 10**6 // 3, 1e-6)
        assert math.isfinite(value)

    def test_sf_exceeds_if_at_scale(self):
        n = 10_000
        m = 2 * n // 3
        assert expected_work_sf(n, m, 1 / n) > expected_work_if(n, m, 1 / n)


class TestTheorem51:
    def test_ratio_increases_with_n(self):
        ratios = [theorem_5_1_ratio(n) for n in (100, 1000, 10000, 100000)]
        assert ratios == sorted(ratios)

    def test_ratio_approaches_2_5(self):
        assert theorem_5_1_ratio(10**6) == pytest.approx(2.5, abs=0.1)

    def test_compare_work_defaults(self):
        comparison = compare_work(300)
        assert comparison.m == 200
        assert comparison.p == pytest.approx(1 / 300)
        assert comparison.ratio > 1.0


class TestApproximations:
    def test_knuth_q(self):
        assert knuth_q_approximation(200) == pytest.approx(
            math.sqrt(math.pi * 100), rel=1e-9
        )

    def test_sf_approximation_tracks_exact(self):
        n = 2000
        m = 2 * n // 3
        exact = expected_work_sf(n, m, 1 / n)
        approx = approx_work_sf(n, m)
        assert approx == pytest.approx(exact, rel=0.15)

    def test_if_approximation_same_order(self):
        n = 2000
        m = 2 * n // 3
        exact = expected_work_if(n, m, 1 / n)
        approx = approx_work_if(n, m)
        assert 0.3 < approx / exact < 3.0


class TestTheorem52:
    def test_bound_value(self):
        assert theorem_5_2_bound(2.0) == pytest.approx(
            (math.e ** 2 - 3) / 2
        )

    def test_bound_about_2_2(self):
        assert theorem_5_2_bound(2.0) == pytest.approx(2.195, abs=0.01)

    def test_exact_below_bound(self):
        for n in (100, 1000, 10000):
            assert expected_reachable_exact(n, 2.0) <= theorem_5_2_bound(2.0)

    def test_exact_converges_to_bound(self):
        assert expected_reachable_exact(10**6, 2.0) == pytest.approx(
            theorem_5_2_bound(2.0), rel=0.01
        )

    def test_climbs_sharply_with_density(self):
        # The paper: "for graphs denser than p = 2/n the value climbs
        # sharply — our method relies on sparse graphs."
        sparse = theorem_5_2_bound(2.0)
        dense = theorem_5_2_bound(6.0)
        assert dense > 10 * sparse
