"""Monte-Carlo validation tests (slow-ish, kept at small n)."""

import pytest

from repro.model import (
    expected_work_if,
    expected_work_sf,
    sample_graph,
    simulate_reachable,
    simulate_work,
    theorem_5_2_bound,
)


class TestRandomGraph:
    def test_deterministic_in_seed(self):
        import random

        a = sample_graph(10, 4, 0.2, random.Random(5))
        b = sample_graph(10, 4, 0.2, random.Random(5))
        assert a.edges == b.edges
        assert a.ranks == b.ranks

    def test_ranks_are_permutation(self):
        import random

        graph = sample_graph(20, 3, 0.1, random.Random(1))
        assert sorted(graph.ranks) == list(range(20))

    def test_no_self_edges(self):
        import random

        graph = sample_graph(10, 2, 0.9, random.Random(2))
        assert all(src != dst for src, dst in graph.edges)

    def test_density_scales(self):
        import random

        sparse = sample_graph(30, 0, 0.05, random.Random(3))
        dense = sample_graph(30, 0, 0.5, random.Random(3))
        assert len(dense.edges) > len(sparse.edges)

    def test_node_classification(self):
        import random

        graph = sample_graph(5, 3, 0.2, random.Random(4))
        assert graph.is_variable(4)
        assert not graph.is_variable(5)
        assert graph.num_nodes == 8


class TestWorkSimulation:
    def test_matches_sf_formula(self):
        n, m, p = 7, 4, 1 / 7
        sim = simulate_work(n, m, p, trials=600, seed=11)
        formula = expected_work_sf(n, m, p)
        assert sim.mean_work_sf == pytest.approx(formula, rel=0.2)

    def test_matches_if_formula(self):
        n, m, p = 7, 4, 1 / 7
        sim = simulate_work(n, m, p, trials=600, seed=11)
        formula = expected_work_if(n, m, p)
        assert sim.mean_work_if == pytest.approx(formula, rel=0.2)

    def test_deterministic(self):
        a = simulate_work(6, 3, 0.15, trials=50, seed=2)
        b = simulate_work(6, 3, 0.15, trials=50, seed=2)
        assert a.mean_work_sf == b.mean_work_sf

    def test_ratio_property(self):
        sim = simulate_work(8, 5, 1 / 8, trials=200, seed=3)
        assert sim.ratio > 0


class TestReachableSimulation:
    def test_below_bound(self):
        sim = simulate_reachable(200, 2.0, trials=5, seed=7)
        # The bound is on the expectation; allow sampling noise.
        assert sim.mean_reachable <= theorem_5_2_bound(2.0) * 1.3

    def test_sparser_reaches_less(self):
        sparse = simulate_reachable(200, 1.0, trials=5, seed=7)
        dense = simulate_reachable(200, 3.0, trials=5, seed=7)
        assert sparse.mean_reachable < dense.mean_reachable

    def test_max_tracked(self):
        sim = simulate_reachable(100, 2.0, trials=3, seed=1)
        assert sim.max_reachable >= sim.mean_reachable
