"""Tests for running the production solver on model-distributed inputs."""

import pytest

from repro.model import measure_solver_on_model, random_constraint_system
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
    solve_reference,
)


class TestRandomConstraintSystem:
    def test_deterministic(self):
        a = random_constraint_system(10, 6, 0.1, seed=3)
        b = random_constraint_system(10, 6, 0.1, seed=3)
        assert len(a) == len(b)

    def test_shape(self):
        system = random_constraint_system(10, 6, 0.5, seed=1)
        assert system.num_vars == 10
        assert len(system) > 0

    def test_resolution_is_inert(self):
        # Sources k(0) meeting sinks k(1) must produce no diagnostics
        # and no further constraints (the model's assumption).
        system = random_constraint_system(8, 8, 0.5, seed=2)
        solution = solve(system, SolverOptions())
        assert solution.ok

    def test_forms_agree_with_reference(self):
        system = random_constraint_system(9, 5, 0.25, seed=4)
        reference = solve_reference(system)
        for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
            for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE,
                           CyclePolicy.ORACLE):
                solution = solve(system, SolverOptions(
                    form=form, cycles=policy))
                for var in system.variables:
                    assert solution.least_solution(var) == \
                        reference.least_solution(var)


class TestModelMeasurement:
    def test_defaults_follow_theorem(self):
        comparison = measure_solver_on_model(30, trials=2)
        assert comparison.m == 20
        assert comparison.p == pytest.approx(1 / 30)

    def test_ratio_positive_and_grows(self):
        small = measure_solver_on_model(50, trials=3, seed=1)
        large = measure_solver_on_model(400, trials=2, seed=1)
        assert small.ratio > 0
        # Theorem 5.1: the SF/IF gap widens with n.
        assert large.ratio > small.ratio * 0.9
