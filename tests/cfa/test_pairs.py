"""Tests for pairs (cons/car/cdr) in the closure analysis."""

import pytest

from repro.cfa import (
    Cons,
    Proj,
    analyze_cfa_source,
    parse_expr,
    solve_cfa,
)
from tests.conftest import ALL_CONFIGS


def closures(source):
    program = analyze_cfa_source(source)
    return solve_cfa(program), program


class TestParsing:
    def test_cons(self):
        e = parse_expr("(cons 1 2)")
        assert isinstance(e, Cons)

    def test_car_cdr(self):
        assert parse_expr("(car p)").which == "car"
        assert parse_expr("(cdr p)").which == "cdr"

    def test_proj_validation(self):
        with pytest.raises(ValueError):
            Proj("first", parse_expr("1"))

    def test_cons_with_wrong_arity_is_application(self):
        # (cons a) parses as an application of the variable `cons`.
        e = parse_expr("(cons 1)")
        assert not isinstance(e, Cons)


class TestAnalysis:
    def test_car_of_cons(self):
        result, program = closures(
            "(let ((f (lambda (x) x)))"
            " (let ((g (lambda (y) y)))"
            "  (car (cons f g))))"
        )
        assert result.closure_names_of(program.root) == {"f"}

    def test_cdr_of_cons(self):
        result, program = closures(
            "(let ((f (lambda (x) x)))"
            " (let ((g (lambda (y) y)))"
            "  (cdr (cons f g))))"
        )
        assert result.closure_names_of(program.root) == {"g"}

    def test_nested_pairs(self):
        result, program = closures(
            "(let ((f (lambda (x) x)))"
            " (car (cdr (cons 1 (cons f 2)))))"
        )
        assert result.closure_names_of(program.root) == {"f"}

    def test_pair_value_is_not_a_closure(self):
        result, program = closures(
            "(let ((f (lambda (x) x))) (cons f f))"
        )
        assert result.closure_names_of(program.root) == frozenset()

    def test_closures_through_list_structures(self):
        # Build a two-element "list" of functions; project both out and
        # apply them.
        result, program = closures(
            "(let ((inc (lambda (n) (+ n 1))))"
            " (let ((dec (lambda (m) (- m 1))))"
            "  (let ((fns (cons inc (cons dec 0))))"
            "   ((car fns) ((car (cdr fns)) 5)))))"
        )
        targets = result.call_targets()
        flat = set()
        for names in targets.values():
            flat |= names
        assert {"inc", "dec"} <= flat

    def test_pairs_through_function_boundaries(self):
        result, program = closures(
            "(let ((wrap (lambda (v) (cons v 0))))"
            " (let ((f (lambda (x) x)))"
            "  (car (wrap f))))"
        )
        assert result.closure_names_of(program.root) == {"f"}

    def test_all_configs_agree(self):
        from repro.solver import SolverOptions

        program = analyze_cfa_source(
            "(letrec ((build (lambda (n)"
            "   (if0 n 0 (cons (lambda (z) z) (build (- n 1)))))))"
            " (car (build 3)))"
        )
        baseline = None
        for form, policy in ALL_CONFIGS:
            result = solve_cfa(program, SolverOptions(
                form=form, cycles=policy))
            names = result.closure_names_of(program.root)
            if baseline is None:
                baseline = names
            else:
                assert names == baseline, (form, policy)
        assert baseline  # the built list holds the inner lambda
