"""Tests for the mini-language s-expression reader."""

import pytest

from repro.cfa import (
    App,
    CfaParseError,
    Const,
    If0,
    Lam,
    Let,
    LetRec,
    Prim,
    Var,
    parse_expr,
)


class TestAtoms:
    def test_integer(self):
        e = parse_expr("42")
        assert isinstance(e, Const) and e.value == 42

    def test_negative_integer(self):
        e = parse_expr("-3")
        assert isinstance(e, Const) and e.value == -3

    def test_variable(self):
        e = parse_expr("foo")
        assert isinstance(e, Var) and e.name == "foo"


class TestForms:
    def test_lambda(self):
        e = parse_expr("(lambda (x) x)")
        assert isinstance(e, Lam)
        assert e.param == "x"
        assert isinstance(e.body, Var)

    def test_multi_param_lambda_curries(self):
        e = parse_expr("(lambda (x y) x)")
        assert isinstance(e, Lam) and e.param == "x"
        assert isinstance(e.body, Lam) and e.body.param == "y"

    def test_application(self):
        e = parse_expr("(f x)")
        assert isinstance(e, App)

    def test_multi_arg_application_curries(self):
        e = parse_expr("(f x y)")
        assert isinstance(e, App)
        assert isinstance(e.function, App)

    def test_let(self):
        e = parse_expr("(let ((x 1)) x)")
        assert isinstance(e, Let)
        assert e.name == "x"

    def test_letrec(self):
        e = parse_expr("(letrec ((f (lambda (n) (f n)))) f)")
        assert isinstance(e, LetRec)

    def test_let_names_lambda(self):
        e = parse_expr("(let ((inc (lambda (n) (+ n 1)))) inc)")
        assert e.value.name == "inc"

    def test_if0(self):
        e = parse_expr("(if0 0 1 2)")
        assert isinstance(e, If0)

    def test_prim(self):
        e = parse_expr("(+ 1 2)")
        assert isinstance(e, Prim) and e.op == "+"

    def test_nested(self):
        e = parse_expr("((lambda (x) (x x)) (lambda (y) y))")
        assert isinstance(e, App)
        assert isinstance(e.function, Lam)


class TestErrors:
    def test_unbalanced(self):
        with pytest.raises(CfaParseError):
            parse_expr("(lambda (x) x")

    def test_trailing(self):
        with pytest.raises(CfaParseError):
            parse_expr("x y")

    def test_empty_application(self):
        with pytest.raises(CfaParseError):
            parse_expr("()")

    def test_bad_lambda(self):
        with pytest.raises(CfaParseError):
            parse_expr("(lambda x x)")

    def test_bad_let(self):
        with pytest.raises(CfaParseError):
            parse_expr("(let (x 1) x)")

    def test_unexpected_close(self):
        with pytest.raises(CfaParseError):
            parse_expr(")")


class TestAst:
    def test_labels_unique(self):
        e = parse_expr("((lambda (x) x) (lambda (y) y))")
        labels = set()
        stack = [e]
        while stack:
            node = stack.pop()
            assert node.label not in labels
            labels.add(node.label)
            stack.extend(node.children())

    def test_count_nodes(self):
        e = parse_expr("(+ 1 2)")
        assert e.count_nodes() == 3

    def test_str_round_trippable(self):
        e = parse_expr("(let ((id (lambda (x) x))) (id 1))")
        again = parse_expr(str(e))
        assert str(again) == str(e)
