"""Tests for closure analysis (0CFA) over the set-constraint solver."""


from repro.cfa import analyze_cfa_source, solve_cfa
from repro.solver import CyclePolicy, GraphForm, SolverOptions
from tests.conftest import ALL_CONFIGS


def closures(source, options=None):
    program = analyze_cfa_source(source)
    result = solve_cfa(program, options)
    return result, program


class TestBasics:
    def test_identity(self):
        result, program = closures("(let ((id (lambda (x) x))) (id id))")
        assert result.closure_names_of(program.root) == {"id"}

    def test_constant_has_no_closures(self):
        result, program = closures("(+ 1 2)")
        assert result.closure_names_of(program.root) == frozenset()

    def test_let_body_value(self):
        result, program = closures(
            "(let ((f (lambda (x) x))) f)"
        )
        assert result.closure_names_of(program.root) == {"f"}

    def test_unapplied_lambda_param_empty(self):
        source = "(lambda (x) x)"
        result, program = closures(source)
        expected = {"lam@%d" % program.root.label}
        assert result.closure_names_of(program.root) == expected

    def test_application_returns_body_values(self):
        result, program = closures(
            "(let ((k (lambda (x) (lambda (y) x))))"
            " ((k (lambda (z) z)) 0))"
        )
        # k returns its inner lambda; applying that yields x's values.
        names = result.closure_names_of(program.root)
        assert any(name.startswith("lam@") for name in names)

    def test_if0_merges_branches(self):
        result, program = closures(
            "(let ((f (lambda (a) a)))"
            " (let ((g (lambda (b) b)))"
            "  (if0 0 f g)))"
        )
        assert result.closure_names_of(program.root) == {"f", "g"}

    def test_higher_order_flow(self):
        result, program = closures(
            "(let ((apply (lambda (h) (lambda (v) (h v)))))"
            " (let ((inc (lambda (n) (+ n 1))))"
            "  ((apply inc) 3)))"
        )
        targets = result.call_targets()
        assert {"inc"} in targets.values()

    def test_self_application(self):
        result, program = closures(
            "((lambda (x) (x x)) (lambda (y) (y y)))"
        )
        targets = result.call_targets()
        # Every application may call either lambda (omega-style blowup
        # collapses into a cyclic constraint set).
        assert all(targets.values())

    def test_recursion_targets(self):
        result, program = closures(
            "(letrec ((loop (lambda (n) (if0 n 0 (loop (- n 1))))))"
            " (loop 10))"
        )
        for names in result.call_targets().values():
            assert names == {"loop"}

    def test_mutual_recursion_via_nesting(self):
        result, program = closures(
            "(letrec ((even (lambda (n)"
            "   (if0 n 1 (letrec ((odd (lambda (m)"
            "       (if0 m 0 (even (- m 1))))))"
            "     (odd (- n 1)))))))"
            " (even 4))"
        )
        flat = set()
        for names in result.call_targets().values():
            flat |= names
        assert {"even", "odd"} <= flat


class TestConfigurations:
    SOURCE = (
        "(letrec ((fix (lambda (f) (f (lambda (x) ((fix f) x))))))"
        " (let ((fact (lambda (self) (lambda (n)"
        "    (if0 n 1 (* n (self (- n 1))))))))"
        "  ((fix fact) 5)))"
    )

    def test_all_configs_agree(self):
        program = analyze_cfa_source(self.SOURCE)
        baseline = None
        for form, policy in ALL_CONFIGS:
            result = solve_cfa(program, SolverOptions(
                form=form, cycles=policy))
            targets = result.call_targets()
            if baseline is None:
                baseline = targets
            else:
                assert targets == baseline, (form, policy)

    def test_online_eliminates_on_recursion(self):
        program = analyze_cfa_source(self.SOURCE)
        online = solve_cfa(program, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE))
        assert online.solution.stats.vars_eliminated > 0

    def test_online_reduces_work_on_cyclic_program(self):
        # A loopy program: chained recursive dispatchers.
        parts = ["(letrec ((f0 (lambda (x) (f0 x))))"]
        closer = [")"]
        for i in range(1, 12):
            parts.append(
                f"(letrec ((f{i} (lambda (x) (f{i} (f{i-1} x)))))"
            )
            closer.append(")")
        parts.append("(f11 (lambda (v) v))")
        source = " ".join(parts) + " " + " ".join(closer)
        program = analyze_cfa_source(source)
        plain = solve_cfa(program, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.NONE))
        online = solve_cfa(program, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE))
        assert online.solution.stats.work <= plain.solution.stats.work
        assert online.solution.stats.vars_eliminated > 0


class TestScopeRules:
    def test_lexical_shadowing(self):
        result, program = closures(
            "(let ((x (lambda (a) a)))"
            " (let ((f (lambda (x) x)))"
            "  (f 1)))"
        )
        # The inner x is the parameter (an int flows in), not the outer
        # lambda; (f 1) returns no closures... except 1 has none, so the
        # root sees nothing from the parameter.
        assert result.closure_names_of(program.root) == frozenset()

    def test_unbound_variable_is_empty(self):
        result, program = closures("unknown")
        assert result.closure_names_of(program.root) == frozenset()

    def test_let_not_recursive(self):
        # In a plain let the binding is not visible in its own value.
        result, program = closures(
            "(let ((f (lambda (n) (f n)))) f)"
        )
        targets = result.call_targets()
        # The inner (f n) refers to an unbound f: no targets.
        assert all(not names for names in targets.values())
