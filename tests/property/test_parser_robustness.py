"""Robustness: the parser terminates cleanly on damaged input.

For arbitrary prefixes and mutations of valid generated programs the
parser must either succeed or raise a frontend error — never hang or
throw an unrelated exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import CFrontError, parse
from repro.workloads import GeneratorConfig, generate_program

pytestmark = pytest.mark.slow


def base_source(seed):
    return generate_program(
        GeneratorConfig(name="robust", seed=seed, functions=3)
    )


@given(st.integers(0, 500), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_prefixes_terminate(seed, cut):
    source = base_source(seed)
    prefix = source[: cut % (len(source) + 1)]
    try:
        parse(prefix)
    except CFrontError:
        pass  # expected for most truncations


@given(
    st.integers(0, 200),
    st.integers(0, 5_000),
    st.sampled_from("{}();,*&=<>!0aZ_\" '"),
)

@settings(max_examples=40, deadline=None)
def test_single_character_mutations_terminate(seed, position, junk):
    source = base_source(seed)
    index = position % len(source)
    mutated = source[:index] + junk + source[index + 1:]
    try:
        parse(mutated)
    except CFrontError:
        pass


@given(st.text(alphabet="(){};,*&=intvoidchar \n", max_size=200))
@settings(max_examples=60, deadline=None)
def test_keyword_soup_terminates(source):
    try:
        parse(source)
    except CFrontError:
        pass
