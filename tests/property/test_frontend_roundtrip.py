"""Property tests for the C frontend over generated programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfront import parse, pretty_print
from repro.workloads import GeneratorConfig, generate_program

pytestmark = pytest.mark.slow



def generated_source(seed, functions=8):
    return generate_program(
        GeneratorConfig(name="prop", seed=seed, functions=functions)
    )


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_generated_programs_parse(seed):
    unit = parse(generated_source(seed))
    assert unit.count_nodes() > 50


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_pretty_print_is_fixpoint(seed):
    source = generated_source(seed, functions=5)
    once = pretty_print(parse(source))
    twice = pretty_print(parse(once))
    assert once == twice


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_pretty_print_preserves_ast_shape(seed):
    source = generated_source(seed, functions=5)
    original = parse(source)
    reparsed = parse(pretty_print(original))
    # Function inventory and statement counts survive the round trip.
    assert [f.name for f in original.functions()] == [
        f.name for f in reparsed.functions()
    ]

    def shape(unit):
        return [
            (f.name, len(f.params), f.body.count_nodes())
            for f in unit.functions()
        ]

    assert shape(original) == shape(reparsed)


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_andersen_deterministic_over_roundtrip(seed):
    from repro.andersen import analyze_unit, solve_points_to

    source = generated_source(seed, functions=4)
    direct = solve_points_to(analyze_unit(parse(source)))
    roundtripped = solve_points_to(
        analyze_unit(parse(pretty_print(parse(source))))
    )
    assert direct.as_name_graph() == roundtripped.as_name_graph()
