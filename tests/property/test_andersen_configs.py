"""Property test: points-to results are configuration-independent.

On randomly generated C programs, every (form, policy, order seed)
combination must produce identical points-to graphs — the headline
correctness property of the reproduction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.andersen import analyze_unit, solve_points_to
from repro.cfront import parse
from repro.solver import SolverOptions
from repro.workloads import GeneratorConfig, generate_program
from tests.conftest import ALL_CONFIGS

pytestmark = pytest.mark.slow



def program_for(seed):
    source = generate_program(
        GeneratorConfig(name="prop", seed=seed, functions=4)
    )
    return analyze_unit(parse(source))


@given(st.integers(0, 5_000), st.integers(0, 3))
@settings(max_examples=10, deadline=None)
def test_all_configs_same_points_to(seed, order_seed):
    program = program_for(seed)
    graphs = []
    for form, policy in ALL_CONFIGS:
        result = solve_points_to(program, SolverOptions(
            form=form, cycles=policy, seed=order_seed,
        ))
        graphs.append(((form, policy), result.as_name_graph()))
    baseline = graphs[0][1]
    for config, graph in graphs[1:]:
        assert graph == baseline, config


@given(st.integers(0, 5_000))
@settings(max_examples=10, deadline=None)
def test_points_to_independent_of_order_seed(seed):
    program = program_for(seed)
    baseline = solve_points_to(
        program, SolverOptions(seed=0)
    ).as_name_graph()
    for order_seed in (1, 2, 3):
        graph = solve_points_to(
            program, SolverOptions(seed=order_seed)
        ).as_name_graph()
        assert graph == baseline
