"""Model-based property test for union-find."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import UnionFind

pytestmark = pytest.mark.slow



class NaivePartition:
    """Reference implementation: explicit set partition."""

    def __init__(self, size):
        self.sets = [{i} for i in range(size)]
        self.witness = list(range(size))

    def _set_of(self, element):
        for index, members in enumerate(self.sets):
            if element in members:
                return index
        raise AssertionError

    def union_into(self, witness, absorbed):
        w_set = self._set_of(witness)
        a_set = self._set_of(absorbed)
        if w_set == a_set:
            return False
        self.sets[w_set] |= self.sets[a_set]
        del self.sets[a_set]
        return True

    def same(self, a, b):
        return self._set_of(a) == self._set_of(b)


@st.composite
def union_sequences(draw):
    size = draw(st.integers(2, 20))
    ops = draw(st.lists(
        st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
        max_size=40,
    ))
    return size, ops


@given(union_sequences())
@settings(max_examples=100, deadline=None)
def test_matches_naive_partition(sequence):
    size, ops = sequence
    uf = UnionFind(size)
    naive = NaivePartition(size)
    for witness, absorbed in ops:
        assert uf.union_into(witness, absorbed) == naive.union_into(
            witness, absorbed
        )
    for a in range(size):
        for b in range(size):
            assert uf.same(a, b) == naive.same(a, b)


@given(union_sequences())
@settings(max_examples=100, deadline=None)
def test_representative_invariants(sequence):
    size, ops = sequence
    uf = UnionFind(size)
    merged = 0
    for witness, absorbed in ops:
        if uf.union_into(witness, absorbed):
            merged += 1
        # The representative of the witness's set never changes by
        # absorbing: find(witness) stays in witness's old set.
        assert uf.same(witness, absorbed)
    assert uf.collapsed_count == merged
    representatives = list(uf.representatives())
    assert len(representatives) == size - merged
    for rep in representatives:
        assert uf.find(rep) == rep
