"""Property test for the paper's Section 2.5 theorem.

"It is a theorem that for any ordering of variables, IF exposes at
least a two-cycle for every non-trivial strongly connected component" —
and the partial online search always detects an exposed two-cycle, so
under IF-Online *every* non-trivial SCC of the final constraint graph
must lose at least one variable to collapsing.  (The same does not hold
for SF, which the companion test demonstrates by exhibiting misses.)
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ConstraintSystem
from repro.graph.scc import strongly_connected_components
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve

pytestmark = pytest.mark.slow



@st.composite
def var_graphs(draw):
    """Random var-var constraint sets guaranteed to contain cycles."""
    n = draw(st.integers(min_value=3, max_value=10))
    edges = set(draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=4 * n,
    )))
    # Plant at least one directed cycle of length >= 2.
    cycle_len = draw(st.integers(2, n))
    members = draw(st.permutations(range(n))) [:cycle_len]
    for left, right in zip(members, members[1:] + [members[0]]):
        edges.add((left, right))
    edge_list = draw(st.permutations(sorted(edges)))
    return n, list(edge_list)


def build(n, edges):
    system = ConstraintSystem()
    variables = system.fresh_vars(n)
    for left, right in edges:
        system.add(variables[left], variables[right])
    return system


@given(var_graphs(), st.integers(0, 7))
@settings(max_examples=80, deadline=None)
def test_if_online_collapses_part_of_every_scc(graph, seed):
    n, edges = graph
    system = build(n, edges)
    # Final SCCs: recorded from a plain run (ids are stable there).
    plain = solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.NONE,
        record_var_edges=True, seed=seed,
    ))
    components = [
        component
        for component in strongly_connected_components(
            range(n), plain.var_edges
        )
        if len(component) >= 2
    ]
    online = solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE, seed=seed,
    ))
    for component in components:
        representatives = {
            online.graph.find(member) for member in component
        }
        assert len(representatives) < len(component), (
            "SCC fully survived IF-Online", component, edges
        )


@given(var_graphs(), st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_if_online_detects_at_least_sf_online(graph, seed):
    n, edges = graph
    system = build(n, edges)
    sf = solve(system, SolverOptions(
        form=GraphForm.STANDARD, cycles=CyclePolicy.ONLINE, seed=seed))
    if_ = solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE, seed=seed))
    # Not a theorem point-for-point, but collapsing correctness holds:
    # eliminated variables never exceed the total in SCCs.
    plain = solve(system, SolverOptions(
        form=GraphForm.STANDARD, cycles=CyclePolicy.NONE,
        record_var_edges=True, seed=seed))
    in_sccs = sum(
        len(component)
        for component in strongly_connected_components(
            range(n), plain.var_edges)
        if len(component) >= 2
    )
    assert sf.stats.vars_eliminated <= in_sccs
    assert if_.stats.vars_eliminated <= in_sccs


@given(var_graphs(), st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_collapsed_variables_share_least_solution(graph, seed):
    n, edges = graph
    system = build(n, edges)
    online = solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE, seed=seed))
    for var in system.variables:
        rep = online.graph.find(var.index)
        assert online.least_solution_by_index(rep) == \
            online.least_solution(var)
