"""Property tests: every configuration computes the same least solution.

Hypothesis generates random constraint systems — variable-variable
edges, sources, sinks, and structural constraints with mixed variance —
and checks all six solver configurations against the naive reference
solver.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ConstraintSystem, Variance
from repro.solver import SolverOptions, solve, solve_reference
from tests.conftest import ALL_CONFIGS

pytestmark = pytest.mark.slow


MAX_VARS = 8


@st.composite
def constraint_systems(draw):
    """A random small constraint system."""
    n = draw(st.integers(min_value=2, max_value=MAX_VARS))
    system = ConstraintSystem("hypothesis")
    cov = system.constructor("k", (Variance.COVARIANT,))
    ref = system.constructor(
        "r", (Variance.COVARIANT, Variance.CONTRAVARIANT)
    )
    variables = system.fresh_vars(n)

    var_edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=3 * n,
        )
    )
    for left, right in var_edges:
        system.add(variables[left], variables[right])

    n_sources = draw(st.integers(0, 4))
    for index in range(n_sources):
        target = draw(st.integers(0, n - 1))
        system.add(
            system.term(cov, (system.zero,), label=f"s{index}"),
            variables[target],
        )

    # Structural constraints: r(a, b̄) <= x and x <= r(c, d̄) create
    # transitive resolution with both variances.
    n_structural = draw(st.integers(0, 3))
    for index in range(n_structural):
        a, b, c, d, x = (draw(st.integers(0, n - 1)) for _ in range(5))
        system.add(
            system.term(ref, (variables[a], variables[b]),
                        label=f"src{index}"),
            variables[x],
        )
        system.add(
            variables[x],
            system.term(ref, (variables[c], variables[d])),
        )
    return system


@given(constraint_systems(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_all_configurations_match_reference(system, seed):
    reference = solve_reference(system)
    for form, policy in ALL_CONFIGS:
        solution = solve(
            system, SolverOptions(form=form, cycles=policy, seed=seed)
        )
        for var in system.variables:
            assert solution.least_solution(var) == \
                reference.least_solution(var), (form, policy, var)


@given(constraint_systems(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_work_is_deterministic(system, seed):
    for form, policy in ALL_CONFIGS:
        options = SolverOptions(form=form, cycles=policy, seed=seed)
        first = solve(system, options)
        second = solve(system, options)
        assert first.stats.work == second.stats.work
        assert first.stats.final_edges == second.stats.final_edges


@given(constraint_systems())
@settings(max_examples=40, deadline=None)
def test_online_never_more_final_edges_than_plain(system):
    from repro.solver import CyclePolicy, GraphForm

    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
        plain = solve(system, SolverOptions(
            form=form, cycles=CyclePolicy.NONE))
        online = solve(system, SolverOptions(
            form=form, cycles=CyclePolicy.ONLINE))
        # Collapsing can only merge adjacency; a collapsed graph never
        # has more distinct edges than the plain closure.
        assert online.stats.final_edges <= plain.stats.final_edges
