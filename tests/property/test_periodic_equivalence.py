"""Property test: the periodic policy preserves least solutions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ConstraintSystem, Variance
from repro.solver import (
    CyclePolicy,
    GraphForm,
    SolverOptions,
    solve,
    solve_reference,
)

pytestmark = pytest.mark.slow


@st.composite
def cyclic_systems(draw):
    n = draw(st.integers(3, 9))
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    variables = system.fresh_vars(n)
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=n, max_size=3 * n,
    ))
    for left, right in edges:
        system.add(variables[left], variables[right])
    for index in range(draw(st.integers(1, 3))):
        target = draw(st.integers(0, n - 1))
        system.add(
            system.term(box, (system.zero,), label=f"s{index}"),
            variables[target],
        )
    return system


@given(cyclic_systems(), st.integers(1, 20), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_periodic_matches_reference(system, interval, seed):
    reference = solve_reference(system)
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
        solution = solve(system, SolverOptions(
            form=form,
            cycles=CyclePolicy.PERIODIC,
            periodic_interval=interval,
            seed=seed,
        ))
        for var in system.variables:
            assert solution.least_solution(var) == \
                reference.least_solution(var), (form, interval)


@given(cyclic_systems(), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_sweep_every_edge_eliminates_all_cycles(system, seed):
    from repro.graph.scc import summarize_sccs

    plain = solve(system, SolverOptions(
        form=GraphForm.STANDARD, cycles=CyclePolicy.NONE,
        record_var_edges=True, seed=seed,
    ))
    summary = summarize_sccs(range(system.num_vars), plain.var_edges)
    periodic = solve(system, SolverOptions(
        form=GraphForm.STANDARD, cycles=CyclePolicy.PERIODIC,
        periodic_interval=1, seed=seed,
    ))
    # A sweep after every single edge catches every cycle variable.
    expected = summary.vars_in_cycles - summary.nontrivial_sccs
    assert periodic.stats.vars_eliminated == expected
