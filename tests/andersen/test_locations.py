"""Tests for abstract locations and the location table."""

import pytest

from repro.andersen import AbstractLocation, LocationKind, LocationTable


class TestAbstractLocation:
    def test_equality_by_uid(self):
        a = AbstractLocation(1, "x", LocationKind.VARIABLE)
        b = AbstractLocation(1, "renamed", LocationKind.HEAP)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = AbstractLocation(1, "x", LocationKind.VARIABLE)
        b = AbstractLocation(2, "x", LocationKind.VARIABLE)
        assert a != b

    def test_str_is_name(self):
        loc = AbstractLocation(0, "main::p", LocationKind.VARIABLE)
        assert str(loc) == "main::p"

    def test_kinds(self):
        assert LocationKind.HEAP.value == "heap"
        assert len(list(LocationKind)) == 5


class TestLocationTable:
    def test_dense_uids(self):
        table = LocationTable()
        first = table.make("a", LocationKind.VARIABLE)
        second = table.make("b", LocationKind.HEAP)
        assert (first.uid, second.uid) == (0, 1)
        assert len(table) == 2

    def test_by_uid(self):
        table = LocationTable()
        loc = table.make("a", LocationKind.VARIABLE)
        assert table.by_uid(loc.uid) is loc

    def test_by_name(self):
        table = LocationTable()
        table.make("a", LocationKind.VARIABLE)
        wanted = table.make("b", LocationKind.STRING)
        assert table.by_name("b") is wanted

    def test_by_name_missing(self):
        with pytest.raises(KeyError):
            LocationTable().by_name("ghost")

    def test_iteration_order(self):
        table = LocationTable()
        names = ["x", "y", "z"]
        for name in names:
            table.make(name, LocationKind.VARIABLE)
        assert [loc.name for loc in table] == names
