"""Tests for the points-to command line."""


import pytest

from repro.andersen.__main__ import main

SOURCE = """
int x, y;
int *p, *q;
int main(void) { p = &x; q = p; q = &y; return 0; }
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_basic_output(self, c_file, capsys):
        assert main([c_file]) == 0
        out = capsys.readouterr().out
        assert "p -> {x}" in out
        assert "q -> {x, y}" in out

    def test_experiment_selection(self, c_file, capsys):
        assert main([c_file, "--experiment", "SF-Plain"]) == 0
        out = capsys.readouterr().out
        assert "p -> {x}" in out

    def test_stats_flag(self, c_file, capsys):
        assert main([c_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "work=" in out

    def test_steensgaard_flag(self, c_file, capsys):
        assert main([c_file, "--steensgaard"]) == 0
        out = capsys.readouterr().out
        assert "Steensgaard baseline" in out

    def test_dot_export(self, c_file, tmp_path, capsys):
        dot_path = str(tmp_path / "out.dot")
        assert main([c_file, "--dot", dot_path]) == 0
        with open(dot_path, "r", encoding="utf-8") as handle:
            dot = handle.read()
        assert '"q" -> "y";' in dot

    def test_unknown_experiment_rejected(self, c_file):
        with pytest.raises(SystemExit):
            main([c_file, "--experiment", "bogus"])
