"""Andersen's analysis on basic pointer programs with known answers."""


from repro.andersen import analyze_source, solve_points_to
from repro.workloads import ALL_PROGRAMS


def points_to(source, *names):
    result = solve_points_to(analyze_source(source))
    assert result.solution.ok, result.solution.diagnostics[:3]
    return tuple(sorted(result.points_to_named(name)) for name in names)


class TestAssignments:
    def test_address_of(self):
        source = "int x; int *p; int main(void) { p = &x; return 0; }"
        (p,) = points_to(source, "p")
        assert p == ["x"]

    def test_copy_propagates(self):
        p, q = points_to(
            "int x; int *p, *q;"
            "int main(void) { p = &x; q = p; return 0; }",
            "p", "q",
        )
        assert p == ["x"] and q == ["x"]

    def test_copy_is_directional(self):
        source = (
            "int x, y; int *p, *q;"
            "int main(void) { p = &x; q = &y; q = p; return 0; }"
        )
        p, q = points_to(source, "p", "q")
        assert p == ["x"]        # p is unaffected by q = p
        assert q == ["x", "y"]

    def test_figure5_points_to_graph(self):
        # The paper's Figure 5 example program.
        a, b, c = points_to(ALL_PROGRAMS["figure5"], "a", "b", "c")
        assert a == ["b", "c"]
        assert b == ["d"]
        assert c == ["b"]

    def test_store_through_pointer(self):
        source = (
            "int x, y; int *p; int **pp;"
            "int main(void) { pp = &p; *pp = &y; return 0; }"
        )
        p, pp = points_to(source, "p", "pp")
        assert pp == ["p"]
        assert p == ["y"]

    def test_load_through_pointer(self):
        source = (
            "int x; int *p, *q; int **pp;"
            "int main(void) { p = &x; pp = &p; q = *pp; return 0; }"
        )
        (q,) = points_to(source, "q")
        assert q == ["x"]

    def test_multi_level(self):
        source = ALL_PROGRAMS["multi_level"]
        l1, l2, l3 = points_to(source, "level1", "level2", "level3")
        assert l1 == ["target"]
        assert l2 == ["level1"]
        assert l3 == ["level2"]

    def test_conditional_merges(self):
        source = (
            "int x, y; int *p;"
            "int main(void) { p = 1 ? &x : &y; return 0; }"
        )
        (p,) = points_to(source, "p")
        assert p == ["x", "y"]

    def test_chained_assignment(self):
        source = (
            "int x; int *p, *q;"
            "int main(void) { p = q = &x; return 0; }"
        )
        p, q = points_to(source, "p", "q")
        assert p == ["x"] and q == ["x"]

    def test_compound_assignment_conservative(self):
        source = (
            "int a[4]; int *p;"
            "int main(void) { p = a; p += 1; return 0; }"
        )
        (p,) = points_to(source, "p")
        assert p == ["a"]

    def test_null_and_literals_ignored(self):
        (p,) = points_to(
            "int *p; int main(void) { p = 0; return 0; }", "p"
        )
        assert p == []

    def test_cast_transparent(self):
        source = (
            "int x; char *cp;"
            "int main(void) { cp = (char *)&x; return 0; }"
        )
        (cp,) = points_to(source, "cp")
        assert cp == ["x"]

    def test_global_initializer(self):
        source = "int x; int *p = &x; int main(void) { return 0; }"
        (p,) = points_to(source, "p")
        assert p == ["x"]

    def test_swap_via_double_pointers(self):
        p, q = points_to(ALL_PROGRAMS["swap_cycle"], "p", "q")
        assert p == ["x", "y"]
        assert q == ["x", "y"]


class TestStringsAndImplicit:
    def test_string_literal_location(self):
        (s,) = points_to(
            'char *s; int main(void) { s = "hi"; return 0; }', "s"
        )
        assert s == ["<strings>"]

    def test_implicit_variable_created(self):
        program = analyze_source(
            "int *p; int main(void) { p = &undeclared; return 0; }"
        )
        result = solve_points_to(program)
        assert result.points_to_named("p") == {"undeclared"}

    def test_locals_are_qualified(self):
        program = analyze_source(
            "int main(void) { int local; int *p; p = &local; return 0; }"
        )
        result = solve_points_to(program)
        assert result.points_to_named("main::p") == {"main::local"}

    def test_shadowing(self):
        source = (
            "int x; int *p, *q;"
            "int main(void) { int x; p = &x; { int x; q = &x; } return 0; }"
        )
        program = analyze_source(source)
        result = solve_points_to(program)
        # Both locals shadow the global; p and q point to main::x
        # (collapsed by qualified name, which is per-function).
        assert "x" not in result.points_to_named("p")
