"""Andersen's analysis: heap allocation, structs, arrays."""

from repro.andersen import analyze_source, solve_points_to
from repro.workloads import ALL_PROGRAMS


def solve(source):
    result = solve_points_to(analyze_source(source))
    assert result.solution.ok, result.solution.diagnostics[:3]
    return result


class TestHeap:
    def test_malloc_fresh_location(self):
        result = solve(
            "int *p; int main(void)"
            "{ p = (int *)malloc(4); return 0; }"
        )
        assert result.points_to_named("p") == {"heap@1"}

    def test_distinct_call_sites(self):
        result = solve(
            "int *p, *q; int main(void) {"
            " p = (int *)malloc(4);"
            " q = (int *)malloc(4);"
            " return 0; }"
        )
        assert result.points_to_named("p") == {"heap@1"}
        assert result.points_to_named("q") == {"heap@2"}

    def test_shared_call_site_merges(self):
        result = solve(
            "int *p, *q;"
            "int *alloc(void) { return (int *)malloc(4); }"
            "int main(void) { p = alloc(); q = alloc(); return 0; }"
        )
        assert result.points_to_named("p") == {"heap@1"}
        assert result.points_to_named("q") == {"heap@1"}

    def test_other_allocators(self):
        result = solve(
            'char *s; int main(void) { s = strdup("x"); return 0; }'
        )
        assert result.points_to_named("s") == {"heap@1"}

    def test_store_into_heap(self):
        result = solve(
            "int x; int **pp; int main(void) {"
            " pp = (int **)malloc(8);"
            " *pp = &x;"
            " return 0; }"
        )
        heap = result.program.location_named("heap@1")
        assert {t.name for t in result.points_to(heap)} == {"x"}


class TestStructs:
    def test_field_store_collapses_to_object(self):
        result = solve(
            "struct s { int *f; int *g; };"
            "int x; struct s obj;"
            "int main(void) { obj.f = &x; return 0; }"
        )
        # Field-insensitive: the object's single location holds x.
        assert result.points_to_named("obj") == {"x"}

    def test_field_load(self):
        result = solve(
            "struct s { int *f; };"
            "int x; struct s obj; int *p;"
            "int main(void) { obj.f = &x; p = obj.f; return 0; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_arrow_store(self):
        result = solve(
            "struct s { int *f; };"
            "int x; struct s obj; struct s *sp;"
            "int main(void) { sp = &obj; sp->f = &x; return 0; }"
        )
        assert result.points_to_named("obj") == {"x"}

    def test_linked_list(self):
        result = solve(ALL_PROGRAMS["linked_list"])
        head = result.points_to_named("head")
        # One allocation site inside cons, so one heap location.
        # Field-insensitive: loading node->next also surfaces the
        # payload slots stored in the collapsed cell, so head sees the
        # heap cell plus (conservatively) the payload targets.
        assert "heap@1" in head
        assert head <= {"heap@1", "slot0", "slot1"}
        # Cells link to each other and hold the payload slots.
        heap1 = result.program.location_named("heap@1")
        targets = {t.name for t in result.points_to(heap1)}
        assert "slot0" in targets or "slot1" in targets


class TestArrays:
    def test_array_element_store(self):
        result = solve(
            "int x; int *a[4];"
            "int main(void) { a[1] = &x; return 0; }"
        )
        assert result.points_to_named("a") == {"x"}

    def test_array_element_load(self):
        result = solve(
            "int x; int *a[4]; int *p;"
            "int main(void) { a[0] = &x; p = a[2]; return 0; }"
        )
        # Array-collapsed: any element load sees any element store.
        assert result.points_to_named("p") == {"x"}

    def test_array_decay_assignment(self):
        result = solve(
            "int a[4]; int *p;"
            "int main(void) { p = a; return 0; }"
        )
        assert result.points_to_named("p") == {"a"}

    def test_pointer_into_array_via_index(self):
        result = solve(
            "int a[4]; int *p;"
            "int main(void) { p = &a[2]; return 0; }"
        )
        assert result.points_to_named("p") == {"a"}

    def test_deref_of_array_pointer(self):
        result = solve(
            "int x; int a[2]; int *p; int **pp;"
            "int main(void) { pp = &p; *pp = a; return 0; }"
        )
        assert result.points_to_named("p") == {"a"}

    def test_array_initializer(self):
        result = solve(
            "int x, y;"
            "int *a[2] = { &x, &y };"
            "int main(void) { return 0; }"
        )
        assert result.points_to_named("a") == {"x", "y"}
