"""Andersen's analysis: calls, returns, and function pointers."""

from repro.andersen import analyze_source, solve_points_to
from repro.workloads import ALL_PROGRAMS


def solve(source):
    result = solve_points_to(analyze_source(source))
    assert result.solution.ok, result.solution.diagnostics[:3]
    return result


class TestDirectCalls:
    def test_argument_flows_to_parameter(self):
        result = solve(
            "int x; void sink(int *a) { }"
            "int main(void) { sink(&x); return 0; }"
        )
        assert result.points_to_named("sink::a") == {"x"}

    def test_return_flows_to_caller(self):
        result = solve(
            "int x; int *source(void) { return &x; }"
            "int *p;"
            "int main(void) { p = source(); return 0; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_identity_function(self):
        result = solve(
            "int x, y; int *id(int *a) { return a; }"
            "int *p, *q;"
            "int main(void) { p = id(&x); q = id(&y); return 0; }"
        )
        # Andersen's is context-insensitive: both call sites merge.
        assert result.points_to_named("p") == {"x", "y"}
        assert result.points_to_named("q") == {"x", "y"}

    def test_multiple_parameters(self):
        result = solve(
            "int x, y;"
            "void two(int *a, int *b) { }"
            "int main(void) { two(&x, &y); return 0; }"
        )
        assert result.points_to_named("two::a") == {"x"}
        assert result.points_to_named("two::b") == {"y"}

    def test_forward_call_before_definition(self):
        result = solve(
            "int x; int *later(void);"
            "int *p;"
            "int main(void) { p = later(); return 0; }"
            "int *later(void) { return &x; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_recursion(self):
        result = solve(ALL_PROGRAMS["recursion"])
        pts = result.points_to_named("rotate::pivot")
        assert any(name.startswith("heap@") for name in pts)

    def test_extra_arguments_ignored(self):
        result = solve(
            "int x; void one(int *a) { }"
            "int main(void) { one(&x, 5, 7); return 0; }"
        )
        assert result.points_to_named("one::a") == {"x"}

    def test_implicit_extern_function(self):
        result = solve(
            "int x; int *p;"
            "int main(void) { p = unknown_fn(&x); return 0; }"
        )
        # The extern's return contributes nothing; no crash, no pts.
        assert result.points_to_named("p") == set()


class TestFunctionPointers:
    def test_assign_and_call(self):
        result = solve(
            "int x; int *get(int *a, int *b) { return a; }"
            "int *(*fp)(int *, int *); int *p;"
            "int main(void) { fp = get; p = fp(&x, 0); return 0; }"
        )
        assert result.points_to_named("fp") == {"get"}
        assert result.points_to_named("p") == {"x"}

    def test_address_of_function_same_as_name(self):
        result = solve(
            "int x; int *get(int *a, int *b) { return a; }"
            "int *(*fp)(int *, int *); int *p;"
            "int main(void) { fp = &get; p = fp(&x, 0); return 0; }"
        )
        assert result.points_to_named("fp") == {"get"}
        assert result.points_to_named("p") == {"x"}

    def test_deref_call_syntax(self):
        result = solve(
            "int x; int *get(int *a, int *b) { return a; }"
            "int *(*fp)(int *, int *); int *p;"
            "int main(void) { fp = get; p = (*fp)(&x, 0); return 0; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_two_targets_merge(self):
        result = solve(
            "int x, y;"
            "int *first(int *a, int *b) { return a; }"
            "int *second(int *a, int *b) { return b; }"
            "int *(*fp)(int *, int *); int *p;"
            "int main(void) {"
            "  fp = first;"
            "  if (x) fp = second;"
            "  p = fp(&x, &y);"
            "  return 0; }"
        )
        assert result.points_to_named("fp") == {"first", "second"}
        assert result.points_to_named("p") == {"x", "y"}

    def test_function_pointer_table(self):
        result = solve(ALL_PROGRAMS["function_pointers"])
        assert result.points_to_named("table") == {"first", "second"}
        out = result.points_to_named("main::out")
        assert out == {"a", "b"}

    def test_function_pointer_as_argument(self):
        result = solve(
            "int x;"
            "int *pick(int *a, int *b) { return a; }"
            "int *apply(int *(*fn)(int *, int *), int *v)"
            "{ return fn(v, v); }"
            "int *p;"
            "int main(void) { p = apply(pick, &x); return 0; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_function_pointer_stored_in_struct(self):
        result = solve(
            "int x;"
            "struct ops { int *(*get)(int *, int *); };"
            "int *take(int *a, int *b) { return a; }"
            "struct ops o; int *p;"
            "int main(void) {"
            "  o.get = take;"
            "  p = o.get(&x, 0);"
            "  return 0; }"
        )
        assert result.points_to_named("p") == {"x"}


class TestParameterAliasing:
    def test_swap_merges_pointees(self):
        result = solve(ALL_PROGRAMS["swap_cycle"])
        assert result.points_to_named("swap::u") == {"p", "q"}
        assert result.points_to_named("swap::tmp") == {"x", "y"}

    def test_callee_writes_through_parameter(self):
        result = solve(
            "int x; int *p;"
            "void set(int **slot, int *value) { *slot = value; }"
            "int main(void) { set(&p, &x); return 0; }"
        )
        assert result.points_to_named("p") == {"x"}
