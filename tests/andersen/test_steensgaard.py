"""Tests for the Steensgaard baseline and its relation to Andersen."""

import pytest

from repro.andersen import (
    analyze_source,
    analyze_unit_steensgaard,
    solve_points_to,
)
from repro.cfront import parse
from repro.workloads import ALL_PROGRAMS


def steensgaard(source):
    return analyze_unit_steensgaard(parse(source))


class TestBasics:
    def test_address_of(self):
        result = steensgaard(
            "int x; int *p; int main(void) { p = &x; return 0; }"
        )
        assert result.points_to_named("p") == {"x"}

    def test_unification_merges_both_ways(self):
        # q = p unifies the pointees: unlike Andersen, p also sees y.
        result = steensgaard(
            "int x, y; int *p, *q;"
            "int main(void) { p = &x; q = &y; q = p; return 0; }"
        )
        assert result.points_to_named("q") == {"x", "y"}
        assert result.points_to_named("p") == {"x", "y"}

    def test_store_through_pointer(self):
        result = steensgaard(
            "int y; int *p; int **pp;"
            "int main(void) { pp = &p; *pp = &y; return 0; }"
        )
        assert result.points_to_named("p") == {"y"}

    def test_call_flows(self):
        result = steensgaard(
            "int x; void sink(int *a) { }"
            "int main(void) { sink(&x); return 0; }"
        )
        assert result.points_to_named("sink::a") == {"x"}

    def test_return_flows(self):
        result = steensgaard(
            "int x; int *get(void) { return &x; } int *p;"
            "int main(void) { p = get(); return 0; }"
        )
        assert "x" in result.points_to_named("p")

    def test_heap_location(self):
        result = steensgaard(
            "int *p; int main(void) { p = (int *)malloc(4); return 0; }"
        )
        assert result.points_to_named("p") == {"heap@1"}

    def test_empty_for_unassigned(self):
        result = steensgaard("int *p; int main(void) { return 0; }")
        assert result.points_to_named("p") == set()


class TestCoarseness:
    """Steensgaard must be a (possibly equal) over-approximation of
    Andersen on every location — the SH97 relationship."""

    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_superset_of_andersen(self, name):
        source = ALL_PROGRAMS[name]
        andersen = solve_points_to(analyze_source(source))
        unification = steensgaard(source)
        from repro.andersen import LocationKind

        for location in andersen.program.locations:
            if location.kind is LocationKind.FUNCTION:
                # Andersen models a function location as containing its
                # own lambda term; Steensgaard keeps signatures apart
                # from pointees, so the encodings are not comparable.
                continue
            fine = {
                target.name for target in andersen.points_to(location)
                if target.kind is not LocationKind.FUNCTION
            }
            try:
                coarse_loc = unification.locations.by_name(location.name)
            except KeyError:
                continue  # temporaries differ between the analyses
            coarse = {
                t.name for t in unification.points_to(coarse_loc)
            }
            missing = fine - coarse
            assert not missing, (location.name, fine, coarse)

    def test_strictly_coarser_example(self):
        source = (
            "int x, y; int *p, *q;"
            "int main(void) { p = &x; q = &y; q = p; return 0; }"
        )
        andersen = solve_points_to(analyze_source(source))
        unification = steensgaard(source)
        assert andersen.points_to_named("p") == {"x"}
        assert unification.points_to_named("p") == {"x", "y"}

    def test_average_set_size_not_smaller(self):
        source = ALL_PROGRAMS["swap_cycle"]
        andersen = solve_points_to(analyze_source(source))
        unification = steensgaard(source)
        assert (
            unification.average_set_size()
            >= andersen.average_set_size() - 1e-9
        )
