"""Andersen's analysis on unusual-but-legal C expression forms."""

from repro.andersen import analyze_source, solve_points_to


def points(source, *names):
    result = solve_points_to(analyze_source(source))
    return tuple(sorted(result.points_to_named(name)) for name in names)


class TestExoticExpressions:
    def test_assignment_as_deref_target(self):
        # *(p = q) = &x stores into q's targets (and p's, post-copy).
        source = (
            "int x, y; int *p, *q; int **pp, **qq;"
            "int main(void) {"
            "  pp = &p; qq = &q;"
            "  *(pp = qq) = &x;"
            "  return 0; }"
        )
        (q,) = points(source, "q")
        assert q == ["x"]

    def test_conditional_as_lvalue_source(self):
        source = (
            "int x; int *p, *q, *r;"
            "int main(void) { r = (x ? p : q); p = &x; return 0; }"
        )
        # r merges p and q values (empty at that point flows later too:
        # constraints are flow-insensitive, so p = &x is seen).
        (r,) = points(source, "r")
        assert r == ["x"]

    def test_comma_expression_value(self):
        source = (
            "int x, y; int *p, *q;"
            "int main(void) { q = (p = &x, &y); return 0; }"
        )
        p, q = points(source, "p", "q")
        assert p == ["x"]
        assert q == ["y"]

    def test_prefix_increment_of_pointer(self):
        source = (
            "int a[4]; int *p, *q;"
            "int main(void) { p = a; q = ++p; return 0; }"
        )
        (q,) = points(source, "q")
        assert q == ["a"]

    def test_postfix_increment_assignment(self):
        source = (
            "int a[4]; int *p, *q;"
            "int main(void) { p = a; q = p++; return 0; }"
        )
        (q,) = points(source, "q")
        assert q == ["a"]

    def test_deref_of_increment(self):
        source = (
            "int a[4]; int *p;"
            "int main(void) { p = a; *p++ = 5; return 0; }"
        )
        (p,) = points(source, "p")
        assert p == ["a"]

    def test_sizeof_operand_not_evaluated_for_flow(self):
        source = (
            "int x; int *p;"
            "int main(void) { int n; n = sizeof(p = &x); return 0; }"
        )
        # Even though real C doesn't evaluate sizeof operands, the
        # conservative analysis may include the flow; either answer
        # must at least not crash and p stays a subset of {x}.
        (p,) = points(source, "p")
        assert p in (["x"], [])

    def test_nested_address_and_deref_cancel(self):
        source = (
            "int x; int *p, *q;"
            "int main(void) { p = &x; q = *&p; return 0; }"
        )
        (q,) = points(source, "q")
        assert q == ["x"]

    def test_address_of_deref(self):
        source = (
            "int x; int *p, *q;"
            "int main(void) { p = &x; q = &*p; return 0; }"
        )
        (q,) = points(source, "q")
        assert q == ["x"]

    def test_ternary_of_calls(self):
        source = (
            "int x, y;"
            "int *fx(void) { return &x; }"
            "int *fy(void) { return &y; }"
            "int *p;"
            "int main(void) { p = (x ? fx() : fy()); return 0; }"
        )
        (p,) = points(source, "p")
        assert p == ["x", "y"]

    def test_chained_member_and_index(self):
        source = (
            "struct inner { int *ptr; };"
            "struct outer { struct inner cells[4]; };"
            "int x; struct outer o; int *p;"
            "int main(void) {"
            "  o.cells[1].ptr = &x;"
            "  p = o.cells[2].ptr;"
            "  return 0; }"
        )
        (p,) = points(source, "p")
        assert p == ["x"]

    def test_negative_and_bitwise_ops_produce_nothing(self):
        source = (
            "int x; int *p;"
            "int main(void) { int n; n = -x + ~x + !x; p = &x; return 0; }"
        )
        (p,) = points(source, "p")
        assert p == ["x"]

    def test_do_while_and_switch_bodies_analyzed(self):
        source = (
            "int x, y; int *p;"
            "int main(void) {"
            "  int i; i = 0;"
            "  do { p = &x; i++; } while (i < 2);"
            "  switch (i) { case 1: p = &y; break; }"
            "  return 0; }"
        )
        (p,) = points(source, "p")
        assert p == ["x", "y"]

    def test_string_as_array_subscript_base(self):
        source = (
            "char c; int main(void) { c = \"abc\"[1]; return 0; }"
        )
        result = solve_points_to(analyze_source(source))
        assert result.solution.ok
