"""Golden points-to answers for the realistic hand-written programs."""

import pytest

from repro.andersen import analyze_source, solve_points_to
from repro.workloads import ALL_PROGRAMS


@pytest.fixture(scope="module")
def hash_table():
    return solve_points_to(analyze_source(ALL_PROGRAMS["hash_table"]))


@pytest.fixture(scope="module")
def arena():
    return solve_points_to(analyze_source(ALL_PROGRAMS["arena"]))


@pytest.fixture(scope="module")
def state_machine():
    return solve_points_to(analyze_source(ALL_PROGRAMS["state_machine"]))


class TestHashTable:
    def test_clean(self, hash_table):
        assert hash_table.solution.ok

    def test_buckets_hold_cells(self, hash_table):
        assert hash_table.points_to_named("buckets") == {"heap@1"}

    def test_cells_hold_values_keys_links(self, hash_table):
        program = hash_table.program
        heap = program.location_named("heap@1")
        targets = {t.name for t in hash_table.points_to(heap)}
        # Collapsed fields: key strings, both value slots, next cells.
        assert "<strings>" in targets
        assert {"slot_a", "slot_b"} <= targets
        assert "heap@1" in targets

    def test_get_returns_values(self, hash_table):
        returned = hash_table.points_to_named("main::found")
        assert {"slot_a", "slot_b"} <= returned

    def test_hash_takes_strings(self, hash_table):
        assert hash_table.points_to_named("hash::key") == {"<strings>"}


class TestArena:
    def test_clean(self, arena):
        assert arena.solution.ok

    def test_current_is_heap_arena(self, arena):
        assert arena.points_to_named("current") == {"heap@1"}

    def test_arena_fields_collapse(self, arena):
        program = arena.program
        heap = program.location_named("heap@1")
        targets = {t.name for t in arena.points_to(heap)}
        # base/cursor point at the byte buffer; previous at arenas.
        assert "heap@2" in targets
        assert "heap@1" in targets

    def test_alloc_returns_buffer(self, arena):
        # Collapsed fields: the cursor may point at the byte buffer or
        # (through the previous link, conservatively) another arena.
        first = arena.points_to_named("main::first")
        assert "heap@2" in first
        assert first <= {"heap@1", "heap@2"}


class TestStateMachine:
    def test_clean(self, state_machine):
        assert state_machine.solution.ok

    def test_table_holds_all_handlers(self, state_machine):
        assert state_machine.points_to_named("table") == {
            "on_start", "on_run", "on_stop",
        }

    def test_handler_variable_reaches_fixpoint(self, state_machine):
        assert state_machine.points_to_named("current_handler") == {
            "on_start", "on_run", "on_stop",
        }

    def test_indirect_calls_resolve(self, state_machine):
        # Each handler's parameter receives int events only — empty
        # points-to sets (no pointers flow through events).  Prototype
        # declarations name parameters positionally (arg0).
        assert state_machine.points_to_named("on_run::arg0") == set()

    def test_all_configs_agree(self):
        from repro.experiments import options_for
        from repro.andersen import points_to_sets_equal

        program = analyze_source(ALL_PROGRAMS["state_machine"])
        baseline = solve_points_to(program, options_for("SF-Plain"))
        for label in ("IF-Plain", "SF-Online", "IF-Online",
                      "SF-Oracle", "IF-Oracle"):
            other = solve_points_to(program, options_for(label))
            assert points_to_sets_equal(baseline, other), label
