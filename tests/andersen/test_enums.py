"""Enum constants are integers, not implicit memory locations."""

from repro.andersen import analyze_source, solve_points_to


SOURCE = """
enum color { RED, GREEN = 3, BLUE };
enum state { IDLE, BUSY };

int *p;
int x;

int main(void) {
    enum color c;
    c = RED;
    if (c == GREEN) p = &x;
    switch (c) { case BLUE: c = RED; break; }
    return IDLE + BUSY;
}
"""


class TestEnumConstants:
    def test_no_implicit_locations(self):
        program = analyze_source(SOURCE)
        names = {location.name for location in program.locations}
        for enumerator in ("RED", "GREEN", "BLUE", "IDLE", "BUSY"):
            assert enumerator not in names

    def test_analysis_unaffected(self):
        result = solve_points_to(analyze_source(SOURCE))
        assert result.solution.ok
        assert result.points_to_named("p") == {"x"}

    def test_shadowing_enumerator_with_variable(self):
        source = (
            "enum e { TAG };"
            "int x; int *p;"
            "int main(void) { int *TAG; TAG = &x; p = TAG; return 0; }"
        )
        result = solve_points_to(analyze_source(source))
        # The local declaration wins over the enumerator.
        assert result.points_to_named("p") == {"x"}
