"""Tests for the DOT exporters."""

from repro import ConstraintSystem, Variance
from repro.andersen import analyze_source, solve_points_to
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.viz import constraint_graph_dot, points_to_dot


def solved_example():
    system = ConstraintSystem()
    box = system.constructor("box", (Variance.COVARIANT,))
    x, y, z = system.fresh_vars(3)
    system.add(system.term(box, (system.zero,), label="s"), x)
    system.add(x, y)
    system.add(y, x)
    system.add(y, z)
    system.add(z, system.term(box, (system.fresh_var("o"),)))
    return system, solve(system, SolverOptions(
        form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ONLINE))


class TestConstraintGraphDot:
    def test_valid_digraph_shell(self):
        _, solution = solved_example()
        dot = constraint_graph_dot(solution)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_contains_source_term(self):
        _, solution = solved_example()
        dot = constraint_graph_dot(solution)
        assert "box[s](0)" in dot
        assert "shape=box" in dot

    def test_collapsed_variables_merged(self):
        _, solution = solved_example()
        dot = constraint_graph_dot(solution)
        # x and y collapsed: only one of them appears as a node.
        x_rep = solution.graph.find(0)
        y_rep = solution.graph.find(1)
        assert x_rep == y_rep
        assert f"v{x_rep} [" in dot

    def test_max_nodes_cap(self):
        system = ConstraintSystem()
        variables = system.fresh_vars(50)
        for left, right in zip(variables, variables[1:]):
            system.add(left, right)
        solution = solve(system, SolverOptions())
        dot = constraint_graph_dot(solution, max_nodes=5)
        assert dot.count("shape=ellipse") == 5

    def test_quoting(self):
        _, solution = solved_example()
        dot = constraint_graph_dot(solution, name='we"ird')
        assert '\\"' in dot.splitlines()[0]


class TestPointsToDot:
    def test_renders_edges(self):
        program = analyze_source(
            "int x; int *p; int main(void) { p = &x; return 0; }"
        )
        result = solve_points_to(program)
        dot = points_to_dot(result)
        assert '"p" -> "x";' in dot

    def test_empty_sets_omitted(self):
        program = analyze_source(
            "int *q; int main(void) { return 0; }"
        )
        result = solve_points_to(program)
        dot = points_to_dot(result)
        assert '"q"' not in dot
