"""Tests for the experiment runner (on the two smallest benchmarks)."""

import pytest

from repro.experiments import (
    EXPERIMENT_LABELS,
    SuiteResults,
    initial_graph_statistics,
)
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def results():
    return SuiteResults([benchmark("allroots"), benchmark("anagram")])


class TestRunCaching:
    def test_record_fields(self, results):
        record = results.run("allroots", "SF-Plain")
        assert record.benchmark == "allroots"
        assert record.experiment == "SF-Plain"
        assert record.work > 0
        assert record.final_edges > 0

    def test_runs_cached(self, results):
        first = results.run("allroots", "IF-Online")
        second = results.run("allroots", "IF-Online")
        assert first is second

    def test_solution_available(self, results):
        solution = results.solution("allroots", "IF-Online")
        assert solution.options.label == "IF-Online"

    def test_unknown_benchmark(self, results):
        with pytest.raises(KeyError):
            results.run("nope", "SF-Plain")

    def test_run_all(self, results):
        records = results.run_all(["SF-Plain", "IF-Online"])
        assert len(records) == 4

    def test_online_eliminates_on_cyclic_benchmarks(self, results):
        record = results.run("anagram", "IF-Online")
        assert record.vars_eliminated > 0


class TestStatistics:
    def test_table1_fields(self, results):
        stats = results.statistics("allroots")
        assert stats.ast_nodes > 100
        assert stats.set_vars > 10
        assert stats.initial_nodes > stats.set_vars
        assert stats.initial_edges > 0

    def test_final_sccs_at_least_initial(self, results):
        stats = results.statistics("anagram")
        assert stats.final_scc_vars >= stats.initial_scc_vars

    def test_cached(self, results):
        assert results.statistics("allroots") is results.statistics(
            "allroots"
        )

    def test_all_statistics_order(self, results):
        names = [s.name for s in results.all_statistics()]
        assert names == ["allroots", "anagram"]

    def test_initial_graph_statistics_function(self):
        nodes, edges, scc = initial_graph_statistics(benchmark("allroots"))
        assert nodes > 0 and edges > 0
        assert scc.vars_in_cycles >= 0


class TestExperimentSemantics:
    def test_all_configs_agree_on_answers(self, results):
        bench = results.benchmark("allroots")
        program = bench.program
        graphs = []
        for label in EXPERIMENT_LABELS:
            solution = results.solution("allroots", label)
            graph = {
                location.name: frozenset(
                    term.label.name
                    for term in solution.least_solution(
                        program.points_to_var[location]
                    )
                    if hasattr(term.label, "name")
                )
                for location in program.locations
            }
            graphs.append((label, graph))
        baseline = graphs[0][1]
        for label, graph in graphs[1:]:
            assert graph == baseline, label

    def test_oracle_work_no_more_than_plain(self, results):
        for form in ("SF", "IF"):
            plain = results.run("anagram", f"{form}-Plain")
            oracle = results.run("anagram", f"{form}-Oracle")
            assert oracle.work <= plain.work
