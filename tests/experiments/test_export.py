"""Tests for the JSON export of experiment results."""

import json

import pytest

from repro.experiments import (
    SuiteResults,
    export_results,
    export_results_json,
    run_records,
)
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def results():
    return SuiteResults([benchmark("allroots"), benchmark("anagram")])


class TestExport:
    def test_document_shape(self, results):
        doc = export_results(results)
        assert doc["suite"] == ["allroots", "anagram"]
        assert len(doc["table1"]) == 2
        assert len(doc["runs"]) == 12
        assert set(doc["figures"]) == {
            "figure7", "figure8", "figure9", "figure9_work",
            "figure10", "figure11",
        }
        assert "oracle_work_ratio" in doc["aggregates"]

    def test_json_serializable(self, results):
        text = export_results_json(results)
        parsed = json.loads(text)
        assert parsed["suite"] == ["allroots", "anagram"]

    def test_run_record_fields(self, results):
        records = run_records(results, ["IF-Online"])
        assert len(records) == 2
        record = records[0]
        for key in ("benchmark", "experiment", "work", "final_edges",
                    "vars_eliminated", "total_seconds"):
            assert key in record

    def test_figure11_entries(self, results):
        doc = export_results(results)
        for entry in doc["figures"]["figure11"]:
            assert 0.0 <= entry["if_fraction"] <= 1.0
            assert 0.0 <= entry["sf_fraction"] <= 1.0

    def test_series_points_are_pairs(self, results):
        doc = export_results(results)
        for series in doc["figures"]["figure7"]:
            for point in series["points"]:
                assert len(point) == 2

    @pytest.mark.slow
    def test_cli_json(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["json", "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        parsed = json.loads(out)
        assert "runs" in parsed
