"""Tests for the Table 4 experiment roster."""

import pytest

from repro.experiments import EXPERIMENT_LABELS, TABLE4, describe, options_for
from repro.solver import CyclePolicy, GraphForm


class TestTable4:
    def test_six_experiments(self):
        assert len(EXPERIMENT_LABELS) == 6

    def test_paper_order(self):
        assert EXPERIMENT_LABELS == [
            "SF-Plain", "IF-Plain", "SF-Oracle", "IF-Oracle",
            "SF-Online", "IF-Online",
        ]

    def test_options_mapping(self):
        options = options_for("IF-Online")
        assert options.form is GraphForm.INDUCTIVE
        assert options.cycles is CyclePolicy.ONLINE

    def test_label_round_trips(self):
        for label in EXPERIMENT_LABELS:
            assert options_for(label).label == label

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            options_for("SF-Magic")

    def test_describe(self):
        assert "no cycle elimination" in describe("SF-Plain")
        assert "oracle" in describe("IF-Oracle")

    def test_overrides_forwarded(self):
        options = options_for("SF-Plain", seed=7, record_var_edges=True)
        assert options.seed == 7
        assert options.record_var_edges

    def test_forms_and_policies_cover_product(self):
        pairs = {(form, policy) for form, policy, _ in TABLE4.values()}
        assert len(pairs) == 6
