"""Tests for table and figure generation."""

import pytest

from repro.experiments import (
    SuiteResults,
    figure7,
    figure9_work,
    figure10,
    figure11,
    figure11_averages,
    oracle_work_ratio,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table2,
    table3,
)
from repro.workloads import benchmark


@pytest.fixture(scope="module")
def results():
    return SuiteResults([benchmark("allroots"), benchmark("compress")])


class TestTables:
    def test_table1_lists_benchmarks(self, results):
        text = render_table1(results)
        assert "allroots" in text and "compress" in text
        assert "AST Nodes" in text

    def test_table2_has_four_experiments(self, results):
        rows = table2(results)
        assert set(rows[0]) == {
            "SF-Plain", "IF-Plain", "SF-Oracle", "IF-Oracle",
        }

    def test_table2_render(self, results):
        text = render_table2(results)
        assert "SF-Plain Work" in text

    def test_table3_has_elimination_column(self, results):
        text = render_table3(results)
        assert "IF-Online Elim" in text
        rows = table3(results)
        assert rows[1]["IF-Online"].vars_eliminated > 0

    def test_table4_static(self):
        text = render_table4()
        assert "SF-Plain" in text and "IF-Online" in text

    def test_oracle_work_ratio_positive(self, results):
        assert oracle_work_ratio(results) > 0


class TestFigures:
    def test_figure7_sorted_by_size(self, results):
        series = figure7(results)
        xs = [x for x, _ in series[0][1]]
        assert xs == sorted(xs)
        assert len(series) == 2

    def test_figure9_work_speedup_present(self, results):
        series = dict(figure9_work(results))
        speedups = series["SF-Plain/IF-Online work"]
        # compress is cyclic enough that elimination wins on work.
        assert speedups[-1][1] > 1.0

    def test_figure10_ratios(self, results):
        series = dict(figure10(results))
        for _, ratio in series["SF-Online/IF-Online work"]:
            assert ratio > 0

    def test_figure11_fractions_in_unit_interval(self, results):
        for name, if_frac, sf_frac in figure11(results):
            assert 0.0 <= if_frac <= 1.0, name
            assert 0.0 <= sf_frac <= 1.0, name

    def test_figure11_if_beats_sf_on_average(self, results):
        mean_if, mean_sf = figure11_averages(results)
        assert mean_if >= mean_sf

    def test_renderers_produce_text(self, results):
        for renderer in (render_figure7, render_figure8, render_figure9,
                         render_figure10, render_figure11):
            text = renderer(results)
            assert "allroots" in text or "AST nodes" in text


class TestReportFormatting:
    def test_format_table_alignment(self):
        from repro.experiments.report import format_table

        text = format_table(
            "T", ("name", "value"), [("a", 1), ("long-name", 23456)]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "23,456" in text

    def test_format_series_empty(self):
        from repro.experiments.report import format_series

        assert format_series("T", "x", []) == "T"

    def test_float_rendering(self):
        from repro.experiments.report import _cell

        assert _cell(0.0) == "0"
        assert _cell(1.2345) == "1.23"
        assert _cell(12345.6) == "12,346"
        assert _cell(7) == "7"
