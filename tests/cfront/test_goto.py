"""Tests for goto/label support across the pipeline."""

import pytest

from repro.andersen import analyze_source, solve_points_to
from repro.cfront import ParseError, ast, parse, pretty_print


def body(source):
    unit = parse(f"void f(void) {{ {source} }}")
    return unit.functions()[0].body.items


class TestParsing:
    def test_label_statement(self):
        items = body("top: x = 1;")
        label = items[0]
        assert isinstance(label, ast.Label)
        assert label.name == "top"
        assert isinstance(label.body, ast.ExprStmt)

    def test_goto_statement(self):
        items = body("goto out; out: ;")
        assert isinstance(items[0], ast.Goto)
        assert items[0].name == "out"

    def test_label_not_confused_with_ternary(self):
        items = body("x = a ? b : c;")
        assert isinstance(items[0], ast.ExprStmt)

    def test_typedef_name_not_a_label(self):
        unit = parse(
            "typedef int T;\nvoid f(void) { T x; x = 0; }"
        )
        fn = unit.functions()[0]
        assert isinstance(fn.body.items[0], ast.Decl)

    def test_goto_requires_identifier(self):
        with pytest.raises(ParseError):
            body("goto 42;")

    def test_nested_label(self):
        items = body("while (1) { again: break; }")
        inner = items[0].body.items[0]
        assert isinstance(inner, ast.Label)


class TestPrettyAndAnalysis:
    def test_round_trip(self):
        source = (
            "void f(int n) { start: if (n) goto done; "
            "n = n + 1; goto start; done: ; }"
        )
        once = pretty_print(parse(source))
        assert pretty_print(parse(once)) == once
        assert "goto start;" in once

    def test_points_to_through_label(self):
        source = (
            "int x, y; int *p;"
            "int main(void) {"
            "  goto second;"
            "  p = &x;"          # still analyzed (flow-insensitive)
            "second:"
            "  p = &y;"
            "  return 0; }"
        )
        result = solve_points_to(analyze_source(source))
        assert result.points_to_named("p") == {"x", "y"}

    def test_count_nodes_includes_labels(self):
        unit = parse("void f(void) { l: goto l; }")
        assert unit.count_nodes() >= 4
