"""Tests for the pretty-printer (round trips and type rendering)."""

import pytest

from repro.cfront import parse, pretty_print, type_to_str
from repro.cfront.types import (
    Array,
    Function,
    Pointer,
    Record,
    Scalar,
    Void,
)
from repro.workloads import ALL_PROGRAMS


class TestTypeToStr:
    def test_scalar(self):
        assert type_to_str(Scalar("int"), "x") == "int x"

    def test_pointer(self):
        assert type_to_str(Pointer(Scalar("int")), "p") == "int *p"

    def test_array(self):
        assert type_to_str(Array(Scalar("int"), 4), "a") == "int a[4]"

    def test_pointer_to_array_parenthesized(self):
        rendered = type_to_str(Pointer(Array(Scalar("int"), 4)), "pa")
        assert rendered == "int (*pa)[4]"

    def test_function_pointer(self):
        fp = Pointer(Function(Scalar("int"), (Scalar("int"),)))
        assert type_to_str(fp, "fp") == "int (*fp)(int)"

    def test_function_no_params_renders_void(self):
        assert type_to_str(Function(Void(), ()), "f") == "void f(void)"

    def test_variadic(self):
        fn = Function(Scalar("int"), (Pointer(Scalar("char")),), True)
        assert type_to_str(fn, "printf") == "int printf(char *, ...)"

    def test_record(self):
        assert type_to_str(Record("struct", "s"), "x") == "struct s x"

    def test_array_of_function_pointers(self):
        t = Array(Pointer(Function(Void(), (Scalar("int"),))), 3)
        assert type_to_str(t, "table") == "void (*table[3])(int)"


def roundtrip(source):
    """pretty(parse(source)) must be a fixpoint of parse-then-print."""
    once = pretty_print(parse(source))
    twice = pretty_print(parse(once))
    assert once == twice
    return once


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_hand_programs_stable(self, name):
        roundtrip(ALL_PROGRAMS[name])

    def test_expressions_preserved(self):
        out = roundtrip("int f(int a) { return a * 2 + (a >> 1); }")
        assert "return" in out

    def test_control_flow(self):
        roundtrip(
            "void f(int n) {"
            " int i;"
            " for (i = 0; i < n; i++) {"
            "   if (i % 2) continue; else break;"
            " }"
            " while (n) do n--; while (n > 10);"
            " switch (n) { case 1: n = 2; break; default: n = 0; }"
            "}"
        )

    def test_declarations(self):
        roundtrip(
            "typedef struct pair { int a, b; } Pair;"
            "static Pair *make(int a, int b);"
            "int (*dispatch[2])(Pair *, int);"
        )

    def test_initializers(self):
        roundtrip("int a[2][2] = { { 1, 2 }, { 3, 4 } };")

    def test_string_literals(self):
        out = roundtrip('char *s = "hello\\n";')
        assert '"hello\\n"' in out

    def test_semantic_preservation_via_ast_shape(self):
        source = "int f(void) { return (1 + 2) * 3; }"
        original = parse(source)
        reparsed = parse(pretty_print(original))
        ret = reparsed.functions()[0].body.items[0]
        assert ret.value.op == "*"
        assert ret.value.left.op == "+"


class TestAstNodeCount:
    def test_count_single_decl(self):
        unit = parse("int x;")
        # TranslationUnit + Decl
        assert unit.count_nodes() == 2

    def test_count_grows_with_program(self):
        small = parse("int x;").count_nodes()
        large = parse("int x; int y; int f(void) { return 0; }").count_nodes()
        assert large > small

    def test_children_traversal_consistent(self):
        unit = parse(ALL_PROGRAMS["swap_cycle"])
        manual = 0
        stack = [unit]
        while stack:
            node = stack.pop()
            manual += 1
            stack.extend(node.children())
        assert manual == unit.count_nodes()
