"""Tests for statement parsing."""

import pytest

from repro.cfront import ParseError, ast, parse


def body(source):
    """Parse a function wrapping `source` and return its body items."""
    unit = parse(f"void f(void) {{ {source} }}")
    return unit.functions()[0].body.items


def first(source):
    return body(source)[0]


class TestSimpleStatements:
    def test_expression_statement(self):
        stmt = first("x;")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Ident)

    def test_empty_statement(self):
        stmt = first(";")
        assert isinstance(stmt, ast.ExprStmt)
        assert stmt.expr is None

    def test_return_value(self):
        stmt = first("return 42;")
        assert isinstance(stmt, ast.Return)
        assert isinstance(stmt.value, ast.IntLit)

    def test_return_void(self):
        stmt = first("return;")
        assert stmt.value is None

    def test_break_continue(self):
        items = body("while (1) { break; continue; }")
        inner = items[0].body.items
        assert isinstance(inner[0], ast.Break)
        assert isinstance(inner[1], ast.Continue)


class TestIf:
    def test_if_without_else(self):
        stmt = first("if (x) y;")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is None

    def test_if_else(self):
        stmt = first("if (x) y; else z;")
        assert stmt.else_branch is not None

    def test_dangling_else_binds_inner(self):
        stmt = first("if (a) if (b) x; else y;")
        assert stmt.else_branch is None
        inner = stmt.then_branch
        assert isinstance(inner, ast.If)
        assert inner.else_branch is not None

    def test_else_if_chain(self):
        stmt = first("if (a) x; else if (b) y; else z;")
        assert isinstance(stmt.else_branch, ast.If)


class TestLoops:
    def test_while(self):
        stmt = first("while (x) y;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = first("do x; while (y);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_full(self):
        stmt = first("for (i = 0; i < 10; i++) x;")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert stmt.condition is not None
        assert stmt.step is not None

    def test_for_empty_clauses(self):
        stmt = first("for (;;) break;")
        assert stmt.init is None
        assert stmt.condition is None
        assert stmt.step is None

    def test_for_with_declaration(self):
        stmt = first("for (int i = 0; i < 3; i++) x;")
        assert isinstance(stmt.init, ast.Compound)
        assert isinstance(stmt.init.items[0], ast.Decl)


class TestSwitch:
    def test_switch_with_cases(self):
        items = body("switch (x) { case 1: a; break; default: b; }")
        switch = items[0]
        assert isinstance(switch, ast.Switch)
        cases = [i for i in switch.body.items if isinstance(i, ast.Case)]
        assert len(cases) == 2
        assert cases[0].value is not None
        assert cases[1].value is None


class TestBlocksAndDecls:
    def test_nested_blocks(self):
        stmt = first("{ { x; } }")
        assert isinstance(stmt, ast.Compound)
        assert isinstance(stmt.items[0], ast.Compound)

    def test_local_declaration(self):
        items = body("int x; x = 1;")
        assert isinstance(items[0], ast.Decl)
        assert isinstance(items[1], ast.ExprStmt)

    def test_local_declaration_with_init(self):
        items = body("int x = 5;")
        assert items[0].init is not None

    def test_local_struct_declaration(self):
        items = body("struct s { int v; } local;")
        kinds = {type(i) for i in items}
        assert ast.RecordDef in kinds
        assert ast.Decl in kinds

    def test_mixed_decls_and_statements(self):
        items = body("int a; a = 1; int b; b = a;")
        assert [type(i) for i in items] == [
            ast.Decl, ast.ExprStmt, ast.Decl, ast.ExprStmt
        ]


class TestErrors:
    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(void) { if (x) {")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse("void f(void) { while x) y; }")

    def test_do_without_while(self):
        with pytest.raises(ParseError):
            parse("void f(void) { do x; }")
