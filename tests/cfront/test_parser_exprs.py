"""Tests for expression parsing and precedence."""

import pytest

from repro.cfront import ParseError, ast, parse
from repro.cfront.types import Pointer, Scalar


def expr(source):
    unit = parse(f"void f(void) {{ {source}; }}")
    return unit.functions()[0].body.items[0].expr


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        e = expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_left_associativity(self):
        e = expr("a - b - c")
        assert e.op == "-"
        assert e.left.op == "-"

    def test_parentheses_override(self):
        e = expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_comparison_below_arithmetic(self):
        e = expr("a + b < c * d")
        assert e.op == "<"

    def test_logical_layers(self):
        e = expr("a && b || c && d")
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_bitwise_layers(self):
        e = expr("a | b ^ c & d")
        assert e.op == "|"
        assert e.right.op == "^"
        assert e.right.right.op == "&"

    def test_shift(self):
        e = expr("a << 2 + 1")
        assert e.op == "<<"
        assert e.right.op == "+"

    def test_equality_vs_relational(self):
        e = expr("a == b < c")
        assert e.op == "=="
        assert e.right.op == "<"


class TestAssignment:
    def test_right_associative(self):
        e = expr("a = b = c")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = expr("a += b")
        assert e.op == "+="

    def test_assign_below_ternary(self):
        e = expr("a = b ? c : d")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Conditional)

    def test_all_compound_operators(self):
        for op in ("-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="):
            e = expr(f"a {op} b")
            assert e.op == op


class TestUnaryAndPostfix:
    def test_deref_chain(self):
        e = expr("**pp")
        assert e.op == "*"
        assert e.operand.op == "*"

    def test_address_of(self):
        e = expr("&x")
        assert e.op == "&"

    def test_prefix_increment(self):
        e = expr("++x")
        assert isinstance(e, ast.Unary)

    def test_postfix_increment(self):
        e = expr("x++")
        assert isinstance(e, ast.Postfix)

    def test_unary_binds_tighter_than_binary(self):
        e = expr("-a * b")
        assert e.op == "*"
        assert isinstance(e.left, ast.Unary)

    def test_deref_of_call(self):
        e = expr("*f(x)")
        assert e.op == "*"
        assert isinstance(e.operand, ast.Call)

    def test_member_chain(self):
        e = expr("a.b.c")
        assert isinstance(e, ast.Member)
        assert e.name == "c"
        assert e.base.name == "b"

    def test_arrow(self):
        e = expr("p->next->prev")
        assert e.arrow
        assert e.base.arrow

    def test_index_chain(self):
        e = expr("m[1][2]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Index)

    def test_call_with_args(self):
        e = expr("f(a, b + 1, g())")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 3

    def test_call_through_member(self):
        e = expr("obj.handler(x)")
        assert isinstance(e, ast.Call)
        assert isinstance(e.function, ast.Member)


class TestCastsAndSizeof:
    def test_cast(self):
        e = expr("(char *)p")
        assert isinstance(e, ast.Cast)
        assert e.target_type == Pointer(Scalar("char"))

    def test_cast_binds_to_unary(self):
        e = expr("(int)a + b")
        assert e.op == "+"
        assert isinstance(e.left, ast.Cast)

    def test_parenthesized_expr_not_cast(self):
        e = expr("(a) + b")
        assert e.op == "+"
        assert isinstance(e.left, ast.Ident)

    def test_nested_cast(self):
        e = expr("(int *)(char *)p")
        assert isinstance(e, ast.Cast)
        assert isinstance(e.operand, ast.Cast)

    def test_sizeof_type(self):
        e = expr("sizeof(int *)")
        assert isinstance(e, ast.SizeOf)
        assert e.type_operand == Pointer(Scalar("int"))

    def test_sizeof_expression(self):
        e = expr("sizeof x")
        assert isinstance(e, ast.SizeOf)
        assert isinstance(e.operand, ast.Ident)

    def test_sizeof_parenthesized_expression(self):
        e = expr("sizeof(x)")
        assert e.operand is not None


class TestMisc:
    def test_ternary(self):
        e = expr("a ? b : c")
        assert isinstance(e, ast.Conditional)

    def test_nested_ternary_right_associative(self):
        e = expr("a ? b : c ? d : e")
        assert isinstance(e.else_value, ast.Conditional)

    def test_comma(self):
        e = expr("a, b, c")
        assert isinstance(e, ast.Comma)
        assert isinstance(e.left, ast.Comma)

    def test_comma_in_call_is_separator(self):
        e = expr("f((a, b), c)")
        assert len(e.args) == 2
        assert isinstance(e.args[0], ast.Comma)

    def test_string_concatenation(self):
        e = expr('"ab" "cd"')
        assert isinstance(e, ast.StringLit)
        assert "ab" in e.text and "cd" in e.text

    def test_char_literal(self):
        e = expr("'x'")
        assert isinstance(e, ast.CharLit)

    def test_error_on_bad_token(self):
        with pytest.raises(ParseError):
            expr("a + ;")
