"""Tests for the C lexer."""

import pytest

from repro.cfront import LexError, tokenize
from repro.cfront.tokens import (
    CHAR_CONST,
    EOF,
    FLOAT_CONST,
    IDENT,
    INT_CONST,
    KEYWORD,
    PUNCT,
    STRING_CONST,
)


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_has_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifier(self):
        assert kinds("hello _under score2") == [IDENT, IDENT, IDENT]

    def test_keywords(self):
        assert kinds("int while typedef") == [KEYWORD] * 3

    def test_keyword_prefix_is_identifier(self):
        assert kinds("integer") == [IDENT]

    def test_punctuation_longest_match(self):
        assert texts("a >>= b >> c > d") == [
            "a", ">>=", "b", ">>", "c", ">", "d"
        ]

    def test_arrow_vs_minus(self):
        assert texts("p->q - r--") == ["p", "->", "q", "-", "r", "--"]

    def test_ellipsis(self):
        assert texts("f(int, ...)") == ["f", "(", "int", ",", "...", ")"]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestNumbers:
    def test_decimal(self):
        assert kinds("0 42 123456") == [INT_CONST] * 3

    def test_hex(self):
        tokens = tokenize("0x1F 0Xabc")
        assert [t.kind for t in tokens[:-1]] == [INT_CONST] * 2

    def test_suffixes(self):
        assert kinds("1u 2UL 3ll") == [INT_CONST] * 3

    def test_float(self):
        assert kinds("1.5 2e10 3.14e-2 1.0f") == [FLOAT_CONST] * 4

    def test_leading_dot_float(self):
        assert kinds(".5") == [FLOAT_CONST]

    def test_dot_alone_is_punct(self):
        assert kinds("a.b") == [IDENT, PUNCT, IDENT]


class TestStringsAndChars:
    def test_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == STRING_CONST
        assert tokens[0].text == '"hello world"'

    def test_string_escapes(self):
        tokens = tokenize(r'"a\"b\\c\n"')
        assert tokens[0].kind == STRING_CONST

    def test_char(self):
        assert kinds(r"'a' '\n' '\''") == [CHAR_CONST] * 3

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_string_at_newline(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestCommentsAndDirectives:
    def test_line_comment(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_block_comment_not_nested(self):
        assert texts("a /* /* */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_division_not_comment(self):
        assert texts("a / b") == ["a", "/", "b"]

    def test_directive_skipped(self):
        assert texts("#include <stdio.h>\nint x;") == ["int", "x", ";"]

    def test_directive_with_continuation(self):
        assert texts("#define A \\\n 5\nint x;") == ["int", "x", ";"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("int @ x;")
        assert info.value.line == 1

    def test_error_position(self):
        with pytest.raises(LexError) as info:
            tokenize("x\n  @")
        assert info.value.line == 2
