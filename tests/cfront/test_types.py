"""Tests for the C type layer."""

from repro.cfront.types import (
    Array,
    CHAR,
    EnumType,
    Function,
    INT,
    Pointer,
    Record,
    Scalar,
    TypeEnvironment,
    VOID,
    Void,
)


class TestPredicates:
    def test_pointer(self):
        assert Pointer(INT).is_pointer
        assert not INT.is_pointer

    def test_array(self):
        assert Array(INT, 3).is_array

    def test_function(self):
        assert Function(VOID).is_function


class TestDecay:
    def test_array_decays_to_pointer(self):
        assert Array(INT, 8).decayed() == Pointer(INT)

    def test_function_decays_to_function_pointer(self):
        fn = Function(INT, (CHAR,))
        assert fn.decayed() == Pointer(fn)

    def test_scalar_unchanged(self):
        assert INT.decayed() is INT

    def test_pointer_unchanged(self):
        p = Pointer(INT)
        assert p.decayed() is p


class TestRecord:
    def test_field_lookup(self):
        record = Record("struct", "s", (("a", INT), ("b", Pointer(INT))))
        assert record.field_type("b") == Pointer(INT)
        assert record.field_type("missing") is None

    def test_opaque_record_has_no_fields(self):
        assert Record("struct", "s").field_type("a") is None

    def test_str(self):
        assert str(Record("union", "u")) == "union u"
        assert str(EnumType("e")) == "enum e"


class TestStrings:
    def test_scalar(self):
        assert str(Scalar("unsigned long")) == "unsigned long"

    def test_void(self):
        assert str(Void()) == "void"

    def test_nested(self):
        assert str(Pointer(Pointer(INT))) == "int**"
        assert str(Array(INT, None)) == "int[]"
        assert str(Function(INT, (CHAR,), True)) == "int(char,...)"


class TestTypeEnvironment:
    def test_typedef_lookup(self):
        env = TypeEnvironment()
        env.typedefs["myint"] = INT
        assert env.is_typedef_name("myint")
        assert not env.is_typedef_name("other")

    def test_resolve_opaque_record(self):
        env = TypeEnvironment()
        full = Record("struct", "s", (("a", INT),))
        env.records["struct s"] = full
        assert env.resolve(Record("struct", "s")) is full

    def test_resolve_unknown_keeps_opaque(self):
        env = TypeEnvironment()
        opaque = Record("struct", "t")
        assert env.resolve(opaque) is opaque

    def test_resolve_passthrough(self):
        env = TypeEnvironment()
        assert env.resolve(INT) is INT
