"""Tests for declaration parsing (declarators, structs, typedefs)."""

import pytest

from repro.cfront import ParseError, ast, parse
from repro.cfront.types import (
    Array,
    Function,
    Pointer,
    Record,
    Scalar,
    Void,
)


def decl(source, index=0):
    unit = parse(source)
    decls = [item for item in unit.items if isinstance(item, ast.Decl)]
    return decls[index]


class TestDeclarators:
    def test_simple_int(self):
        d = decl("int x;")
        assert d.name == "x"
        assert d.type == Scalar("int")

    def test_pointer(self):
        d = decl("int *p;")
        assert d.type == Pointer(Scalar("int"))

    def test_double_pointer(self):
        d = decl("char **pp;")
        assert d.type == Pointer(Pointer(Scalar("char")))

    def test_array(self):
        d = decl("int a[10];")
        assert d.type == Array(Scalar("int"), 10)

    def test_unsized_array(self):
        d = decl("int a[];")
        assert d.type == Array(Scalar("int"), None)

    def test_array_of_pointers(self):
        d = decl("int *a[4];")
        assert d.type == Array(Pointer(Scalar("int")), 4)

    def test_pointer_to_array(self):
        d = decl("int (*pa)[4];")
        assert d.type == Pointer(Array(Scalar("int"), 4))

    def test_two_dimensional_array(self):
        d = decl("int m[2][3];")
        assert d.type == Array(Array(Scalar("int"), 3), 2)

    def test_function_pointer(self):
        d = decl("int (*fp)(int, char *);")
        assert d.type == Pointer(
            Function(Scalar("int"), (Scalar("int"), Pointer(Scalar("char"))))
        )

    def test_array_of_function_pointers(self):
        d = decl("void (*table[3])(int);")
        assert d.type == Array(
            Pointer(Function(Void(), (Scalar("int"),))), 3
        )

    def test_function_returning_pointer(self):
        d = decl("int *f(void);")
        assert d.type == Function(Pointer(Scalar("int")), ())

    def test_function_pointer_returning_function_pointer(self):
        d = decl("int (*(*f)(int))(char);")
        inner = Pointer(Function(Scalar("int"), (Scalar("char"),)))
        assert d.type == Pointer(Function(inner, (Scalar("int"),)))

    def test_multi_declarator_line(self):
        unit = parse("int x, *p, a[2];")
        decls = [i for i in unit.items if isinstance(i, ast.Decl)]
        assert [d.name for d in decls] == ["x", "p", "a"]
        assert decls[1].type == Pointer(Scalar("int"))

    def test_variadic_function(self):
        d = decl("int printf(char *fmt, ...);")
        assert isinstance(d.type, Function)
        assert d.type.variadic

    def test_qualifiers_ignored(self):
        d = decl("const volatile int * const p;")
        assert d.type == Pointer(Scalar("int"))

    def test_unsigned_long(self):
        d = decl("unsigned long x;")
        assert d.type == Scalar("unsigned long")

    def test_array_param_decays(self):
        unit = parse("void f(int a[10]) { }")
        fn = unit.functions()[0]
        assert fn.params[0].type == Pointer(Scalar("int"))

    def test_function_param_decays(self):
        unit = parse("void f(int g(int)) { }")
        fn = unit.functions()[0]
        assert fn.params[0].type == Pointer(
            Function(Scalar("int"), (Scalar("int"),))
        )


class TestStructsUnionsEnums:
    def test_struct_definition(self):
        unit = parse("struct point { int x; int y; };")
        record = unit.items[0]
        assert isinstance(record, ast.RecordDef)
        assert record.tag == "point"
        assert [m.name for m in record.members] == ["x", "y"]

    def test_struct_variable(self):
        d = decl("struct point { int x; } origin;")
        assert isinstance(d.type, Record)
        assert d.type.tag == "point"
        assert d.type.field_type("x") == Scalar("int")

    def test_self_referential_struct(self):
        d = decl("struct node { struct node *next; } n;")
        next_type = d.type.field_type("next")
        assert isinstance(next_type, Pointer)
        assert next_type.target.tag == "node"

    def test_opaque_reference_resolved_later(self):
        source = "struct s { int v; };\nstruct s instance;"
        d = decl(source)
        assert d.type.fields is not None

    def test_union(self):
        d = decl("union u { int i; char c; } x;")
        assert d.type.kind == "union"

    def test_anonymous_struct(self):
        d = decl("struct { int a; } x;")
        assert d.type.tag.startswith("__anon")

    def test_bitfields_parsed(self):
        unit = parse("struct flags { int a : 1; int b : 2; };")
        record = unit.items[0]
        assert [m.name for m in record.members] == ["a", "b"]

    def test_enum_definition(self):
        unit = parse("enum color { RED, GREEN = 5, BLUE };")
        enum = unit.items[0]
        assert isinstance(enum, ast.EnumDef)
        assert enum.enumerators == ["RED", "GREEN", "BLUE"]

    def test_enum_variable(self):
        d = decl("enum color { RED } c;")
        assert d.type.tag == "color"


class TestTypedefs:
    def test_typedef_registered_and_used(self):
        unit = parse("typedef int myint;\nmyint x;")
        decls = [i for i in unit.items if isinstance(i, ast.Decl)]
        assert decls[0].storage == "typedef"
        assert decls[1].type == Scalar("int")

    def test_typedef_pointer(self):
        d = decl("typedef char *string;\nstring s;", index=1)
        assert d.type == Pointer(Scalar("char"))

    def test_typedef_struct(self):
        source = "typedef struct node { int v; } Node;\nNode n;"
        d = decl(source, index=1)
        assert isinstance(d.type, Record)

    def test_typedef_in_cast_position(self):
        source = "typedef int myint;\nint y = (myint)3;"
        d = decl(source, index=1)
        assert isinstance(d.init, ast.Cast)


class TestInitializers:
    def test_scalar_init(self):
        d = decl("int x = 5;")
        assert isinstance(d.init, ast.IntLit)

    def test_address_init(self):
        d = decl("int y;\nint *p = &y;", index=1)
        assert isinstance(d.init, ast.Unary)
        assert d.init.op == "&"

    def test_init_list(self):
        d = decl("int a[3] = { 1, 2, 3 };")
        assert isinstance(d.init, ast.InitList)
        assert len(d.init.items) == 3

    def test_nested_init_list(self):
        d = decl("int m[2][2] = { { 1, 2 }, { 3, 4 } };")
        assert isinstance(d.init.items[0], ast.InitList)

    def test_trailing_comma_in_init_list(self):
        d = decl("int a[2] = { 1, 2, };")
        assert len(d.init.items) == 2


class TestFunctions:
    def test_definition_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        fn = unit.functions()[0]
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions()[0].params == []

    def test_prototype_then_definition(self):
        unit = parse("int f(int x);\nint f(int x) { return x; }")
        assert len(unit.functions()) == 1
        decls = [i for i in unit.items if isinstance(i, ast.Decl)]
        assert isinstance(decls[0].type, Function)

    def test_static_function(self):
        unit = parse("static int helper(void) { return 1; }")
        assert unit.functions()[0].name == "helper"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 0;")

    def test_missing_type(self):
        with pytest.raises(ParseError):
            parse("; x;")
