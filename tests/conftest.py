"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import ConstraintSystem, Variance
from repro.solver import CyclePolicy, GraphForm, SolverOptions

#: Every (form, policy) combination of paper Table 4.
ALL_CONFIGS = [
    (form, policy)
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE)
    for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE, CyclePolicy.ORACLE)
]

ALL_CONFIG_IDS = [
    f"{form.value}-{policy.value}" for form, policy in ALL_CONFIGS
]


@pytest.fixture(params=ALL_CONFIGS, ids=ALL_CONFIG_IDS)
def solver_options(request):
    """Parametrized solver options covering all six experiments."""
    form, policy = request.param
    return SolverOptions(form=form, cycles=policy)


@pytest.fixture
def system():
    """A fresh, empty constraint system."""
    return ConstraintSystem("test")


@pytest.fixture
def ref_system():
    """A system with the Andersen-style ``ref`` constructor registered."""
    sys_ = ConstraintSystem("test-ref")
    sys_.constructor(
        "ref",
        (Variance.COVARIANT, Variance.COVARIANT, Variance.CONTRAVARIANT),
    )
    return sys_


def build_chain(system, length, prefix="v"):
    """Create variables v0 <= v1 <= ... <= v(length-1)."""
    variables = system.fresh_vars(length, prefix)
    for left, right in zip(variables, variables[1:]):
        system.add(left, right)
    return variables
