"""Tests for the ConstraintSystem builder."""

import pytest

from repro.constraints import (
    ConstraintSystem,
    MalformedExpressionError,
    SignatureError,
    Variance,
)


class TestVariables:
    def test_fresh_var_indices_are_dense(self, system):
        variables = [system.fresh_var() for _ in range(5)]
        assert [v.index for v in variables] == [0, 1, 2, 3, 4]

    def test_fresh_vars_names(self, system):
        variables = system.fresh_vars(3, "t")
        assert [v.name for v in variables] == ["t0", "t1", "t2"]

    def test_num_vars(self, system):
        system.fresh_vars(4)
        assert system.num_vars == 4

    def test_var_by_index(self, system):
        v = system.fresh_var("x")
        assert system.var_by_index(v.index) is v

    def test_find_var_by_name(self, system):
        system.fresh_var("a")
        b = system.fresh_var("b")
        assert system.find_var("b") is b
        assert system.find_var("missing") is None

    def test_foreign_variable_rejected(self, system):
        other = ConstraintSystem("other")
        foreign = other.fresh_var()
        with pytest.raises(MalformedExpressionError):
            system.add(foreign, foreign)


class TestConstructors:
    def test_registration_and_lookup(self, system):
        c = system.constructor("c", (Variance.COVARIANT,))
        assert system.constructor("c", (Variance.COVARIANT,)) is c

    def test_conflicting_signature_rejected(self, system):
        system.constructor("c", (Variance.COVARIANT,))
        with pytest.raises(SignatureError):
            system.constructor("c", (Variance.CONTRAVARIANT,))

    def test_term_by_name(self, system):
        system.constructor("c", (Variance.COVARIANT,))
        t = system.term("c", (system.zero,))
        assert t.constructor.name == "c"

    def test_term_unknown_name_rejected(self, system):
        with pytest.raises(SignatureError):
            system.term("unknown", ())

    def test_zero_one_predefined(self, system):
        assert system.zero.is_zero
        assert system.one.is_one
        # Registered under their names too.
        assert system.constructor("0", ()).name == "0"


class TestConstraints:
    def test_add_records_constraints(self, system):
        x, y = system.fresh_vars(2)
        system.add(x, y)
        assert system.constraints == ((x, y),)
        assert len(system) == 1

    def test_add_all(self, system):
        x, y, z = system.fresh_vars(3)
        system.add_all([(x, y), (y, z)])
        assert len(system) == 2

    def test_term_args_validated(self, system):
        other = ConstraintSystem("other")
        foreign = other.fresh_var()
        c = system.constructor("c", (Variance.COVARIANT,))
        bad = system.term(c, (foreign,))
        with pytest.raises(MalformedExpressionError):
            system.add(bad, system.fresh_var())

    def test_repr_mentions_counts(self, system):
        x, y = system.fresh_vars(2)
        system.add(x, y)
        text = repr(system)
        assert "vars=2" in text and "constraints=1" in text
