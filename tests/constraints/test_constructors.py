"""Tests for constructors and signatures."""

import pytest

from repro.constraints import (
    Constructor,
    ONE_CONSTRUCTOR,
    SignatureError,
    Variance,
    ZERO_CONSTRUCTOR,
)


class TestConstructor:
    def test_nullary(self):
        c = Constructor("atom")
        assert c.arity == 0
        assert c.is_nullary
        assert str(c) == "atom"

    def test_arity_from_signature(self):
        c = Constructor("pair", (Variance.COVARIANT, Variance.COVARIANT))
        assert c.arity == 2
        assert not c.is_nullary

    def test_signature_list_normalized_to_tuple(self):
        c = Constructor("c", [Variance.COVARIANT])
        assert isinstance(c.signature, tuple)

    def test_empty_name_rejected(self):
        with pytest.raises(SignatureError):
            Constructor("")

    def test_non_variance_signature_rejected(self):
        with pytest.raises(SignatureError):
            Constructor("bad", ("+",))

    def test_structural_equality(self):
        a = Constructor("ref", (Variance.COVARIANT,))
        b = Constructor("ref", (Variance.COVARIANT,))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_signature(self):
        a = Constructor("ref", (Variance.COVARIANT,))
        b = Constructor("ref", (Variance.CONTRAVARIANT,))
        assert a != b

    def test_inequality_on_name(self):
        a = Constructor("a")
        b = Constructor("b")
        assert a != b

    def test_mixed_variance_rendering(self):
        c = Constructor(
            "fun", (Variance.CONTRAVARIANT, Variance.COVARIANT)
        )
        assert str(c) == "fun/2(-,+)"

    def test_distinguished_constructors(self):
        assert ZERO_CONSTRUCTOR.name == "0"
        assert ONE_CONSTRUCTOR.name == "1"
        assert ZERO_CONSTRUCTOR.is_nullary
        assert ONE_CONSTRUCTOR.is_nullary
