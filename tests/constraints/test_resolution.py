"""Tests for the resolution rules R (paper Figure 1)."""

import pytest

from repro.constraints import (
    Constructor,
    MalformedExpressionError,
    ONE,
    SOURCE_VAR,
    Term,
    VAR_SINK,
    VAR_VAR,
    Var,
    Variance,
    ZERO,
    decompose_pair,
)

COV = Variance.COVARIANT
CON = Variance.CONTRAVARIANT
REF = Constructor("ref", (COV, COV, CON))
PAIR = Constructor("pair", (COV, COV))
OTHER = Constructor("other", (COV, COV))


class TestAtomicForms:
    def test_var_var(self):
        atoms, diags = decompose_pair(Var(0), Var(1))
        assert atoms == [(VAR_VAR, Var(0), Var(1))]
        assert not diags

    def test_source_var(self):
        t = Term(PAIR, (ZERO, ZERO))
        atoms, diags = decompose_pair(t, Var(0))
        assert atoms == [(SOURCE_VAR, t, Var(0))]
        assert not diags

    def test_var_sink(self):
        t = Term(PAIR, (ONE, ONE))
        atoms, diags = decompose_pair(Var(0), t)
        assert atoms == [(VAR_SINK, Var(0), t)]
        assert not diags


class TestTrivialRules:
    def test_zero_on_left_dropped(self):
        atoms, diags = decompose_pair(ZERO, Var(0))
        assert atoms == [] and diags == []

    def test_one_on_right_dropped(self):
        atoms, diags = decompose_pair(Var(0), ONE)
        assert atoms == [] and diags == []

    def test_zero_into_term_dropped(self):
        atoms, diags = decompose_pair(ZERO, Term(PAIR, (ZERO, ZERO)))
        assert atoms == [] and diags == []

    def test_zero_into_zero_dropped(self):
        atoms, diags = decompose_pair(ZERO, ZERO)
        assert atoms == [] and diags == []

    def test_one_into_one_dropped(self):
        atoms, diags = decompose_pair(ONE, ONE)
        assert atoms == [] and diags == []


class TestStructuralRule:
    def test_covariant_decomposition(self):
        left = Term(PAIR, (Var(0), Var(1)))
        right = Term(PAIR, (Var(2), Var(3)))
        atoms, diags = decompose_pair(left, right)
        assert not diags
        assert set(atoms) == {
            (VAR_VAR, Var(0), Var(2)),
            (VAR_VAR, Var(1), Var(3)),
        }

    def test_contravariant_reverses(self):
        left = Term(REF, (ZERO, Var(0), Var(1)))
        right = Term(REF, (ONE, Var(2), Var(3)))
        atoms, diags = decompose_pair(left, right)
        assert not diags
        # covariant middle: v0 <= v2; contravariant last: v3 <= v1;
        # name position 0 <= 1 is trivially dropped.
        assert set(atoms) == {
            (VAR_VAR, Var(0), Var(2)),
            (VAR_VAR, Var(3), Var(1)),
        }

    def test_nested_terms_decompose_recursively(self):
        inner_l = Term(PAIR, (Var(0), Var(1)))
        inner_r = Term(PAIR, (Var(2), Var(3)))
        left = Term(PAIR, (inner_l, ZERO))
        right = Term(PAIR, (inner_r, Var(4)))
        atoms, diags = decompose_pair(left, right)
        assert not diags
        assert set(atoms) == {
            (VAR_VAR, Var(0), Var(2)),
            (VAR_VAR, Var(1), Var(3)),
        }

    def test_deeply_nested_does_not_recurse(self):
        # 10_000 levels of nesting would overflow Python's stack if the
        # decomposition were recursive.
        unary = Constructor("u", (COV,))
        left = Var(0)
        right = Var(1)
        for _ in range(10_000):
            left = Term(unary, (left,))
            right = Term(unary, (right,))
        atoms, diags = decompose_pair(left, right)
        assert atoms == [(VAR_VAR, Var(0), Var(1))]
        assert not diags

    def test_mixed_term_and_constant_args(self):
        left = Term(PAIR, (ZERO, Var(0)))
        right = Term(PAIR, (Var(1), ONE))
        atoms, diags = decompose_pair(left, right)
        assert not diags
        assert atoms == []  # 0 <= v1 and v0 <= 1 are both trivial


class TestClashes:
    def test_constructor_clash(self):
        atoms, diags = decompose_pair(
            Term(PAIR, (ZERO, ZERO)), Term(OTHER, (ONE, ONE))
        )
        assert atoms == []
        assert len(diags) == 1
        assert diags[0].kind == "constructor-clash"

    def test_nonempty_in_zero(self):
        atoms, diags = decompose_pair(Term(PAIR, (ZERO, ZERO)), ZERO)
        assert diags[0].kind == "nonempty-in-zero"

    def test_one_in_constructed(self):
        atoms, diags = decompose_pair(ONE, Term(PAIR, (ONE, ONE)))
        assert diags[0].kind == "one-in-constructed"

    def test_one_in_zero(self):
        atoms, diags = decompose_pair(ONE, ZERO)
        assert diags[0].kind == "nonempty-in-zero"

    def test_nested_clash_found(self):
        left = Term(PAIR, (Term(PAIR, (ZERO, ZERO)), ZERO))
        right = Term(PAIR, (Term(OTHER, (ONE, ONE)), ONE))
        atoms, diags = decompose_pair(left, right)
        assert len(diags) == 1

    def test_diagnostic_str(self):
        _, diags = decompose_pair(ONE, ZERO)
        assert "nonempty-in-zero" in str(diags[0])


class TestMalformed:
    def test_rejects_non_expression_left(self):
        with pytest.raises(MalformedExpressionError):
            decompose_pair("x", Var(0))

    def test_rejects_non_expression_right(self):
        with pytest.raises(MalformedExpressionError):
            decompose_pair(Var(0), 42)


class TestDepthLimit:
    """The explicit-stack decomposition is depth-guarded (resilience)."""

    def _nested(self, depth):
        unary = Constructor("u", (COV,))
        left, right = Var(0), Var(1)
        for _ in range(depth):
            left = Term(unary, (left,))
            right = Term(unary, (right,))
        return left, right

    def test_exceeding_max_depth_raises_structured_error(self):
        from repro.constraints import DepthLimitError
        from repro.constraints.resolution import decompose

        left, right = self._nested(500)
        with pytest.raises(DepthLimitError) as excinfo:
            decompose(left, right, [], [], max_depth=100)
        assert excinfo.value.limit == 100
        assert excinfo.value.depth == 101
        assert "100" in str(excinfo.value)

    def test_depth_limit_is_repro_error(self):
        from repro.constraints import DepthLimitError
        from repro.errors import ReproError

        assert issubclass(DepthLimitError, ReproError)

    def test_at_limit_succeeds(self):
        from repro.constraints.resolution import decompose

        left, right = self._nested(100)
        atoms = []
        decompose(left, right, atoms, [], max_depth=100)
        assert atoms == [(VAR_VAR, Var(0), Var(1))]
