"""Tests for argument variance."""

from repro.constraints import COVARIANT, CONTRAVARIANT, Variance


class TestVariance:
    def test_flip_covariant(self):
        assert Variance.COVARIANT.flip() is Variance.CONTRAVARIANT

    def test_flip_contravariant(self):
        assert Variance.CONTRAVARIANT.flip() is Variance.COVARIANT

    def test_double_flip_is_identity(self):
        for variance in Variance:
            assert variance.flip().flip() is variance

    def test_is_covariant(self):
        assert Variance.COVARIANT.is_covariant
        assert not Variance.CONTRAVARIANT.is_covariant

    def test_is_contravariant(self):
        assert Variance.CONTRAVARIANT.is_contravariant
        assert not Variance.COVARIANT.is_contravariant

    def test_shorthand_aliases(self):
        assert COVARIANT is Variance.COVARIANT
        assert CONTRAVARIANT is Variance.CONTRAVARIANT

    def test_string_rendering(self):
        assert str(Variance.COVARIANT) == "+"
        assert str(Variance.CONTRAVARIANT) == "-"

    def test_only_two_members(self):
        assert len(list(Variance)) == 2
