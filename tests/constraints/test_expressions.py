"""Tests for set expressions."""

import pytest

from repro.constraints import (
    Constructor,
    MalformedExpressionError,
    ONE,
    SignatureError,
    Term,
    Var,
    Variance,
    ZERO,
    variables_of,
)

REF = Constructor(
    "ref", (Variance.COVARIANT, Variance.COVARIANT, Variance.CONTRAVARIANT)
)


class TestVar:
    def test_identity_by_index(self):
        assert Var(3) == Var(3, "other-name")
        assert Var(3) != Var(4)

    def test_hash_by_index(self):
        assert hash(Var(3)) == hash(Var(3, "x"))

    def test_default_name(self):
        assert Var(7).name == "v7"

    def test_explicit_name(self):
        assert str(Var(7, "X")) == "X"

    def test_not_equal_to_terms(self):
        assert Var(0) != Term(Constructor("c"))

    def test_kind_flags(self):
        v = Var(0)
        assert v.is_variable
        assert not v.is_term
        assert not v.is_zero
        assert not v.is_one


class TestTerm:
    def test_arity_checked(self):
        with pytest.raises(SignatureError):
            Term(REF, (Var(0),))

    def test_args_must_be_expressions(self):
        with pytest.raises(MalformedExpressionError):
            Term(REF, (Var(0), "bogus", Var(1)))

    def test_structural_equality(self):
        a = Term(REF, (ZERO, Var(1), Var(1)))
        b = Term(REF, (ZERO, Var(1), Var(1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_label_distinguishes(self):
        a = Term(REF, (ZERO, Var(1), Var(1)), label="x")
        b = Term(REF, (ZERO, Var(1), Var(1)), label="y")
        assert a != b

    def test_label_in_str(self):
        t = Term(Constructor("loc"), (), label="spot")
        assert "spot" in str(t)

    def test_kind_flags(self):
        t = Term(REF, (ZERO, Var(1), Var(1)))
        assert t.is_term
        assert not t.is_variable
        assert not t.is_zero

    def test_zero_one_flags(self):
        assert ZERO.is_zero and not ZERO.is_one
        assert ONE.is_one and not ONE.is_zero

    def test_nested_str(self):
        t = Term(REF, (ZERO, Var(1, "X"), ONE))
        assert str(t) == "ref(0,X,1)"


class TestVariablesOf:
    def test_single_var(self):
        v = Var(0)
        assert variables_of(v) == (v,)

    def test_nested_term(self):
        t = Term(REF, (ZERO, Var(1), Var(2)))
        assert variables_of(t) == (Var(1), Var(2))

    def test_duplicates_preserved(self):
        t = Term(REF, (Var(1), Var(1), Var(2)))
        assert variables_of(t) == (Var(1), Var(1), Var(2))

    def test_constants_have_no_variables(self):
        assert variables_of(ZERO) == ()
        assert variables_of(ONE) == ()

    def test_rejects_non_expression(self):
        with pytest.raises(MalformedExpressionError):
            variables_of("nope")
