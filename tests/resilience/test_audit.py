"""The graph-invariant auditor: policy parsing, clean runs, injected bugs."""

import pytest

from repro import ConstraintSystem
from repro.graph.base import ConstraintGraphBase
from repro.resilience import (
    AuditFailure,
    AuditPolicy,
    GraphInvariantError,
    audit_graph,
)
from repro.resilience.audit import (
    CHECK_NONREP_STATE,
    CHECK_UF_CYCLE,
)
from repro.resilience.errors import ResilienceError
from repro.solver import SolverEngine, solve
from repro.trace import CollectorSink
from repro.experiments.config import EXPERIMENT_LABELS, options_for
from repro.workloads.generator import RandomSystemConfig, random_system


class TestAuditPolicy:
    def test_off(self):
        for spec in (None, "off"):
            policy = AuditPolicy.parse(spec)
            assert not policy.enabled
            assert not policy.final
            assert policy.stride is None

    def test_final(self):
        policy = AuditPolicy.parse("final")
        assert policy.enabled and policy.final and policy.stride is None

    def test_stride_implies_final(self):
        policy = AuditPolicy.parse("stride-128")
        assert policy.enabled and policy.final and policy.stride == 128

    def test_bad_specs_rejected(self):
        for spec in ("sometimes", "stride-", "stride-0", "stride-x", ""):
            with pytest.raises(ResilienceError):
                AuditPolicy.parse(spec)


class TestCleanRuns:
    @pytest.mark.parametrize("label", EXPERIMENT_LABELS)
    def test_all_configs_audit_clean(self, label):
        system = random_system(RandomSystemConfig(seed=2))
        solution = solve(system, options_for(label, audit="stride-50"))
        assert audit_graph(solution.graph) == []

    def test_partial_runs_audit_clean_at_stop(self):
        from repro.solver import SolveBudget, SolverOptions

        system = random_system(RandomSystemConfig(seed=4))
        solution = solve(system, SolverOptions(
            budget=SolveBudget(max_work=25), on_budget="partial",
            check_stride=1, audit="stride-10",
        ))
        assert audit_graph(solution.graph) == []


def cyclic_system():
    """A seeded system whose closure collapses cycles under both online
    configurations (verified by ``test_premise_collapses_happen``)."""
    return random_system(RandomSystemConfig(
        seed=0, sinks=0, structural=0, extremes=0.0, feedback=0.4,
    ))


def test_premise_collapses_happen():
    """The injected-bug tests below are vacuous unless the healthy run
    actually eliminates variables; pin that premise."""
    for label in ("SF-Online", "IF-Online"):
        engine = SolverEngine(cyclic_system(), options_for(label))
        engine.run()
        assert engine.stats.vars_eliminated > 0, label


class TestInjectedBug:
    """A deliberately broken collapse is caught by the auditor."""

    def _break_absorb(self, monkeypatch):
        # Union the variables but leave the absorbed variable's edge
        # sets populated and unemitted — exactly the class of corruption
        # the nonrep-state invariant exists to catch.
        def broken(self, absorbed, witness):
            self.unionfind.union_into(witness, absorbed)
            self.stats.vars_eliminated += 1

        monkeypatch.setattr(ConstraintGraphBase, "_absorb", broken)

    def test_final_audit_raises(self, monkeypatch):
        self._break_absorb(monkeypatch)
        with pytest.raises(GraphInvariantError) as excinfo:
            solve(cyclic_system(), options_for("IF-Online", audit="final"))
        failures = excinfo.value.failures
        assert failures
        assert any(f.check == CHECK_NONREP_STATE for f in failures)

    def test_failures_reach_the_trace_sink(self, monkeypatch):
        self._break_absorb(monkeypatch)
        sink = CollectorSink()
        with pytest.raises(GraphInvariantError):
            solve(cyclic_system(),
                  options_for("IF-Online", audit="final", sink=sink))
        audit_events = [e for e in sink.events if e.name == "audit.failure"]
        assert audit_events
        assert audit_events[0].args["check"] == CHECK_NONREP_STATE

    def test_stride_audit_catches_mid_run(self, monkeypatch):
        self._break_absorb(monkeypatch)
        with pytest.raises(GraphInvariantError):
            solve(cyclic_system(),
                  options_for("SF-Online", audit="stride-1"))


class TestAuditGraphDirect:
    def test_unionfind_cycle_detected(self):
        system = cyclic_system()
        engine = SolverEngine(system, options_for("IF-Online"))
        engine.run()
        uf = engine.graph.unionfind
        # Corrupt the forest: a two-node parent cycle.
        uf._parent[0], uf._parent[1] = 1, 0
        failures = audit_graph(engine.graph)
        assert any(f.check == CHECK_UF_CYCLE for f in failures)

    def test_failure_str_is_informative(self):
        failure = AuditFailure(CHECK_NONREP_STATE, 7, "stale sources")
        text = str(failure)
        assert CHECK_NONREP_STATE in text and "7" in text
