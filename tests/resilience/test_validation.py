"""Solve-time system validation: structured errors, never IndexError."""

import pytest

from repro import ConstraintSystem, Variance
from repro.constraints.constructors import Constructor
from repro.constraints.errors import InvalidSystemError
from repro.constraints.expressions import Term, Var
from repro.solver import SolverOptions, solve

COV = Variance.COVARIANT


def smuggle(system, left, right):
    """Bypass ``add``'s checks, as a deserializer or buggy client might."""
    system._constraints.append((left, right))


class TestValidateCases:
    def test_var_out_of_range(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        smuggle(system, v, Var(99, "stale"))
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.reason == "var-out-of-range"
        assert excinfo.value.constraint_index == 0

    def test_arity_mismatch(self):
        # Term.__init__ itself rejects wrong arities, so forge the term
        # the way a buggy deserializer would: bypassing the constructor.
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        unary = system.constructor("u", (COV,))
        forged = object.__new__(Term)
        forged.constructor = unary
        forged.args = ()  # 0 args for 1-ary
        forged.label = None
        forged._hash = 0
        smuggle(system, forged, v)
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.reason == "arity-mismatch"

    def test_signature_conflict(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        system.constructor("c", (COV,))
        imposter = Constructor("c", (COV, COV))
        smuggle(system, Term(imposter, (v, v)), v)
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.reason == "signature-conflict"

    def test_not_an_expression(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        smuggle(system, v, "not an expression")
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.reason == "not-an-expression"

    def test_nested_fault_found(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        pair = system.constructor("pair", (COV, COV))
        nested = Term(pair, (Term(pair, (v, Var(7, "stale"))), v))
        smuggle(system, nested, v)
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.reason == "var-out-of-range"

    def test_constraint_index_points_at_offender(self):
        system = ConstraintSystem()
        a, b = system.fresh_vars(2)
        system.add(a, b)
        system.add(b, a)
        smuggle(system, a, Var(50, "stale"))
        with pytest.raises(InvalidSystemError) as excinfo:
            system.validate()
        assert excinfo.value.constraint_index == 2

    def test_valid_system_passes(self):
        system = ConstraintSystem()
        a, b = system.fresh_vars(2)
        system.add(a, b)
        system.validate()  # must not raise


class TestSolveIntegration:
    def test_solve_validates_by_default(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        smuggle(system, v, Var(99, "stale"))
        with pytest.raises(InvalidSystemError):
            solve(system)

    def test_validation_can_be_disabled(self):
        system = ConstraintSystem()
        (v,) = system.fresh_vars(1)
        smuggle(system, v, Var(99, "stale"))
        # Without validation the stale index leaks a raw low-level
        # error from the graph code — the failure mode validation
        # exists to prevent.
        with pytest.raises((IndexError, KeyError)):
            solve(system, SolverOptions(validate=False))
