"""The error taxonomy: one catchable root, structured fields."""

import pytest

from repro import ConstraintSystem, ReproError
from repro.cfront.errors import CFrontError
from repro.constraints.errors import (
    ConstraintError,
    DepthLimitError,
    InvalidSystemError,
    MalformedExpressionError,
)
from repro.resilience.errors import (
    BudgetExceededError,
    CheckpointError,
    GraphInvariantError,
    ResilienceError,
    SolveCancelledError,
)


class TestHierarchy:
    def test_resilience_errors_inherit_root(self):
        for cls in (
            ResilienceError,
            BudgetExceededError,
            SolveCancelledError,
            CheckpointError,
            GraphInvariantError,
        ):
            assert issubclass(cls, ReproError), cls

    def test_constraint_errors_inherit_root(self):
        for cls in (
            ConstraintError,
            InvalidSystemError,
            DepthLimitError,
            MalformedExpressionError,
        ):
            assert issubclass(cls, ReproError), cls

    def test_cfront_errors_inherit_root(self):
        assert issubclass(CFrontError, ReproError)

    def test_root_is_exported_at_top_level(self):
        import repro

        assert repro.ReproError is ReproError


class TestCatchOneRoot:
    """The point of the hierarchy: ``except repro.ReproError`` works."""

    def test_solver_validation_caught_by_root(self):
        from repro.constraints.expressions import Var
        from repro.solver import solve

        system = ConstraintSystem("bad")
        (v,) = system.fresh_vars(1)
        system._constraints.append((v, Var(99, "stale")))
        with pytest.raises(ReproError):
            solve(system)

    def test_budget_caught_by_root(self):
        from repro.solver import SolveBudget, SolverOptions, solve
        from repro.workloads.generator import (
            RandomSystemConfig,
            random_system,
        )

        system = random_system(RandomSystemConfig(seed=1))
        with pytest.raises(ReproError):
            solve(system, SolverOptions(
                budget=SolveBudget(max_work=5), check_stride=1
            ))


class TestFields:
    def test_budget_exceeded_fields(self):
        error = BudgetExceededError("work", 100, 105, work_done=105)
        assert error.reason == "work"
        assert error.limit == 100
        assert error.value == 105
        assert error.work_done == 105
        assert "work" in str(error)

    def test_cancelled_fields(self):
        error = SolveCancelledError(work_done=42)
        assert error.work_done == 42

    def test_invalid_system_fields(self):
        error = InvalidSystemError("arity-mismatch", "bad term", 3)
        assert error.reason == "arity-mismatch"
        assert error.constraint_index == 3
