"""The differential fuzz harness: agreement, bug-catching, shrinking."""

import glob
import json
import os

import pytest

from repro.graph.base import ConstraintGraphBase
from repro.resilience import FuzzDisagreement, run_fuzz
from repro.resilience.errors import ResilienceError
from repro.resilience.fuzz import (
    check_system,
    load_reproducer,
    save_reproducer,
    shrink_constraints,
    subsystem,
    system_from_json,
    system_to_json,
)
from repro.workloads.generator import RandomSystemConfig, random_system

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "fuzz_corpus")


def inject_broken_absorb(monkeypatch):
    """Union without re-emitting or clearing the absorbed variable."""

    def broken(self, absorbed, witness):
        self.unionfind.union_into(witness, absorbed)
        self.stats.vars_eliminated += 1

    monkeypatch.setattr(ConstraintGraphBase, "_absorb", broken)


class TestHealthyAgreement:
    def test_check_system_agrees(self):
        assert check_system(random_system(RandomSystemConfig(seed=1))) is None

    def test_run_fuzz_smoke(self):
        assert run_fuzz(count=12, seed=0, corpus_dir=None) == []


class TestInjectedBug:
    def test_fuzzer_catches_broken_collapse(self, monkeypatch, tmp_path):
        inject_broken_absorb(monkeypatch)
        corpus = os.fspath(tmp_path / "corpus")
        found = run_fuzz(count=4, seed=0, corpus_dir=corpus)
        assert found, "fuzzer missed the injected bug"
        first = found[0]
        assert isinstance(first, FuzzDisagreement)
        assert first.kind in ("least-solution", "collapse", "verdict")
        # The reproducer was saved and replays to the same disagreement.
        assert first.path and os.path.exists(first.path)
        system, meta = load_reproducer(first.path)
        assert meta["kind"] == first.kind
        replayed = check_system(system)
        assert replayed is not None
        # Shrinking happened: far fewer constraints than generated.
        assert first.constraints < len(
            random_system(RandomSystemConfig(seed=first.seed))
        )

    def test_reproducer_passes_once_fixed(self, monkeypatch, tmp_path):
        inject_broken_absorb(monkeypatch)
        found = run_fuzz(count=2, seed=0,
                         corpus_dir=os.fspath(tmp_path))
        monkeypatch.undo()
        for disagreement in found:
            system, _ = load_reproducer(disagreement.path)
            assert check_system(system) is None

    def test_disagreements_surface_as_metrics(self, monkeypatch):
        from repro.metrics import default_registry, reset_default_registry

        reset_default_registry()
        try:
            inject_broken_absorb(monkeypatch)
            found = run_fuzz(count=4, seed=0, corpus_dir=None,
                             shrink=False)
            assert found
            family = next(
                f for f in default_registry().collect()
                if f.name == "repro_fuzz_disagreements_total"
            )
            total = sum(
                child.to_value() for _, child in family.series()
            )
            assert total == len(found)
        finally:
            reset_default_registry()


class TestShrinking:
    def test_subsystem_keeps_selected_constraints(self):
        system = random_system(RandomSystemConfig(seed=3))
        sub = subsystem(system, [0, 2])
        assert len(sub) == 2
        assert sub.num_vars == system.num_vars
        assert str(sub.constraints[0]) == str(system.constraints[0])
        assert str(sub.constraints[1]) == str(system.constraints[2])

    def test_shrink_is_1_minimal(self):
        system = random_system(RandomSystemConfig(seed=3))
        target = str(system.constraints[5])

        def failing(candidate):
            return any(str(c) == target for c in candidate.constraints)

        shrunk = shrink_constraints(system, failing)
        assert len(shrunk) == 1
        assert str(shrunk.constraints[0]) == target


class TestCorpusFormat:
    def test_json_round_trip(self):
        system = random_system(RandomSystemConfig(seed=11))
        clone = system_from_json(system_to_json(system))
        assert len(clone) == len(system)
        assert clone.num_vars == system.num_vars
        assert [str(c) for c in clone.constraints] == [
            str(c) for c in system.constraints
        ]
        assert check_system(clone) is None

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 999, "system": {}}))
        with pytest.raises(ResilienceError, match="format"):
            load_reproducer(os.fspath(path))

    def test_save_reproducer_is_valid_json(self, tmp_path):
        system = random_system(RandomSystemConfig(seed=2))
        disagreement = FuzzDisagreement(
            seed=2, label="IF-Online", kind="least-solution",
            detail="synthetic", constraints=len(system),
        )
        path = save_reproducer(os.fspath(tmp_path), disagreement, system)
        with open(path) as handle:
            document = json.load(handle)
        assert document["seed"] == 2
        assert document["system"]["constraints"]


class TestCorpusReplay:
    """Every committed corpus entry once exposed a real disagreement;
    after the fix, all configurations must agree on it forever."""

    def test_committed_corpus_agrees(self):
        for path in sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json"))):
            system, meta = load_reproducer(path)
            assert check_system(system) is None, (
                f"regression: corpus entry {os.path.basename(path)} "
                f"(originally {meta['kind']} under {meta['label']}) "
                f"disagrees again"
            )
