"""Budgets, cancellation, partial solutions, and their soundness."""

import pytest

from repro.bench.measure import counters_of
from repro.resilience import (
    BudgetExceededError,
    CancellationToken,
    SolveBudget,
    SolveCancelledError,
    SolveStatus,
    edge_estimate,
)
from repro.solver import SolverEngine, SolverOptions, solve
from repro.workloads.generator import RandomSystemConfig, random_system


def make_system(seed=3):
    # Sink-free profile: always consistent, plenty of propagation work.
    return random_system(RandomSystemConfig(
        seed=seed, variables=30, var_var=50, sinks=0, structural=0,
        extremes=0.0, feedback=0.4,
    ))


class TestSolveBudget:
    def test_rejects_nonpositive_limits(self):
        for kwargs in (
            dict(max_work=0),
            dict(max_work=-1),
            dict(deadline_seconds=0),
            dict(max_edges=-5),
        ):
            with pytest.raises(ValueError):
                SolveBudget(**kwargs)

    def test_bounded(self):
        assert not SolveBudget().bounded
        assert SolveBudget(max_work=10).bounded
        assert SolveBudget(deadline_seconds=1.0).bounded
        assert SolveBudget(max_edges=100).bounded

    def test_unbounded_budget_never_exceeded(self):
        solution = solve(make_system(), SolverOptions(budget=SolveBudget()))
        assert solution.status is SolveStatus.COMPLETE

    def test_edge_estimate_bounds_stored_edges(self):
        solution = solve(make_system())
        stats = solution.stats
        assert edge_estimate(stats) >= stats.final_edges


class TestCancellationToken:
    def test_lifecycle(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.reset()
        assert not token.cancelled
        assert "armed" in repr(token)


class TestRaisePolicy:
    def test_work_budget_raises_structured_error(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            solve(make_system(), SolverOptions(
                budget=SolveBudget(max_work=20), check_stride=1
            ))
        error = excinfo.value
        assert error.reason == "work"
        assert error.limit == 20
        assert error.value >= 20
        assert error.work_done == error.value

    def test_cancellation_raises(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SolveCancelledError):
            solve(make_system(), SolverOptions(
                cancellation=token, check_stride=1
            ))

    def test_bad_on_budget_rejected(self):
        with pytest.raises(ValueError):
            SolverEngine(make_system(), SolverOptions(on_budget="ignore"))


class TestPartialPolicy:
    def test_partial_status_budget(self):
        solution = solve(make_system(), SolverOptions(
            budget=SolveBudget(max_work=20),
            on_budget="partial",
            check_stride=1,
        ))
        assert solution.status is SolveStatus.BUDGET_EXHAUSTED
        assert solution.is_partial
        assert "budget-exhausted" in repr(solution)

    def test_partial_status_cancelled(self):
        token = CancellationToken()
        token.cancel()
        solution = solve(make_system(), SolverOptions(
            cancellation=token, on_budget="partial", check_stride=1
        ))
        assert solution.status is SolveStatus.CANCELLED
        assert solution.is_partial

    def test_partial_least_solution_is_sound_lower_bound(self):
        """Everything a partial run reports is in the true solution."""
        system = make_system()
        full = solve(system, SolverOptions())
        for budget in (10, 40, 160):
            partial = solve(system, SolverOptions(
                budget=SolveBudget(max_work=budget),
                on_budget="partial",
                check_stride=1,
            ))
            if not partial.is_partial:
                continue
            for var in system.variables:
                assert partial.least_solution(var) <= full.least_solution(
                    var
                ), f"partial LS({var}) is not a subset at budget {budget}"

    def test_partial_true_collapses_are_correct(self):
        system = make_system()
        full = solve(system, SolverOptions())
        partial = solve(system, SolverOptions(
            budget=SolveBudget(max_work=60),
            on_budget="partial",
            check_stride=1,
        ))
        for a in system.variables:
            for b in system.variables:
                if partial.same_component(a, b):
                    assert full.same_component(a, b)

    def test_resume_after_partial_matches_uninterrupted(self):
        """Resuming a partial engine finishes with identical counters."""
        system = make_system()
        baseline = counters_of(
            solve(system, SolverOptions(checkpointable=True))
        )
        engine = SolverEngine(system, SolverOptions(
            budget=SolveBudget(max_work=30),
            on_budget="partial",
            check_stride=1,
        ))
        solution = engine.run()
        resumes = 0
        while solution.is_partial:
            resumes += 1
            solution = engine.resume()
            assert resumes < 1000
        assert resumes > 0
        assert counters_of(solution) == baseline


class TestZeroOverheadIdentity:
    """Budgeted runs produce bit-identical counters to unbudgeted ones."""

    def test_counters_identical_under_generous_budget(self):
        system = make_system()
        plain = counters_of(solve(system, SolverOptions()))
        guarded = counters_of(solve(system, SolverOptions(
            budget=SolveBudget(max_work=10**9, deadline_seconds=3600),
            cancellation=CancellationToken(),
            check_stride=1,
        )))
        assert plain == guarded
